"""Figure 8 — upper-bound study: Ideal Static / Ideal Greedy / Oracle.

Paper shapes: SparseAdapt lands within ~13% of the Oracle's performance
(PP mode) and ~5% of its efficiency; the Oracle shows clear headroom
over the best static configuration for GFLOPS/W (1.3-1.8x) on the
irregular inputs.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

SCHEMES = ("SparseAdapt", "Ideal Static", "Ideal Greedy", "Oracle")


def test_fig08_upper_bounds(benchmark, emit):
    result = run_once(
        benchmark, figures.figure8_upper_bounds, scale=0.3, n_samples=48
    )
    blocks = [
        format_gain_table(
            "Figure 8 - PP mode GFLOPS gains over Baseline",
            append_geomean(result["pp_perf"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 8 - PP mode GFLOPS/W gains over Baseline",
            append_geomean(result["pp_eff"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 8 - EE mode GFLOPS/W gains over Baseline",
            append_geomean(result["ee_eff"]),
            SCHEMES,
        ),
    ]
    gm = lambda table, scheme: geometric_mean(
        [table[m][scheme] for m in table]
    )
    blocks.append(
        "SparseAdapt / Oracle efficiency (EE): "
        f"{gm(result['ee_eff'], 'SparseAdapt') / gm(result['ee_eff'], 'Oracle'):.2f}"
        "  (paper: within 5%)"
    )
    emit("\n\n".join(blocks))

    # The Oracle optimizes exactly GFLOPS/W in EE mode, so on that
    # metric it must dominate every other scheme (PP-mode tables report
    # GFLOPS and GFLOPS/W, which are *not* the PP objective t^2*E, so
    # no dominance is implied there; the metric-level dominance is
    # asserted in tests/test_baselines.py).
    ee = result["ee_eff"]
    assert gm(ee, "Oracle") >= gm(ee, "Ideal Static") * 0.999
    assert gm(ee, "Oracle") >= gm(ee, "Ideal Greedy") * 0.999
    # SparseAdapt roams the full 1800-point space while the Oracle is
    # restricted to the sampled subset, so only near-dominance holds.
    assert gm(ee, "Oracle") >= gm(ee, "SparseAdapt") * 0.95
    # SparseAdapt lands within a reasonable factor of the Oracle.
    assert gm(ee, "SparseAdapt") > 0.5 * gm(ee, "Oracle")
