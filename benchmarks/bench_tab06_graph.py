"""Table 6 — BFS and SSSP TEPS-per-watt gains, Energy-Efficient mode.

Paper shapes: SparseAdapt reaches up to ~1.5x TEPS/W over Baseline
(geomean 1.31 for BFS, 1.29 for SSSP) and beats Best Avg (1.16 / 1.12);
the largest gains appear on the power-law graphs (R10, R11, R14), the
smallest on R09 whose non-zeros sit uniformly along the diagonal.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

SCHEMES = ("Best Avg", "SparseAdapt")


def test_tab06_graph_algorithms(benchmark, emit):
    result = run_once(
        benchmark, figures.table6_graph_algorithms, scale=0.2
    )
    blocks = [
        format_gain_table(
            f"Table 6 - {algorithm.upper()} TEPS/W gains over Baseline "
            "(EE mode, L1 cache)",
            append_geomean(result[algorithm]),
            SCHEMES,
        )
        for algorithm in ("bfs", "sssp")
    ]
    emit("\n\n".join(blocks))

    for algorithm in ("bfs", "sssp"):
        rows = result[algorithm]
        sparse_gm = geometric_mean([rows[m]["SparseAdapt"] for m in rows])
        best_avg_gm = geometric_mean([rows[m]["Best Avg"] for m in rows])
        # SparseAdapt improves on Baseline and on Best Avg in geomean.
        assert sparse_gm > 1.05
        assert sparse_gm > best_avg_gm
        # The power-law graphs benefit more than the diagonal-local R09.
        power_law = geometric_mean(
            [rows[m]["SparseAdapt"] for m in ("R10", "R11", "R14")]
        )
        assert power_law >= rows["R09"]["SparseAdapt"] * 0.95
