"""Figure 5 — SpMSpV on the synthetic suite (U1-U3, P1-P3), L1 cache.

Paper shapes: in Power-Performance mode SparseAdapt gains ~1.8x
performance over Baseline and is ~3.5x more energy-efficient than
Max Cfg while staying within ~34% of its performance; in
Energy-Efficient mode it gains 1.5-1.9x efficiency over Baseline while
Max Cfg is ~2.9x *less* efficient than Baseline.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

SCHEMES = ("Baseline", "Best Avg", "Max Cfg", "SparseAdapt")


def test_fig05_spmspv_synthetic(benchmark, emit):
    result = run_once(
        benchmark, figures.figure5_spmspv_synthetic, scale=0.4
    )
    blocks = [
        format_gain_table(
            "Figure 5 (left) - PP mode GFLOPS gains over Baseline",
            append_geomean(result["pp_perf"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 5 (middle) - PP mode GFLOPS/W gains over Baseline",
            append_geomean(result["pp_eff"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 5 (right) - EE mode GFLOPS/W gains over Baseline",
            append_geomean(result["ee_eff"]),
            SCHEMES,
        ),
    ]
    emit("\n\n".join(blocks))

    gm = lambda table, scheme: geometric_mean(
        [table[m][scheme] for m in table]
    )
    # SparseAdapt improves efficiency over Baseline in both modes.
    assert gm(result["ee_eff"], "SparseAdapt") > 1.2
    assert gm(result["pp_eff"], "SparseAdapt") > 1.0
    # Max Cfg is markedly less efficient than Baseline.
    assert gm(result["ee_eff"], "Max Cfg") < 0.7
    # SparseAdapt is several times more efficient than Max Cfg (PP).
    assert (
        gm(result["pp_eff"], "SparseAdapt")
        > 2.0 * gm(result["pp_eff"], "Max Cfg")
    )
    # PP mode buys performance over Baseline.
    assert gm(result["pp_perf"], "SparseAdapt") > 1.1
