"""Guard: disabled tracing must not slow the controller hot path.

The observability subsystem promises a no-op fast path: with no
recorder installed, `SparseAdaptController.run` must cost the same as
the pre-instrumentation seed loop. This benchmark reconstructs that
seed loop (the controller body with every `obs` touch removed) and
compares best-of-N wall times, failing if the instrumented-but-disabled
path is more than 5% slower. It also reports the enabled-tracing cost
for context (informational, not asserted).

Run with: ``pytest benchmarks/bench_obs_overhead.py --benchmark-only``
"""

from __future__ import annotations

from benchmarks.conftest import best_of, interleaved_best_of, run_once

from repro import obs
from repro.obs import profile as obs_profile
from repro.core.controller import (
    _HOST_DECISION_POWER_W,
    SparseAdaptController,
)
from repro.core.modes import OptimizationMode
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.core.training import train_default_model
from repro.experiments.harness import build_trace
from repro.transmuter import params
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    host_decision_overhead_s,
    reconfiguration_cost,
)

#: Maximum tolerated slowdown of the disabled-tracing path.
MAX_OVERHEAD = 0.05


def _seed_loop(controller: SparseAdaptController, trace) -> ScheduleResult:
    """The seed controller loop, byte-for-byte pre-observability."""
    schedule = ScheduleResult(scheme="sparseadapt")
    config = controller.initial_config
    pending_reconfig = None
    last_epoch_time = 0.0
    overhead = host_decision_overhead_s()
    for index, workload in enumerate(trace.epochs):
        result = controller.machine.simulate_epoch(workload, config)
        schedule.append(
            EpochRecord(
                index=index,
                config=config,
                result=result,
                reconfig=pending_reconfig,
            )
        )
        last_epoch_time = result.time_s
        dirty_hint = workload.stores * params.WORD_BYTES
        counters = result.counters
        predicted = controller.model.predict(counters, config)
        applied = controller.policy.filter(
            current=config,
            predicted=predicted,
            last_epoch_time_s=last_epoch_time,
            power=controller.machine.power,
            bandwidth_gbps=controller.bandwidth_gbps,
            dirty_bytes_hint=dirty_hint,
        )
        pending_reconfig = reconfiguration_cost(
            config,
            applied,
            controller.machine.power,
            controller.bandwidth_gbps,
            dirty_bytes_hint=dirty_hint,
        )
        if pending_reconfig.is_free:
            pending_reconfig = None
        config = applied
        schedule.overhead_time_s += overhead
        schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
    return schedule


def test_tracing_disabled_overhead(benchmark, emit):
    trace = build_trace("spmspv", "P1", scale=0.3)
    mode = OptimizationMode.ENERGY_EFFICIENT
    model = train_default_model(mode, kernel="spmspv")
    controller = SparseAdaptController(
        model=model, machine=TransmuterModel(), mode=mode
    )

    # Sanity: the replica and the instrumented loop agree exactly.
    assert (
        _seed_loop(controller, trace).summary()
        == controller.run(trace).summary()
    )

    # Interleave the two measurements: sequential best-of blocks let
    # machine drift between the blocks masquerade as overhead.
    seed_s, disabled_s = run_once(
        benchmark,
        lambda: interleaved_best_of(
            lambda: _seed_loop(controller, trace),
            lambda: controller.run(trace),
            repeats=15,
        ),
    )

    def _traced():
        with obs.recording(None):
            controller.run(trace)

    enabled_s = best_of(_traced)

    overhead = disabled_s / seed_s - 1.0
    emit(
        "tracing overhead guard (spmspv-P1, {} epochs)\n"
        "  seed loop:          {:8.3f} ms\n"
        "  instrumented (off): {:8.3f} ms  ({:+.2%})\n"
        "  instrumented (on):  {:8.3f} ms  ({:+.2%})".format(
            trace.n_epochs,
            seed_s * 1e3,
            disabled_s * 1e3,
            overhead,
            enabled_s * 1e3,
            enabled_s / seed_s - 1.0,
        )
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled tracing slowed the controller by {overhead:.2%} "
        f"(budget {MAX_OVERHEAD:.0%}); the no-op fast path regressed"
    )


#: Component spans a single controller epoch can open with profiling
#: on: kernel_sim + cache_model + power_model + forest_inference +
#: reconfig (the seed-loop comparison above already pays the disabled
#: cost on both sides, so this bounds it absolutely too).
SPANS_PER_EPOCH = 5


def test_profiling_disabled_span_cost(benchmark, emit):
    """The disabled profiler span must be nanoseconds, not microseconds.

    ``_seed_loop`` and ``controller.run`` both route through the
    instrumented callees, so the tracing guard above can no longer see
    a profiler regression — it would slow both sides equally. Bound it
    directly: the per-call cost of a disabled ``profile.span()`` times
    the spans one epoch opens must stay under ``MAX_OVERHEAD`` of the
    measured per-epoch simulation cost.
    """
    trace = build_trace("spmspv", "P1", scale=0.3)
    mode = OptimizationMode.ENERGY_EFFICIENT
    model = train_default_model(mode, kernel="spmspv")
    controller = SparseAdaptController(
        model=model, machine=TransmuterModel(), mode=mode
    )
    epoch_s = best_of(lambda: controller.run(trace)) / trace.n_epochs

    n = 20000
    span = obs_profile.span

    def _spin():
        for _ in range(n):
            with span("bench"):
                pass

    per_span_s = run_once(benchmark, lambda: best_of(_spin)) / n
    budget_s = MAX_OVERHEAD * epoch_s / SPANS_PER_EPOCH
    emit(
        "disabled profiler span cost\n"
        "  per span:        {:8.1f} ns\n"
        "  per-epoch budget: {:7.1f} ns ({} spans, {:.0%} of {:.1f} us "
        "epoch)".format(
            per_span_s * 1e9,
            budget_s * 1e9,
            SPANS_PER_EPOCH,
            MAX_OVERHEAD,
            epoch_s * 1e6,
        )
    )
    assert per_span_s < budget_s, (
        f"a disabled profile.span() costs {per_span_s * 1e9:.0f} ns; "
        f"{SPANS_PER_EPOCH} of them exceed {MAX_OVERHEAD:.0%} of the "
        f"{epoch_s * 1e6:.1f} us epoch cost"
    )


def test_profiling_byte_identical_results(benchmark, emit):
    """Profiling on vs off must not change a single modeled number."""
    trace = build_trace("spmspv", "P1", scale=0.3)
    mode = OptimizationMode.ENERGY_EFFICIENT
    model = train_default_model(mode, kernel="spmspv")
    controller = SparseAdaptController(
        model=model, machine=TransmuterModel(), mode=mode
    )

    baseline = controller.run(trace).summary()
    with obs_profile.profiling() as prof:
        profiled = controller.run(trace).summary()
    assert profiled == baseline, (
        "profiling changed the schedule: the profiler must only "
        "observe, never perturb"
    )
    data = prof.as_dict()
    names = {entry["path"][-1] for entry in data["nodes"]}
    assert {"kernel_sim", "forest_inference", "reconfig"} <= names

    off_s = best_of(lambda: controller.run(trace))

    def _profiled():
        with obs_profile.profiling():
            controller.run(trace)

    on_s = run_once(benchmark, lambda: best_of(_profiled))
    emit(
        "profiling enabled cost (informational)\n"
        "  profiling off: {:8.3f} ms\n"
        "  profiling on:  {:8.3f} ms  ({:+.2%})".format(
            off_s * 1e3, on_s * 1e3, on_s / off_s - 1.0
        )
    )
