"""Shared benchmark utilities.

Each benchmark regenerates one paper table/figure via the drivers in
:mod:`repro.experiments.figures`, times the run with pytest-benchmark
(single round — these are experiment replays, not micro-benchmarks),
prints the same rows/series the paper reports, and writes them to
``benchmarks/results/`` so the reproduction record survives pytest's
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture()
def emit(request):
    """Print a report block and persist it under benchmarks/results/."""

    def _emit(text: str) -> None:
        name = request.node.name.replace("/", "_")
        print(f"\n{text}\n")
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _emit


def run_once(benchmark, fn, **kwargs):
    """Time one full experiment replay."""
    return benchmark.pedantic(
        fn, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0
    )


def best_of(fn, repeats: int = 9) -> float:
    """Best-of-N wall time of ``fn()``, seconds.

    Micro-benchmark comparisons (e.g. the tracing-disabled overhead
    guard in ``bench_obs_overhead.py``) take the minimum over several
    repeats: the minimum estimates the true cost with the least
    scheduler/allocator noise, which matters when asserting a few
    percent of difference rather than reporting a throughput.
    """
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def interleaved_best_of(fn_a, fn_b, repeats: int = 9):
    """Best-of-N wall times of two functions, measured interleaved.

    Comparing two ``best_of`` blocks taken back to back bakes machine
    drift (turbo states, a noisy neighbour finishing) into the ratio:
    whichever ran during the quiet window wins. Alternating A/B within
    one loop exposes both functions to the same conditions, which is
    what an overhead *ratio* assertion actually needs.
    """
    import time

    best_a = best_b = float("inf")
    for i in range(repeats):
        for fn in ((fn_a, fn_b) if i % 2 == 0 else (fn_b, fn_a)):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is fn_a:
                best_a = min(best_a, elapsed)
            else:
                best_b = min(best_b, elapsed)
    return best_a, best_b
