"""Guard: suite-runner supervision must stay cheap per job.

The resilient runner wraps every campaign job in bookkeeping (obs
events, retry accounting, optional ledger appends, optional watchdog
thread). Campaign jobs are seconds-long evaluations, so the wrapper
must cost micro- not milliseconds; this benchmark times a campaign of
trivial jobs through :class:`repro.runner.SuiteRunner` against a bare
loop calling the same functions, and fails if supervision costs more
than ``MAX_OVERHEAD_S`` per job. The deadline-watchdog mode (one worker
thread per attempt) and the fsynced-ledger mode are reported for
context — they buy hang-resilience and resumability with real costs
that should stay visible, not asserted flat.

Run with: ``pytest benchmarks/bench_runner_overhead.py --benchmark-only``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from benchmarks.conftest import best_of, run_once

from repro.runner import Job, RunLedger, SuiteRunner, SupervisorConfig

#: Trivial jobs per campaign; enough to average out setup noise.
N_JOBS = 200

#: Maximum tolerated supervision cost per job (no deadline, no ledger).
MAX_OVERHEAD_S = 0.005


def _jobs():
    return [
        Job(
            key=f"bench{index:04d}",
            label=f"bench/{index}",
            fn=lambda index=index: {"value": index},
            index=index,
        )
        for index in range(N_JOBS)
    ]


def _bare_loop() -> None:
    for job in _jobs():
        job.fn()


def _supervised(config: SupervisorConfig, ledger_dir=None) -> None:
    ledger = None
    if ledger_dir is not None:
        ledger = RunLedger(
            Path(ledger_dir) / "bench.jsonl", plan_key="bench"
        )
    SuiteRunner(config=config, ledger=ledger).run(_jobs(), name="bench")


def test_runner_overhead(benchmark, emit):
    config = SupervisorConfig(max_retries=0)
    bare = best_of(_bare_loop, repeats=5)
    supervised = best_of(lambda: _supervised(config), repeats=5)

    deadline_config = SupervisorConfig(deadline_s=30.0, max_retries=0)
    with_deadline = best_of(
        lambda: _supervised(deadline_config), repeats=3
    )

    def ledgered() -> None:
        with tempfile.TemporaryDirectory() as scratch:
            _supervised(config, ledger_dir=scratch)

    with_ledger = best_of(ledgered, repeats=3)

    per_job = (supervised - bare) / N_JOBS
    emit(
        "\n".join(
            [
                f"suite-runner supervision overhead ({N_JOBS} trivial jobs)",
                f"  bare loop:          {bare * 1e3:8.3f} ms",
                f"  supervised:         {supervised * 1e3:8.3f} ms"
                f"  ({per_job * 1e6:7.2f} us/job)",
                f"  + deadline watchdog:{with_deadline * 1e3:8.3f} ms"
                f"  ({(with_deadline - bare) / N_JOBS * 1e6:7.2f} us/job)",
                f"  + fsynced ledger:   {with_ledger * 1e3:8.3f} ms"
                f"  ({(with_ledger - bare) / N_JOBS * 1e6:7.2f} us/job)",
                f"  budget: {MAX_OVERHEAD_S * 1e6:.0f} us/job (plain mode)",
            ]
        )
    )
    assert per_job < MAX_OVERHEAD_S, (
        f"suite-runner supervision costs {per_job * 1e6:.1f} us per job "
        f"(budget {MAX_OVERHEAD_S * 1e6:.0f} us)"
    )
    run_once(benchmark, lambda: _supervised(config))


# ---------------------------------------------------------------------------
#: Sleep jobs of the scheduling-bound speedup measurement.
N_SLEEP_JOBS = 8
SLEEP_S = 0.25

#: Parallel fan-out of the speedup measurements.
N_WORKERS = 4

#: Required speedup of --workers 4 over --workers 1 on sleep jobs.
MIN_SLEEP_SPEEDUP = 2.0

#: Required speedup on the Table-5 plan — only asserted on hosts with
#: enough cores to make a compute-bound speedup physically possible.
MIN_PLAN_SPEEDUP = 2.0


def _sleep_portable_jobs():
    from repro.runner import PortableJob

    return [
        PortableJob(
            kind="sleep",
            key=f"sleep{index:02d}",
            label=f"sleep/{index}",
            index=index,
            payload={"seconds": SLEEP_S, "value": index},
        )
        for index in range(N_SLEEP_JOBS)
    ]


def _time_portable(workers: int) -> float:
    import time

    runner = SuiteRunner(
        config=SupervisorConfig(max_retries=0), workers=workers
    )
    start = time.perf_counter()
    report = runner.run_portable(_sleep_portable_jobs(), plan_key="bench")
    elapsed = time.perf_counter() - start
    assert report.counts() == {"ok": N_SLEEP_JOBS, "failed": 0}
    return elapsed


def _time_table5(workers: int) -> float:
    import time

    from repro.runner import run_plan, table5_plan

    plan = table5_plan(scale=0.15, schemes=("Baseline", "Best Avg"))
    start = time.perf_counter()
    report = run_plan(
        plan, config=SupervisorConfig(max_retries=0), workers=workers
    )
    elapsed = time.perf_counter() - start
    assert report.counts() == {"ok": 16, "failed": 0}
    return elapsed


def test_workers_speedup(benchmark, emit):
    """--workers N must actually buy wall-clock.

    Two measurements: (1) scheduling-bound sleep jobs, where the
    speedup depends only on the executor's fan-out working — asserted
    everywhere, including single-core CI runners; (2) the built-in
    Table-5 plan (statics-only so the benchmark stays seconds, not
    minutes), compute-bound — asserted only where >= ``N_WORKERS``
    cores exist for the workers to land on.
    """
    import os

    serial_sleep = _time_portable(1)
    parallel_sleep = _time_portable(N_WORKERS)
    sleep_speedup = serial_sleep / parallel_sleep

    serial_plan = _time_table5(1)
    parallel_plan = _time_table5(N_WORKERS)
    plan_speedup = serial_plan / parallel_plan

    cores = os.cpu_count() or 1
    emit(
        "\n".join(
            [
                f"parallel campaign speedup (--workers {N_WORKERS} "
                f"vs 1, {cores} cores)",
                f"  sleep jobs ({N_SLEEP_JOBS} x {SLEEP_S:.2f}s): "
                f"{serial_sleep:6.3f}s -> {parallel_sleep:6.3f}s "
                f"({sleep_speedup:4.2f}x, floor {MIN_SLEEP_SPEEDUP:.1f}x)",
                f"  table-5 plan (16 jobs):      "
                f"{serial_plan:6.3f}s -> {parallel_plan:6.3f}s "
                f"({plan_speedup:4.2f}x"
                + (
                    f", floor {MIN_PLAN_SPEEDUP:.1f}x)"
                    if cores >= N_WORKERS
                    else f", floor waived: {cores} core(s))"
                ),
            ]
        )
    )
    assert sleep_speedup >= MIN_SLEEP_SPEEDUP, (
        f"--workers {N_WORKERS} sped sleep jobs up only "
        f"{sleep_speedup:.2f}x (need >= {MIN_SLEEP_SPEEDUP:.1f}x)"
    )
    if cores >= N_WORKERS:
        assert plan_speedup >= MIN_PLAN_SPEEDUP, (
            f"--workers {N_WORKERS} sped the Table-5 plan up only "
            f"{plan_speedup:.2f}x (need >= {MIN_PLAN_SPEEDUP:.1f}x "
            f"on {cores} cores)"
        )
    run_once(benchmark, lambda: _time_portable(N_WORKERS))


# ---------------------------------------------------------------------------
#: Trivial jobs per store-fabric campaign.
N_STORE_JOBS = 50

#: Maximum tolerated fabric cost per job over the plain supervised
#: runner: lease claim + renewal thread + result publish + finalize
#: merge share. Campaign jobs are seconds-long; ~15 ms of fsync-bound
#: coordination per job is noise there but a regression here would
#: still catch an accidental O(N^2) rescan or a sync call in the loop.
MAX_STORE_OVERHEAD_S = 0.015


def test_store_fabric_overhead(benchmark, emit):
    """The lease-claim/publish/finalize fabric must stay milliseconds
    per job over the plain supervised runner on the same grid.

    Measured with an (empty-schedule) :class:`IOFaultInjector`
    installed: every durable write then routes through the active
    I/O shim, so this floor also guards the shim's own cost — a
    per-byte wrapper or a lock added to the hot path shows up here.
    """
    import tempfile as tf

    from repro.faults.io import IOFaultInjector, installed
    from repro.faults.spec import FaultSchedule
    from repro.runner import (
        ExperimentStore,
        PortableJob,
        run_store_worker,
    )

    jobs = [
        PortableJob(
            kind="sleep",
            key=f"store{index:03d}",
            label=f"store/{index}",
            index=index,
            payload={"seconds": 0.0, "value": index},
        )
        for index in range(N_STORE_JOBS)
    ]
    config = SupervisorConfig(max_retries=0)

    def plain() -> None:
        SuiteRunner(config=config).run_portable(jobs, name="bench")

    def fabric() -> None:
        with tf.TemporaryDirectory() as scratch:
            store = ExperimentStore.create(
                Path(scratch) / "store",
                jobs=jobs,
                name="bench",
                config=config,
            )
            with installed(IOFaultInjector(FaultSchedule())):
                summary = run_store_worker(store, poll_s=0.01)
            assert summary["complete"]

    plain_s = best_of(plain, repeats=3)
    fabric_s = best_of(fabric, repeats=3)
    per_job = (fabric_s - plain_s) / N_STORE_JOBS
    emit(
        "\n".join(
            [
                f"experiment-store fabric overhead ({N_STORE_JOBS} "
                f"trivial jobs, one worker, I/O shim installed)",
                f"  plain runner:  {plain_s * 1e3:8.3f} ms",
                f"  store fabric:  {fabric_s * 1e3:8.3f} ms"
                f"  ({per_job * 1e3:6.3f} ms/job)",
                f"  budget: {MAX_STORE_OVERHEAD_S * 1e3:.1f} ms/job "
                f"(claim + publish + finalize share)",
            ]
        )
    )
    assert per_job < MAX_STORE_OVERHEAD_S, (
        f"store fabric costs {per_job * 1e3:.2f} ms per job over the "
        f"plain runner (budget {MAX_STORE_OVERHEAD_S * 1e3:.1f} ms)"
    )
    run_once(benchmark, fabric)


# ---------------------------------------------------------------------------
#: Required steady-state speedup of the fast path (REPRO_FASTPATH=1,
#: the default) over the scalar reference on the Table-5 campaign.
MIN_FASTPATH_SPEEDUP = 10.0

#: Table-heavy scheme set: every scheme that walks the epoch x config
#: table, where the vectorized grid and the transition-cost memos do
#: their work. (SparseAdapt's sequential controller loop is measured by
#: the equivalence suite instead; its training cost would swamp this
#: wall-clock comparison with work both legs share.)
FASTPATH_SCHEMES = (
    "Baseline",
    "Best Avg",
    "Max Cfg",
    "Ideal Static",
    "Ideal Greedy",
    "Oracle",
)


def _run_table5_campaign(fast: bool):
    from repro import fastpath
    from repro.runner import run_plan, table5_plan

    plan = table5_plan(scale=0.15, schemes=FASTPATH_SCHEMES)
    with fastpath.overridden(fast):
        report = run_plan(plan, config=SupervisorConfig(max_retries=0))
    assert report.counts() == {"ok": 16, "failed": 0}
    return report


def _report_bytes(report) -> bytes:
    """Canonical bytes of a campaign report, wall-clock fields dropped."""
    import json

    rows = [
        {k: v for k, v in row.items() if k != "duration_s"}
        for row in report.rows
    ]
    return json.dumps(rows, sort_keys=True).encode()


def test_fastpath_speedup(benchmark, emit):
    """The fast path must buy >= 10x on the Table-5 campaign — and
    change nothing.

    Steady-state regime: traces and transition-cost memos warm, the
    repeated-evaluation shape of real campaigns (sweeps, compare runs,
    resume). The cold first pass is reported for honesty but not
    asserted — it is dominated by trace synthesis, which both legs
    share. Byte-identical reports across the legs are the safety rail:
    a vectorization that drifts by one ulp fails here before it can
    skew a paper table.
    """
    import time

    start = time.perf_counter()
    report_cold_scalar = _run_table5_campaign(fast=False)
    cold_scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    report_cold_fast = _run_table5_campaign(fast=True)
    cold_fast_s = time.perf_counter() - start

    from benchmarks.conftest import interleaved_best_of

    times = {}
    reports = {}

    def leg(fast: bool) -> None:
        start = time.perf_counter()
        reports[fast] = _run_table5_campaign(fast=fast)
        times[fast] = min(
            times.get(fast, float("inf")), time.perf_counter() - start
        )

    interleaved_best_of(lambda: leg(True), lambda: leg(False), repeats=3)
    fast_s, scalar_s = times[True], times[False]
    speedup = scalar_s / fast_s

    emit(
        "\n".join(
            [
                "fast-path speedup (table-5 campaign, 16 jobs, "
                f"{len(FASTPATH_SCHEMES)} table-heavy schemes)",
                f"  cold:   scalar {cold_scalar_s:6.3f}s   "
                f"fast {cold_fast_s:6.3f}s  "
                f"({cold_scalar_s / cold_fast_s:5.2f}x, trace "
                f"synthesis dominates, not asserted)",
                f"  steady: scalar {scalar_s:6.3f}s   "
                f"fast {fast_s:6.3f}s  ({speedup:5.2f}x, floor "
                f"{MIN_FASTPATH_SPEEDUP:.0f}x)",
                "  reports byte-identical across both legs and both "
                "regimes",
            ]
        )
    )
    reference = _report_bytes(report_cold_scalar)
    assert _report_bytes(report_cold_fast) == reference
    assert _report_bytes(reports[False]) == reference
    assert _report_bytes(reports[True]) == reference
    assert speedup >= MIN_FASTPATH_SPEEDUP, (
        f"fast path sped the table-5 campaign up only {speedup:.2f}x "
        f"(need >= {MIN_FASTPATH_SPEEDUP:.0f}x steady-state)"
    )
    run_once(benchmark, lambda: _run_table5_campaign(fast=True))
