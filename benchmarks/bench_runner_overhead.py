"""Guard: suite-runner supervision must stay cheap per job.

The resilient runner wraps every campaign job in bookkeeping (obs
events, retry accounting, optional ledger appends, optional watchdog
thread). Campaign jobs are seconds-long evaluations, so the wrapper
must cost micro- not milliseconds; this benchmark times a campaign of
trivial jobs through :class:`repro.runner.SuiteRunner` against a bare
loop calling the same functions, and fails if supervision costs more
than ``MAX_OVERHEAD_S`` per job. The deadline-watchdog mode (one worker
thread per attempt) and the fsynced-ledger mode are reported for
context — they buy hang-resilience and resumability with real costs
that should stay visible, not asserted flat.

Run with: ``pytest benchmarks/bench_runner_overhead.py --benchmark-only``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from benchmarks.conftest import best_of, run_once

from repro.runner import Job, RunLedger, SuiteRunner, SupervisorConfig

#: Trivial jobs per campaign; enough to average out setup noise.
N_JOBS = 200

#: Maximum tolerated supervision cost per job (no deadline, no ledger).
MAX_OVERHEAD_S = 0.005


def _jobs():
    return [
        Job(
            key=f"bench{index:04d}",
            label=f"bench/{index}",
            fn=lambda index=index: {"value": index},
            index=index,
        )
        for index in range(N_JOBS)
    ]


def _bare_loop() -> None:
    for job in _jobs():
        job.fn()


def _supervised(config: SupervisorConfig, ledger_dir=None) -> None:
    ledger = None
    if ledger_dir is not None:
        ledger = RunLedger(
            Path(ledger_dir) / "bench.jsonl", plan_key="bench"
        )
    SuiteRunner(config=config, ledger=ledger).run(_jobs(), name="bench")


def test_runner_overhead(benchmark, emit):
    config = SupervisorConfig(max_retries=0)
    bare = best_of(_bare_loop, repeats=5)
    supervised = best_of(lambda: _supervised(config), repeats=5)

    deadline_config = SupervisorConfig(deadline_s=30.0, max_retries=0)
    with_deadline = best_of(
        lambda: _supervised(deadline_config), repeats=3
    )

    def ledgered() -> None:
        with tempfile.TemporaryDirectory() as scratch:
            _supervised(config, ledger_dir=scratch)

    with_ledger = best_of(ledgered, repeats=3)

    per_job = (supervised - bare) / N_JOBS
    emit(
        "\n".join(
            [
                f"suite-runner supervision overhead ({N_JOBS} trivial jobs)",
                f"  bare loop:          {bare * 1e3:8.3f} ms",
                f"  supervised:         {supervised * 1e3:8.3f} ms"
                f"  ({per_job * 1e6:7.2f} us/job)",
                f"  + deadline watchdog:{with_deadline * 1e3:8.3f} ms"
                f"  ({(with_deadline - bare) / N_JOBS * 1e6:7.2f} us/job)",
                f"  + fsynced ledger:   {with_ledger * 1e3:8.3f} ms"
                f"  ({(with_ledger - bare) / N_JOBS * 1e6:7.2f} us/job)",
                f"  budget: {MAX_OVERHEAD_S * 1e6:.0f} us/job (plain mode)",
            ]
        )
    )
    assert per_job < MAX_OVERHEAD_S, (
        f"suite-runner supervision costs {per_job * 1e6:.1f} us per job "
        f"(budget {MAX_OVERHEAD_S * 1e6:.0f} us)"
    )
    run_once(benchmark, lambda: _supervised(config))
