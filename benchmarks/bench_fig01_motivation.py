"""Figure 1 — motivation: dynamic reconfiguration on the strip matrix.

Paper: OP-SpMSpM on a 128x128, 20%-dense matrix with dense separator
columns; a dynamic scheme that adapts to the explicit multiply->merge
transition and the implicit dense/sparse outer products achieves ~1.5x
less energy and ~22.6% faster execution than the best static
configuration. We reproduce the dominance shape (dynamic no worse on
either axis, strictly better on at least one) and emit the timeline.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_timeline


def test_fig01_motivation(benchmark, emit):
    result = run_once(
        benchmark, figures.figure1_motivation, n=128, density=0.20
    )
    dynamic = result["dynamic_timeline"]
    phases = dynamic["phase"]
    transition = phases.index("merge") if "merge" in phases else -1
    lines = [
        "Figure 1 - motivation (OP-SpMSpM, 128x128 strip matrix)",
        f"epochs: {result['n_epochs']}",
        f"dynamic vs ideal-static energy gain: {result['energy_gain']:.2f}x"
        " (paper ~1.5x vs 'best static')",
        f"dynamic vs ideal-static speedup    : "
        f"{result['speedup_percent']:.1f}% (paper ~22.6%)",
        f"dynamic vs Best-Avg energy gain    : "
        f"{result['energy_gain_vs_best_avg']:.2f}x",
        f"dynamic vs Best-Avg speedup        : "
        f"{result['speedup_percent_vs_best_avg']:.1f}%",
        f"explicit phase transition at epoch : {transition}",
        "clock trajectory (dynamic)         : "
        + " ".join(f"{c:g}" for c in dynamic["clock_mhz"][:12])
        + " ...",
        "L2 capacity trajectory (dynamic)   : "
        + " ".join(f"{int(c)}" for c in dynamic["l2_kb"][:12])
        + " ...",
        "",
        format_timeline(
            "dynamic timeline (paper Figure 1 right panels):",
            {
                "GFLOPS/W": dynamic["gflops_per_watt"],
                "clock MHz": dynamic["clock_mhz"],
                "L2 kB": dynamic["l2_kb"],
                "DRAM util": dynamic["dram_utilization"],
            },
        ),
    ]
    emit("\n".join(lines))

    # Shape assertions: dynamic dominates the best static configuration.
    assert result["energy_gain"] >= 1.0
    assert result["speedup_percent"] >= -1.0
    assert result["energy_gain"] > 1.02 or result["speedup_percent"] > 2.0
    # Both explicit phases appear in the timeline.
    assert "multiply" in phases and "merge" in phases
