"""Section 6.4 — comparison against ProfileAdapt (Dubach et al.).

Paper shapes: against the naive ProfileAdapt (profiling switch at
every epoch), SparseAdapt gains 2.8x GFLOPS and 2.0x GFLOPS/W in
Power-Performance mode and 2.9x GFLOPS/W in Energy-Efficient mode;
against the ideal variant (perfect external phase detector) the gains
shrink but remain >= ~1.1x. ProfileAdapt runs at its own best epoch
size, chosen by sweep, exactly as the paper does.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_gain_table


def test_sec64_profileadapt(benchmark, emit):
    result = run_once(
        benchmark,
        figures.section64_profileadapt,
        matrix_ids=("R09", "R10", "R12", "R15"),
        scale=0.2,
    )
    rows = {mode_key.upper(): ratios for mode_key, ratios in result.items()}
    emit(
        format_gain_table(
            "Section 6.4 - SparseAdapt / ProfileAdapt geomean ratios"
            " (SpMSpV, L1 cache)",
            rows,
            (
                "perf_vs_naive",
                "eff_vs_naive",
                "perf_vs_ideal",
                "eff_vs_ideal",
            ),
        )
    )
    # SparseAdapt clearly beats the naive scheme on efficiency.
    assert result["pp"]["eff_vs_naive"] > 1.3
    assert result["ee"]["eff_vs_naive"] > 1.3
    # The ideal phase detector narrows but does not close the gap.
    assert result["ee"]["eff_vs_ideal"] > 0.95
    assert result["ee"]["eff_vs_naive"] > result["ee"]["eff_vs_ideal"]
