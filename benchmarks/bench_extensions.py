"""Extension studies beyond the paper's evaluation.

1. **Dynamic memory-mode switching** (paper Section 7): the
   MemoryModeController vs. the per-type compile-time choices it
   subsumes.
2. **Additional graph workloads** (PageRank, connected components) on
   the adaptive runtime — the GraphBLAS-style breadth the paper's
   framework targets.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import BASELINE, run_static, spm_variant
from repro.core import (
    HybridPolicy,
    MemoryModeController,
    OptimizationMode,
    SparseAdaptController,
    train_default_model,
    train_memory_mode_model,
)
from repro.experiments.harness import build_trace
from repro.experiments.reporting import format_gain_table
from repro.graph import connected_components, pagerank
from repro.sparse import suite
from repro.transmuter import TransmuterModel

EE = OptimizationMode.ENERGY_EFFICIENT


def _memory_mode_study():
    machine = TransmuterModel()
    memory_model = train_memory_mode_model(EE, kernel="spmspv", quick=True)
    rows = {}
    for matrix_id in ("P3", "R09", "R13"):
        trace = build_trace("spmspv", matrix_id, scale=0.35)
        cache_static = run_static(machine, trace, BASELINE)
        spm_static = run_static(machine, trace, spm_variant(BASELINE))
        cache_adaptive = SparseAdaptController(
            memory_model.cache_model, machine, EE, HybridPolicy(0.4), BASELINE
        ).run(trace)
        controller = MemoryModeController(
            memory_model, machine, EE, HybridPolicy(0.4), BASELINE
        )
        adaptive = controller.run(trace)
        base = cache_static.gflops_per_watt
        rows[matrix_id] = {
            "spm_static": spm_static.gflops_per_watt / base,
            "cache_adaptive": cache_adaptive.gflops_per_watt / base,
            "memory_mode": adaptive.gflops_per_watt / base,
            "type_switches": float(controller.n_type_switches),
        }
    return rows


def test_ext_memory_mode(benchmark, emit):
    rows = run_once(benchmark, _memory_mode_study)
    emit(
        format_gain_table(
            "Extension 1 - dynamic memory-mode switching (Section 7)"
            " - EE efficiency gains over the cache Baseline",
            rows,
            ("spm_static", "cache_adaptive", "memory_mode", "type_switches"),
        )
    )
    for gains in rows.values():
        # The memory-mode controller must never lose to the same-type
        # adaptive controller it extends (it can only add switches that
        # passed its amortization guard).
        assert gains["memory_mode"] >= 0.95 * gains["cache_adaptive"]


def _graph_workloads_study():
    machine = TransmuterModel()
    model = train_default_model(EE, kernel="spmspv")
    rows = {}
    for matrix_id in ("R10", "R14"):
        graph = suite.load(matrix_id, scale=0.25)
        csc = graph.to_csc()
        for name, trace in (
            ("pagerank", pagerank(csc, max_iterations=10).trace),
            ("components", connected_components(csc).trace),
        ):
            baseline = run_static(machine, trace, BASELINE)
            adaptive = SparseAdaptController(
                model, machine, EE, HybridPolicy(0.4), BASELINE
            ).run(trace)
            rows[f"{name}-{matrix_id}"] = {
                "epochs": float(trace.n_epochs),
                "efficiency_gain": (
                    adaptive.gflops_per_watt / baseline.gflops_per_watt
                ),
            }
    return rows


def test_ext_graph_workloads(benchmark, emit):
    rows = run_once(benchmark, _graph_workloads_study)
    emit(
        format_gain_table(
            "Extension 2 - PageRank / connected components under"
            " SparseAdapt (EE efficiency gains over Baseline)",
            rows,
            ("epochs", "efficiency_gain"),
        )
    )
    gains = [row["efficiency_gain"] for row in rows.values()]
    assert all(g > 1.0 for g in gains)
