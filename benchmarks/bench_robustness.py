"""Deployment robustness studies.

1. **Telemetry noise** — real saturating counters and sampling windows
   are never exact; the trees were trained on clean telemetry, so this
   sweeps multiplicative counter noise and reports how the deployed
   controller degrades.
2. **Training-set size** — the paper trains on ~360k examples; the
   stock model here uses a reduced Table-3 grid. This sweeps the
   sample budget per phase and shows where the gains saturate.
3. **Energy breakdown** — where each scheme's energy actually goes
   (DRAM vs leakage vs dynamic), explaining *why* the adaptive scheme
   wins (it recovers leakage and voltage-scaled dynamic energy, not
   DRAM energy, which is workload-fixed).
4. **Fault-rate sweep** — the mixed fault campaign (counter corruption,
   dropped reconfigurations, machine throttling) at increasing rate
   scales, hardened vs. unhardened, reporting how much of the clean
   adaptive gain each controller retains (see docs/robustness.md).
"""

from benchmarks.conftest import run_once
from repro.baselines import BASELINE, MAX_CFG, run_static
from repro.core import (
    HybridPolicy,
    OptimizationMode,
    SparseAdaptController,
    build_training_set,
    table3_phases,
    train_default_model,
    train_model,
)
from repro.core.training import QUICK_PARAM_GRID
from repro.experiments.harness import build_trace
from repro.experiments.reporting import format_gain_table
from repro.transmuter import TransmuterModel

EE = OptimizationMode.ENERGY_EFFICIENT


def _noise_sweep():
    machine = TransmuterModel()
    model = train_default_model(EE, kernel="spmspv")
    trace = build_trace("spmspv", "P3", scale=0.3)
    baseline = run_static(machine, trace, BASELINE)
    out = {}
    for noise in (0.0, 0.05, 0.15, 0.30):
        schedule = SparseAdaptController(
            model,
            machine,
            EE,
            HybridPolicy(0.4),
            BASELINE,
            telemetry_noise=noise,
            noise_seed=1,
        ).run(trace)
        out[f"noise={int(noise * 100)}%"] = {
            "efficiency_gain": (
                schedule.gflops_per_watt / baseline.gflops_per_watt
            ),
            "reconfigurations": float(schedule.n_reconfigurations),
        }
    return out


def test_robustness_telemetry_noise(benchmark, emit):
    rows = run_once(benchmark, _noise_sweep)
    emit(
        format_gain_table(
            "Robustness 1 - counter noise sweep (SpMSpV P3, EE mode)",
            rows,
            ("efficiency_gain", "reconfigurations"),
        )
    )
    gains = [row["efficiency_gain"] for row in rows.values()]
    # Clean telemetry is at least as good as heavy noise, and even 30%
    # noise keeps a working controller.
    assert gains[0] >= gains[-1] - 0.05
    assert gains[-1] > 1.0


def _training_size_sweep():
    machine = TransmuterModel()
    trace = build_trace("spmspv", "P3", scale=0.3)
    baseline = run_static(machine, trace, BASELINE)
    phases = table3_phases("spmspv")
    out = {}
    for k_samples in (4, 8, 16, 32):
        training_set = build_training_set(
            phases, EE, k_samples=k_samples, seed=0
        )
        model = train_model(training_set, param_grid=QUICK_PARAM_GRID)
        schedule = SparseAdaptController(
            model, machine, EE, HybridPolicy(0.4), BASELINE
        ).run(trace)
        out[f"k={k_samples}"] = {
            "examples": float(training_set.n_examples),
            "efficiency_gain": (
                schedule.gflops_per_watt / baseline.gflops_per_watt
            ),
        }
    return out


def test_robustness_training_size(benchmark, emit):
    rows = run_once(benchmark, _training_size_sweep)
    emit(
        format_gain_table(
            "Robustness 2 - training-set size sweep (SpMSpV P3, EE mode)",
            rows,
            ("examples", "efficiency_gain"),
        )
    )
    gains = [row["efficiency_gain"] for row in rows.values()]
    # More data never collapses the controller; the largest budget must
    # be competitive with the best observed.
    assert gains[-1] >= max(gains) * 0.9
    assert all(g > 0.8 for g in gains)


def _energy_breakdown_study():
    machine = TransmuterModel()
    model = train_default_model(EE, kernel="spmspv")
    trace = build_trace("spmspv", "P3", scale=0.3)
    schedules = {
        "Baseline": run_static(machine, trace, BASELINE),
        "Max Cfg": run_static(machine, trace, MAX_CFG),
        "SparseAdapt": SparseAdaptController(
            model, machine, EE, HybridPolicy(0.4), BASELINE
        ).run(trace),
    }
    out = {}
    for name, schedule in schedules.items():
        breakdown = schedule.energy_breakdown()
        total = schedule.total_energy_j
        out[name] = {
            key: value / total
            for key, value in breakdown.items()
            if key
            in ("core_dynamic", "l1_dynamic", "l2_dynamic", "dram", "leakage")
        }
        out[name]["total_uj"] = total * 1e6
    return out


def test_robustness_energy_breakdown(benchmark, emit):
    rows = run_once(benchmark, _energy_breakdown_study)
    emit(
        format_gain_table(
            "Robustness 3 - energy breakdown by component (fractions;"
            " SpMSpV P3, EE mode)",
            rows,
            (
                "core_dynamic",
                "l1_dynamic",
                "l2_dynamic",
                "dram",
                "leakage",
                "total_uj",
            ),
            value_format="{:8.3f}",
        )
    )
    # Max Cfg's energy problem is leakage; SparseAdapt's energy is
    # mostly the irreducible DRAM share.
    assert rows["Max Cfg"]["leakage"] > rows["SparseAdapt"]["leakage"]
    assert rows["SparseAdapt"]["dram"] > rows["Max Cfg"]["dram"]
    assert rows["SparseAdapt"]["total_uj"] < rows["Baseline"]["total_uj"]


def _fault_sweep():
    from repro.faults import mixed_schedule, run_campaign

    result = run_campaign(
        mixed_schedule(0.1, seed=0),
        rates=(0.0, 0.5, 1.0),
        kernel="spmspv",
        matrix_id="P3",
        scale=0.3,
        mode=EE,
    )
    out = {}
    for row in result.rows:
        for variant in ("hardened", "unhardened"):
            cells = row[variant]
            out[f"scale={row['rate_scale']:g} {variant}"] = {
                "gain": cells["gain"],
                "retention": cells["retention"],
                "injected": float(cells["n_faults_injected"]),
                "detected": float(cells["n_faults_detected"]),
                "safe_epochs": float(cells["safe_epochs"]),
            }
    return out


def test_robustness_fault_sweep(benchmark, emit):
    rows = run_once(benchmark, _fault_sweep)
    emit(
        format_gain_table(
            "Robustness 4 - mixed fault campaign (SpMSpV P3, EE mode,"
            " 10% base rate)",
            rows,
            ("gain", "retention", "injected", "detected", "safe_epochs"),
            value_format="{:8.3f}",
        )
    )
    # Fault-free runs are unaffected by the machinery being armed.
    assert rows["scale=0 hardened"]["retention"] == 1.0
    assert rows["scale=0 unhardened"]["retention"] == 1.0
    # At the full 10% mixed-fault rate the hardened controller detects
    # the injected corruption and retains a documented fraction of the
    # clean adaptive gain over BASELINE (docs/robustness.md).
    full = rows["scale=1 hardened"]
    assert full["detected"] > 0
    assert full["retention"] >= 0.35
    assert full["gain"] > 1.0
