"""Figure 12 — system-size scaling without retraining.

Paper shape: GFLOPS/W gains of 1.7-2.0x geomean persist while scaling
the system from 1x8 to 4x16 tiles x GPEs using the model trained on
the 2x8 system (fixed 1 GB/s bandwidth); DVFS benefits grow with
system size because larger systems saturate the link sooner.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

GEOMETRIES = ((1, 8), (2, 8), (2, 16), (4, 16))


def test_fig12_system_size(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure12_system_size,
        geometries=GEOMETRIES,
        scale=0.25,
    )
    matrices = list(next(iter(result.values())))
    rows = {
        geometry: dict(values) for geometry, values in result.items()
    }
    emit(
        format_gain_table(
            "Figure 12 - EE GFLOPS/W gains over Baseline while scaling"
            " the system (2x8-trained model)",
            append_geomean(rows),
            matrices,
        )
    )
    for geometry, values in result.items():
        gm = geometric_mean(list(values.values()))
        # Gains persist at every geometry without retraining.
        assert gm > 1.1, f"no gain at {geometry}"
