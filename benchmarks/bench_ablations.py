"""Ablation studies of SparseAdapt's design choices (DESIGN.md §5).

1. **Configuration echo** (paper Section 4.2's key insight): training
   and inferring with the current configuration parameters as features
   vs. a counters-only model.
2. **Outer- vs inner-product SpMSpM** (paper Section 5.4's algorithm
   choice): modeled cost of both formulations across a density sweep.
3. **Epoch size** (paper Section 5.4 sweeps 250-4k FP-ops for SpMSpV).
4. **History-based control** (paper Section 7 future work): the
   pattern-table controller vs. the stock controller.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import BASELINE, run_static
from repro.core import (
    HistoryAwareController,
    HybridPolicy,
    OptimizationMode,
    SparseAdaptController,
    build_training_set,
    table3_phases,
    train_default_model,
    train_model,
)
from repro.core.ablation import train_counters_only_model
from repro.core.training import QUICK_PARAM_GRID
from repro.experiments.harness import build_trace
from repro.experiments.reporting import format_gain_table, format_scalar_table
from repro.kernels import trace_spmspm, trace_spmspm_inner
from repro.sparse import generators
from repro.transmuter import TransmuterModel

EE = OptimizationMode.ENERGY_EFFICIENT


def _config_echo_ablation():
    phases = table3_phases("spmspv")
    training_set = build_training_set(phases, EE, k_samples=24, seed=0)
    full_model = train_model(training_set, param_grid=QUICK_PARAM_GRID)
    ablated_model = train_counters_only_model(training_set)

    machine = TransmuterModel()
    rows = {}
    for matrix_id in ("P2", "P3"):
        trace = build_trace("spmspv", matrix_id, scale=0.4)
        baseline = run_static(machine, trace, BASELINE)
        gains = {}
        for label, model in (
            ("with_config_echo", full_model),
            ("counters_only", ablated_model),
        ):
            schedule = SparseAdaptController(
                model, machine, EE, HybridPolicy(0.4), BASELINE
            ).run(trace)
            gains[label] = (
                schedule.gflops_per_watt / baseline.gflops_per_watt
            )
        rows[matrix_id] = gains
    return rows


def test_ablation_config_echo(benchmark, emit):
    rows = run_once(benchmark, _config_echo_ablation)
    emit(
        format_gain_table(
            "Ablation 1 - configuration-echo features"
            " (EE efficiency gains over Baseline)",
            rows,
            ("with_config_echo", "counters_only"),
        )
    )
    for gains in rows.values():
        # The echo must not hurt; it usually helps. (Its main value is
        # removing the profiling configuration — see bench_sec64.)
        assert gains["with_config_echo"] >= 0.95 * gains["counters_only"]


def _op_vs_ip_sweep():
    machine = TransmuterModel()
    out = {}
    n = 192
    for density in (0.005, 0.02, 0.08, 0.25):
        matrix = generators.uniform_random(n, n, density, seed=9)
        a_csc = matrix.to_csc()
        b_csr = matrix.transpose().to_csr()
        outer = run_static(
            machine, trace_spmspm(a_csc, b_csr), BASELINE, "outer"
        )
        inner = run_static(
            machine, trace_spmspm_inner(a_csc, b_csr), BASELINE, "inner"
        )
        out[f"density={density:g}"] = {
            "outer_time_ms": outer.total_time_s * 1e3,
            "inner_time_ms": inner.total_time_s * 1e3,
            "inner_over_outer": inner.total_time_s / outer.total_time_s,
        }
    return out


def test_ablation_outer_vs_inner_product(benchmark, emit):
    rows = run_once(benchmark, _op_vs_ip_sweep)
    emit(
        format_gain_table(
            "Ablation 2 - outer- vs inner-product SpMSpM"
            " (Baseline config, modeled time)",
            rows,
            ("outer_time_ms", "inner_time_ms", "inner_over_outer"),
            value_format="{:8.3f}",
        )
    )
    ratios = [row["inner_over_outer"] for row in rows.values()]
    # At the paper's low densities the outer product wins clearly...
    assert ratios[0] > 1.5
    # ...and the gap narrows monotonically as density rises.
    assert ratios == sorted(ratios, reverse=True)


def _epoch_size_sweep():
    machine = TransmuterModel()
    model = train_default_model(EE, kernel="spmspv")
    out = {}
    for epoch_fp_ops in (125.0, 250.0, 500.0, 1000.0, 2000.0, 8000.0):
        trace = build_trace(
            "spmspv", "P3", scale=0.4, epoch_fp_ops=epoch_fp_ops
        )
        baseline = run_static(machine, trace, BASELINE)
        schedule = SparseAdaptController(
            model, machine, EE, HybridPolicy(0.4), BASELINE
        ).run(trace)
        out[f"epoch={int(epoch_fp_ops)}"] = {
            "efficiency_gain": (
                schedule.gflops_per_watt / baseline.gflops_per_watt
            ),
            "reconfigurations": float(schedule.n_reconfigurations),
        }
    return out


def test_ablation_epoch_size(benchmark, emit):
    rows = run_once(benchmark, _epoch_size_sweep)
    emit(
        format_gain_table(
            "Ablation 3 - epoch-size sweep (SpMSpV P3, EE mode; the"
            " paper picked 500 FP-ops from a 250-4k sweep)",
            rows,
            ("efficiency_gain", "reconfigurations"),
        )
    )
    gains = [row["efficiency_gain"] for row in rows.values()]
    # Every epoch size must produce a working controller with gains.
    assert all(g > 1.0 for g in gains)


def _history_ablation():
    machine = TransmuterModel()
    model = train_default_model(EE, kernel="spmspv")
    out = {}
    for kernel, matrix_id in (("spmspv", "P3"), ("bfs", "R10")):
        trace = build_trace(kernel, matrix_id, scale=0.3)
        baseline = run_static(machine, trace, BASELINE)
        stock = SparseAdaptController(
            model, machine, EE, HybridPolicy(0.4), BASELINE
        ).run(trace)
        history_controller = HistoryAwareController(
            model, machine, EE, HybridPolicy(0.4), BASELINE, history=2
        )
        history = history_controller.run(trace)
        out[f"{kernel}-{matrix_id}"] = {
            "stock_gain": stock.gflops_per_watt / baseline.gflops_per_watt,
            "history_gain": (
                history.gflops_per_watt / baseline.gflops_per_watt
            ),
            "pattern_hit_rate": history_controller.pattern_hit_rate,
        }
    return out


def test_ablation_history_controller(benchmark, emit):
    rows = run_once(benchmark, _history_ablation)
    emit(
        format_gain_table(
            "Ablation 4 - history-based pattern table"
            " (paper Section 7 future work), EE mode",
            rows,
            ("stock_gain", "history_gain", "pattern_hit_rate"),
        )
    )
    for row in rows.values():
        # The table must actually fire on these repetitive workloads...
        assert row["pattern_hit_rate"] > 0.0
        # ...and stay competitive with the stock controller.
        assert row["history_gain"] > 0.85 * row["stock_gain"]
