"""Figure 9 — effect of decision-tree depth on SparseAdapt's gains.

Paper shape: in Power-Performance mode GFLOPS is more sensitive to
model complexity than GFLOPS/W; very shallow trees lose gains, and the
curve flattens (or dips from overfitting) at large depths.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_gain_table

DEPTHS = (2, 6, 10, 14, 22)


def test_fig09_model_complexity(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure9_model_complexity,
        depths=DEPTHS,
        matrix_ids=("P1", "P3"),
        scale=0.15,
    )
    blocks = []
    for matrix_id, per_depth in result.items():
        rows = {
            f"depth={depth}": per_depth[depth] for depth in DEPTHS
        }
        blocks.append(
            format_gain_table(
                f"Figure 9 - SparseAdapt gains vs tree depth ({matrix_id},"
                " PP mode)",
                rows,
                ("perf_gain", "efficiency_gain"),
            )
        )
    emit("\n\n".join(blocks))

    for matrix_id, per_depth in result.items():
        gains = [per_depth[d]["efficiency_gain"] for d in DEPTHS]
        # All depths produce a working controller.
        assert all(g > 0.5 for g in gains)
        # Deep trees should not be worse than the shallowest stub by a
        # large margin (the model has learned *something* by depth 10).
        assert per_depth[10]["efficiency_gain"] >= per_depth[2][
            "efficiency_gain"
        ] * 0.9


def test_fig09_per_parameter_depth(benchmark, emit):
    """The paper's exact protocol: vary one parameter's tree at a time."""
    result = run_once(
        benchmark,
        figures.figure9_per_parameter_depth,
        depths=(2, 10),
        matrix_id="P3",
        scale=0.15,
    )
    rows = {
        parameter: {f"depth={d}": gain for d, gain in per_depth.items()}
        for parameter, per_depth in result.items()
    }
    emit(
        format_gain_table(
            "Figure 9 (per-parameter) - efficiency gain while varying"
            " one tree's depth (P3, PP mode)",
            rows,
            ("depth=2", "depth=10"),
        )
    )
    # Crippling a single tree never helps, and at least one parameter's
    # tree is depth-sensitive (the paper highlights the clock model).
    drops = {
        parameter: per_depth[10] - per_depth[2]
        for parameter, per_depth in result.items()
    }
    assert all(drop >= -0.05 for drop in drops.values())
    assert max(drops.values()) > 0.02
