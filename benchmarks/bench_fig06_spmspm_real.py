"""Figure 6 — SpMSpM (C = A A^T) on real-world stand-ins R01-R08.

Paper shapes: SparseAdapt delivers Best-Avg-class performance (within
~8% of Max Cfg) at 5.3x better efficiency than Max Cfg in
Power-Performance mode, and 1.8x efficiency over Baseline (1.6x over
Best Avg) in Energy-Efficient mode.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

SCHEMES = ("Baseline", "Best Avg", "Max Cfg", "SparseAdapt")


def test_fig06_spmspm_real(benchmark, emit):
    result = run_once(benchmark, figures.figure6_spmspm_real, scale=0.3)
    blocks = [
        format_gain_table(
            "Figure 6 (left) - PP mode GFLOPS gains over Baseline",
            append_geomean(result["pp_perf"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 6 (middle) - PP mode GFLOPS/W gains over Baseline",
            append_geomean(result["pp_eff"]),
            SCHEMES,
        ),
        format_gain_table(
            "Figure 6 (right) - EE mode GFLOPS/W gains over Baseline",
            append_geomean(result["ee_eff"]),
            SCHEMES,
        ),
    ]
    gm = lambda table, scheme: geometric_mean(
        [table[m][scheme] for m in table]
    )
    ratio = gm(result["pp_eff"], "SparseAdapt") / gm(
        result["pp_eff"], "Max Cfg"
    )
    blocks.append(
        "SparseAdapt vs Max Cfg efficiency (PP): "
        f"{ratio:.1f}x (paper: 5.3x)"
    )
    emit("\n\n".join(blocks))

    # Performance close to Max Cfg.
    assert (
        gm(result["pp_perf"], "SparseAdapt")
        > 0.8 * gm(result["pp_perf"], "Max Cfg")
    )
    # Several-x better efficiency than Max Cfg.
    assert ratio > 3.0
    # EE-mode efficiency gain over Baseline and Best Avg.
    assert gm(result["ee_eff"], "SparseAdapt") > 1.4
    assert gm(result["ee_eff"], "SparseAdapt") > gm(
        result["ee_eff"], "Best Avg"
    )
