"""Figure 7 — SpMSpV on R09-R16 in Power-Performance mode, for both
compile-time L1 memory types (cache and scratchpad).

Paper shapes: gains over Best Avg are larger with the L1 as SPM (1.9x)
than as cache (1.3x); SparseAdapt beats Max Cfg on performance by ~1.2x
while being 4.3x (cache) / 6.2x (SPM) more energy-efficient.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import append_geomean, format_gain_table
from repro.ml.metrics import geometric_mean

SCHEMES = ("Baseline", "Best Avg", "Max Cfg", "SparseAdapt")


def test_fig07_spmspv_real(benchmark, emit):
    result = run_once(benchmark, figures.figure7_spmspv_real, scale=0.35)
    blocks = []
    for l1_type in ("cache", "spm"):
        blocks.append(
            format_gain_table(
                f"Figure 7 - PP GFLOPS gains over Baseline (L1 = {l1_type})",
                append_geomean(result[l1_type]["perf"]),
                SCHEMES,
            )
        )
        blocks.append(
            format_gain_table(
                f"Figure 7 - PP GFLOPS/W gains over Baseline (L1 = {l1_type})",
                append_geomean(result[l1_type]["eff"]),
                SCHEMES,
            )
        )
    emit("\n\n".join(blocks))

    gm = lambda table, scheme: geometric_mean(
        [table[m][scheme] for m in table]
    )
    for l1_type in ("cache", "spm"):
        eff = result[l1_type]["eff"]
        # SparseAdapt is clearly more efficient than Max Cfg.
        assert gm(eff, "SparseAdapt") > 1.5 * gm(eff, "Max Cfg")
        # And no less efficient than the Baseline.
        assert gm(eff, "SparseAdapt") > 0.95
