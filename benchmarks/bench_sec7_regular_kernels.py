"""Section 7 — regular kernels: dynamic control is overkill.

Paper shape: for GeMM and Conv the gap between Ideal Static and the
Oracle is under ~5%, i.e. a static configuration captures essentially
all the benefit for regular workloads.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_scalar_table


def test_sec7_regular_kernels(benchmark, emit):
    result = run_once(benchmark, figures.section7_regular_kernels)
    emit(
        format_scalar_table(
            "Section 7 - Oracle efficiency headroom over Ideal Static"
            " (fraction; paper: < 0.05)",
            result,
            value_format="{:8.4f}",
        )
    )
    for kernel, gap in result.items():
        assert gap >= -1e-9, f"oracle worse than static for {kernel}"
        assert gap < 0.05, f"regular kernel {kernel} shows dynamic headroom"
