"""Table 3 / Section 5.1 — the offline training pipeline.

Times the full pipeline the paper runs offline: sweep the Table-3 grid
(uniform matrices x densities x bandwidths), find the "best"
configuration for every phase via the Figure-4 three-step search, build
the training set, and fit the per-parameter tree ensemble with 3-fold
cross-validated hyperparameter selection.
"""

from benchmarks.conftest import run_once
from repro.core import OptimizationMode, build_training_set, table3_phases, train_model
from repro.experiments.reporting import format_scalar_table
from repro.ml.model_selection import KFold, cross_val_score


def _pipeline():
    phases = table3_phases(
        "spmspv",
        grid={
            "dims": (256, 1024),
            "densities": (0.005, 0.02),
            "bandwidths": (0.5, 2.0, 8.0),
        },
        seed=0,
    )
    training_set = build_training_set(
        phases, OptimizationMode.ENERGY_EFFICIENT, k_samples=16, seed=0
    )
    model = train_model(
        training_set,
        param_grid={
            "criterion": ("gini", "entropy"),
            "max_depth": (6, 12),
            "min_samples_leaf": (1, 10),
        },
    )
    return phases, training_set, model


def test_training_pipeline(benchmark, emit):
    phases, training_set, model = run_once(benchmark, _pipeline)

    # Held-out accuracy of each parameter's tree under 3-fold CV.
    accuracies = {}
    for name, tree in model.trees.items():
        labels = training_set.labels[name]
        import numpy as np

        if np.unique(labels).size == 1:
            accuracies[name] = 1.0
            continue
        scores = cross_val_score(
            tree, training_set.features, labels, KFold(3, random_state=1)
        )
        accuracies[name] = float(scores.mean())

    report = {
        "phases": float(len(phases)),
        "training_examples": float(training_set.n_examples),
        **{f"cv_accuracy[{k}]": v for k, v in accuracies.items()},
    }
    emit(
        format_scalar_table(
            "Training pipeline - Table 3 sweep -> Figure 4 dataset ->"
            " per-parameter trees",
            report,
        )
    )
    assert training_set.n_examples == len(phases) * 16
    # The trees must predict clearly better than the largest-class
    # baseline would on the multi-valued parameters.
    assert accuracies["clock_mhz"] > 0.5
    assert accuracies["l2_kb"] > 0.5
