"""Figure 11 — policy sweep (left) and external-bandwidth sweep (right).

Paper shapes: hybrid tolerances of 10-40% beat both the conservative
and the very permissive extremes; sweeping the external bandwidth
without retraining, SparseAdapt's efficiency gains exceed 3x over
Baseline when memory-bound and shrink toward ~1.1x over Best Avg at
the compute-bound end.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_gain_table

TOLERANCES = (0.1, 0.2, 0.4, 0.7, 0.9)


def test_fig11_policy_sweep(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure11_policy_sweep,
        matrix_ids=("P3", "R12"),
        tolerances=TOLERANCES,
        scale=0.15,
    )
    blocks = [
        format_gain_table(
            f"Figure 11 (left) - policy sweep on {matrix_id} (PP mode)",
            rows,
            ("perf_gain", "efficiency_gain"),
        )
        for matrix_id, rows in result.items()
    ]
    emit("\n\n".join(blocks))

    for rows in result.values():
        # Every policy yields a functional controller.
        assert all(r["efficiency_gain"] > 0.5 for r in rows.values())
        # Some hybrid tolerance is at least as good as both extremes.
        best_hybrid = max(
            rows[f"hybrid-{int(t * 100)}%"]["efficiency_gain"]
            for t in TOLERANCES
        )
        assert best_hybrid >= rows["conservative"]["efficiency_gain"] * 0.98
        assert best_hybrid >= rows["aggressive"]["efficiency_gain"] * 0.98


def test_fig11_bandwidth_sweep(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure11_bandwidth_sweep,
        matrix_id="P3",
        bandwidths_gbps=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        scale=0.15,
    )
    rows = {
        f"{bandwidth:g} GB/s": gains for bandwidth, gains in result.items()
    }
    emit(
        format_gain_table(
            "Figure 11 (right) - EE efficiency gains vs external bandwidth"
            " (no retraining)",
            rows,
            ("over_baseline", "over_best_avg"),
        )
    )
    bandwidths = sorted(result)
    # Memory-bound end gains exceed the compute-bound end.
    assert (
        result[bandwidths[0]]["over_baseline"]
        > result[bandwidths[-1]]["over_baseline"]
    )
    # Strong gains when bandwidth-starved.
    assert result[bandwidths[0]]["over_baseline"] > 1.5
    # Still competitive with Best Avg at the compute-bound end.
    assert result[bandwidths[-1]]["over_best_avg"] > 0.9
