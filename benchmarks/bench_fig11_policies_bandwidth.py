"""Figure 11 — policy sweep (left) and external-bandwidth sweep (right).

Paper shapes: hybrid tolerances of 10-40% beat both the conservative
and the very permissive extremes; sweeping the external bandwidth
without retraining, SparseAdapt's efficiency gains exceed 3x over
Baseline when memory-bound and shrink toward ~1.1x over Best Avg at
the compute-bound end.
"""

import pathlib
from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_gain_table

TOLERANCES = (0.1, 0.2, 0.4, 0.7, 0.9)

SPEC_PATH = (
    pathlib.Path(__file__).parent.parent
    / "experiments"
    / "specs"
    / "policies_vs_baselines.json"
)


def test_fig11_policy_sweep(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure11_policy_sweep,
        matrix_ids=("P3", "R12"),
        tolerances=TOLERANCES,
        scale=0.15,
    )
    blocks = [
        format_gain_table(
            f"Figure 11 (left) - policy sweep on {matrix_id} (PP mode)",
            rows,
            ("perf_gain", "efficiency_gain"),
        )
        for matrix_id, rows in result.items()
    ]
    emit("\n\n".join(blocks))

    for rows in result.values():
        # Every policy yields a functional controller.
        assert all(r["efficiency_gain"] > 0.5 for r in rows.values())
        # Some hybrid tolerance is at least as good as both extremes.
        best_hybrid = max(
            rows[f"hybrid-{int(t * 100)}%"]["efficiency_gain"]
            for t in TOLERANCES
        )
        assert best_hybrid >= rows["conservative"]["efficiency_gain"] * 0.98
        assert best_hybrid >= rows["aggressive"]["efficiency_gain"] * 0.98


def test_fig11_policy_spec_parity(benchmark, emit, tmp_path):
    """The shipped declarative spec reproduces the legacy driver exactly.

    ``experiments/specs/policies_vs_baselines.json`` compiled through
    the suite runner must yield, per (matrix, policy), the *same
    floats* the hand-written :func:`figure11_policy_sweep` driver
    computes — same trace cache, same trained model, same policy
    objects — so the declarative path is a drop-in replacement for
    the figure, not an approximation of it.
    """
    from repro.experiments.spec import compile_plan, load_spec
    from repro.obs.compare import (
        build_comparison,
        ledger_terminal_rows,
        render_comparison,
        scrape_rows,
    )
    from repro.runner import run_plan

    spec = load_spec(SPEC_PATH)
    # Same economical scale as the legacy sweep above; the shipped
    # spec defaults to the paper's 0.25.
    spec = replace(
        spec,
        workloads=tuple(
            replace(workload, scale=0.15) for workload in spec.workloads
        ),
    )
    plan = compile_plan(spec)
    ledger = tmp_path / "policies.jsonl"

    run_once(benchmark, run_plan, plan=plan, ledger_path=str(ledger))

    _, rows = ledger_terminal_rows(ledger)
    samples = scrape_rows(rows, spec.metrics)
    comparison = build_comparison(
        samples,
        spec.metrics,
        baseline=spec.baseline,
        candidates=spec.candidate_names(),
        workloads=spec.workload_names(),
        name=spec.name,
    )
    emit(render_comparison(comparison))

    legacy = figures.figure11_policy_sweep(
        matrix_ids=tuple(spec.workload_names()),
        tolerances=TOLERANCES,
        scale=0.15,
    )
    aliases = {"conservative": "conservative", "aggressive": "aggressive"}
    for tolerance in TOLERANCES:
        aliases[f"hybrid-{int(tolerance * 100)}"] = (
            f"hybrid-{int(tolerance * 100)}%"
        )
    for matrix_id, legacy_rows in legacy.items():
        for candidate, legacy_name in aliases.items():
            for metric in ("perf_gain", "efficiency_gain"):
                ours = comparison["cells"][metric][matrix_id][candidate]
                theirs = legacy_rows[legacy_name][metric]
                assert ours == theirs, (
                    f"{candidate} on {matrix_id}: spec path {metric} "
                    f"{ours!r} != legacy driver {theirs!r}"
                )


def test_fig11_bandwidth_sweep(benchmark, emit):
    result = run_once(
        benchmark,
        figures.figure11_bandwidth_sweep,
        matrix_id="P3",
        bandwidths_gbps=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        scale=0.15,
    )
    rows = {
        f"{bandwidth:g} GB/s": gains for bandwidth, gains in result.items()
    }
    emit(
        format_gain_table(
            "Figure 11 (right) - EE efficiency gains vs external bandwidth"
            " (no retraining)",
            rows,
            ("over_baseline", "over_best_avg"),
        )
    )
    bandwidths = sorted(result)
    # Memory-bound end gains exceed the compute-bound end.
    assert (
        result[bandwidths[0]]["over_baseline"]
        > result[bandwidths[-1]]["over_baseline"]
    )
    # Strong gains when bandwidth-starved.
    assert result[bandwidths[0]]["over_baseline"] > 1.5
    # Still competitive with Best Avg at the compute-bound end.
    assert result[bandwidths[-1]]["over_best_avg"] > 0.9
