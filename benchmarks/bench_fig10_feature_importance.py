"""Figure 10 — relative importance of each performance-counter class.

Paper shapes: counters probing the L1 R-DCache and the memory
controller carry the most weight across the per-parameter models, and
the clock model leans on DVFS-relevant telemetry. (The paper also notes
LCP counters outweighing GPE ones; our LCP model is a scaled proxy of
the same activity, so we assert the dominant classes only.)
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.reporting import format_gain_table


def test_fig10_feature_importance(benchmark, emit):
    result = run_once(benchmark, figures.figure10_feature_importance)
    blocks = []
    for mode_key, per_parameter in result.items():
        groups = sorted(
            {g for grouped in per_parameter.values() for g in grouped}
        )
        rows = {
            parameter: {g: grouped.get(g, 0.0) for g in groups}
            for parameter, grouped in per_parameter.items()
        }
        blocks.append(
            format_gain_table(
                f"Figure 10 - grouped Gini importance ({mode_key.upper()} mode)",
                rows,
                groups,
                value_format="{:6.3f}",
            )
        )
    emit("\n\n".join(blocks))

    for per_parameter in result.values():
        # Importances are normalized per tree.
        for grouped in per_parameter.values():
            assert abs(sum(grouped.values()) - 1.0) < 1e-6 or sum(
                grouped.values()
            ) == 0.0
        # Aggregate over all parameters: memory-system telemetry
        # (L1 + L2 + memory controller) dominates core-side counters.
        total = {}
        for grouped in per_parameter.values():
            for group, value in grouped.items():
                total[group] = total.get(group, 0.0) + value
        memory_side = (
            total.get("L1 R-DCache", 0.0)
            + total.get("L2 R-DCache", 0.0)
            + total.get("Memory Ctrl", 0.0)
        )
        core_side = total.get("GPE", 0.0) + total.get("LCP", 0.0)
        assert memory_side > core_side
