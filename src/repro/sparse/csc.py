"""Compressed sparse column (CSC) matrix format.

CSC stores, for each column, a contiguous slice of row indices and values.
It is the layout the paper uses for the *A* operand of outer-product
SpMSpM (column fetches) and for column-driven SpMSpV.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Parameters
    ----------
    indptr:
        ``n_cols + 1`` monotonically non-decreasing offsets into
        ``indices``/``data``.
    indices:
        Row index of each stored entry, column-major order.
    data:
        Stored values, parallel to ``indices``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != n_cols + 1:
            raise FormatError(
                f"indptr must have length n_cols+1={n_cols + 1}, "
                f"got {indptr.size}"
            )
        if indptr[0] != 0:
            raise FormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.size != data.size or indices.size != indptr[-1]:
            raise FormatError("indices/data length must equal indptr[-1]")
        if indices.size and (indices.min() < 0 or indices.max() >= n_rows):
            raise FormatError("row index out of bounds")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the dense size."""
        cells = self.shape[0] * self.shape[1]
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` of column ``j`` (views)."""
        if not 0 <= j < self.shape[1]:
            raise ShapeError(f"column {j} out of range for {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_nnz(self, j: int) -> int:
        """Number of stored entries in column ``j``."""
        if not 0 <= j < self.shape[1]:
            raise ShapeError(f"column {j} out of range for {self.shape}")
        return int(self.indptr[j + 1] - self.indptr[j])

    def col_lengths(self) -> np.ndarray:
        """Array of per-column nnz counts."""
        return np.diff(self.indptr)

    def iter_cols(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(col, row_indices, values)`` for every non-empty column."""
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            if hi > lo:
                yield j, self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self):
        """Convert to :class:`repro.sparse.coo.COOMatrix`."""
        from repro.sparse.coo import COOMatrix

        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        return COOMatrix(self.indices.copy(), cols, self.data.copy(), self.shape)

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr.CSRMatrix`."""
        return self.to_coo().to_csr()

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        return self.to_coo().to_dense()

    def transpose(self) -> "CSCMatrix":
        """Return the transpose as a new CSC matrix."""
        return self.to_coo().transpose().to_csc()
