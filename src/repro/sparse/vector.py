"""Sparse vector container used by the SpMSpV kernel and graph frontiers.

The paper stores the *B* vector operand "as an array of index-value
tuples" (Section 5.4); :class:`SparseVector` mirrors that with two
parallel arrays sorted by index.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

__all__ = ["SparseVector"]


class SparseVector:
    """A length-``n`` sparse vector stored as sorted index/value pairs."""

    def __init__(
        self, indices: np.ndarray, values: np.ndarray, length: int
    ) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise FormatError("sparse vector arrays must be one-dimensional")
        if indices.size != values.size:
            raise FormatError("indices/values length mismatch")
        length = int(length)
        if length < 0:
            raise ShapeError("vector length must be non-negative")
        if indices.size:
            if indices.min() < 0 or indices.max() >= length:
                raise FormatError("vector index out of bounds")
            if np.any(np.diff(indices) <= 0):
                order = np.argsort(indices, kind="stable")
                indices = indices[order]
                values = values[order]
                if np.any(np.diff(indices) == 0):
                    raise FormatError("duplicate indices in sparse vector")
        self.indices = indices
        self.values = values
        self.length = length

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the vector length."""
        if self.length == 0:
            return 0.0
        return self.nnz / self.length

    def __repr__(self) -> str:
        return f"SparseVector(length={self.length}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseVector":
        """Build from a dense 1-D array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise ShapeError("from_dense expects a 1-D array")
        (idx,) = np.nonzero(dense)
        return cls(idx, dense[idx], dense.size)

    @classmethod
    def empty(cls, length: int) -> "SparseVector":
        """Build an all-zero vector of the given length."""
        return cls(
            np.zeros(0, dtype=np.int64), np.zeros(0), length
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        dense = np.zeros(self.length)
        dense[self.indices] = self.values
        return dense

    def prune(self, tolerance: float = 0.0) -> "SparseVector":
        """Drop entries whose magnitude is <= ``tolerance``."""
        keep = np.abs(self.values) > tolerance
        return SparseVector(
            self.indices[keep], self.values[keep], self.length
        )

    def item(self, i: int) -> float:
        """Value at logical position ``i`` (0.0 when not stored)."""
        pos = np.searchsorted(self.indices, i)
        if pos < self.nnz and self.indices[pos] == i:
            return float(self.values[pos])
        return 0.0

    def dot(self, other: "SparseVector") -> float:
        """Sparse-sparse dot product by sorted-index intersection."""
        if self.length != other.length:
            raise ShapeError("dot of vectors with different lengths")
        common, ia, ib = np.intersect1d(
            self.indices, other.indices, return_indices=True
        )
        del common
        return float(np.dot(self.values[ia], other.values[ib]))

    def as_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(indices, values)`` pair (views)."""
        return self.indices, self.values
