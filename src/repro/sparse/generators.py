"""Sparse-matrix generators used for training and evaluation data.

The paper draws on three kinds of inputs:

* uniform random matrices (SciPy ``random`` equivalents) for training and
  the U1-U3 synthetic suite,
* R-MAT power-law matrices with ``A = C = 0.1, B = 0.4`` for P1-P3
  (Chakrabarti et al., 2004),
* the Figure-1 motivation matrix: dense columns separating sparse strips,
* real-world matrices from SuiteSparse/SNAP, which this offline
  reproduction replaces with structural stand-ins (see
  :mod:`repro.sparse.suite`) built from the generators in this module.

All generators are deterministic given a seed and return
:class:`~repro.sparse.coo.COOMatrix`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix

__all__ = [
    "uniform_random",
    "rmat",
    "strip_matrix",
    "banded",
    "diagonal_local",
    "block_arrow",
    "random_vector",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Non-zero values drawn uniformly from (0.1, 1.1).

    The offset keeps values away from zero so that numeric cancellation
    never silently removes structural non-zeros in kernels.
    """
    return rng.uniform(0.1, 1.1, size=count)


def uniform_random(
    n_rows: int,
    n_cols: int,
    density: float,
    seed: Optional[int] = None,
) -> COOMatrix:
    """Uniform random sparse matrix with the given density.

    Exactly ``round(density * n_rows * n_cols)`` distinct coordinates are
    sampled without replacement, matching SciPy's ``sparse.random``.
    """
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    cells = n_rows * n_cols
    nnz = int(round(density * cells))
    flat = rng.choice(cells, size=nnz, replace=False)
    return COOMatrix(
        flat // n_cols, flat % n_cols, _values(rng, nnz), (n_rows, n_cols)
    )


def rmat(
    n: int,
    nnz: int,
    a: float = 0.1,
    b: float = 0.4,
    c: float = 0.1,
    seed: Optional[int] = None,
) -> COOMatrix:
    """R-MAT power-law matrix (Chakrabarti et al.).

    Each edge is placed by recursively descending a 2x2 partition of the
    adjacency matrix with quadrant probabilities ``(a, b, c, d)`` where
    ``d = 1 - a - b - c``. The paper's parameters ``A = C = 0.1, B = 0.4``
    are the defaults. Duplicate edges are merged, so the delivered nnz can
    be slightly below the request; we oversample to compensate.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ShapeError("R-MAT quadrant probabilities must be >= 0")
    if n <= 0 or (n & (n - 1)) != 0:
        # Round the recursion depth up; coordinates outside n are rejected.
        depth = int(np.ceil(np.log2(max(n, 2))))
    else:
        depth = int(np.log2(n))
    rng = _rng(seed)
    probs = np.array([a, b, c, d])
    rows_out = np.zeros(0, dtype=np.int64)
    cols_out = np.zeros(0, dtype=np.int64)
    target = min(nnz, n * n)
    # Oversample in rounds until enough distinct in-range coordinates exist.
    seen = set()
    max_rounds = 64
    for _ in range(max_rounds):
        need = target - len(seen)
        if need <= 0:
            break
        batch = max(64, int(need * 1.5))
        quadrants = rng.choice(4, size=(batch, depth), p=probs)
        row_bits = (quadrants >> 1) & 1
        col_bits = quadrants & 1
        weights = 1 << np.arange(depth - 1, -1, -1, dtype=np.int64)
        rows = row_bits @ weights
        cols = col_bits @ weights
        in_range = (rows < n) & (cols < n)
        for r, cl in zip(rows[in_range], cols[in_range]):
            key = int(r) * n + int(cl)
            if key not in seen:
                seen.add(key)
                if len(seen) >= target:
                    break
    keys = np.fromiter(seen, dtype=np.int64, count=len(seen))
    keys.sort()
    rows_out = keys // n
    cols_out = keys % n
    return COOMatrix(rows_out, cols_out, _values(rng, keys.size), (n, n))


def strip_matrix(
    n: int = 128,
    density: float = 0.20,
    n_strips: int = 8,
    dense_col_density: float = 0.95,
    seed: Optional[int] = None,
) -> COOMatrix:
    """The Figure-1 motivation matrix.

    Dense columns separate ``n_strips`` sparse strips; multiplying the
    matrix by its transpose with the outer-product algorithm alternates
    between dense outer products (dense column x dense row) and sparse
    ones, producing the paper's implicit phase changes. The overall
    density is held near ``density`` by adjusting the strip density after
    accounting for the dense separator columns.
    """
    if n_strips < 1 or n_strips > n:
        raise ShapeError("n_strips must be in [1, n]")
    rng = _rng(seed)
    separator_cols = np.linspace(0, n - 1, n_strips, dtype=np.int64)
    separator_set = set(int(j) for j in separator_cols)
    dense_budget = len(separator_set) * dense_col_density * n
    total_budget = density * n * n
    sparse_cells = (n - len(separator_set)) * n
    strip_density = max(0.0, (total_budget - dense_budget) / max(sparse_cells, 1))
    strip_density = min(strip_density, 1.0)

    rows_parts = []
    cols_parts = []
    for j in range(n):
        col_density = (
            dense_col_density if j in separator_set else strip_density
        )
        count = int(round(col_density * n))
        if count == 0:
            continue
        rows = rng.choice(n, size=min(count, n), replace=False)
        rows_parts.append(rows.astype(np.int64))
        cols_parts.append(np.full(rows.size, j, dtype=np.int64))
    rows_all = np.concatenate(rows_parts) if rows_parts else np.zeros(0, np.int64)
    cols_all = np.concatenate(cols_parts) if cols_parts else np.zeros(0, np.int64)
    return COOMatrix(rows_all, cols_all, _values(rng, rows_all.size), (n, n))


def banded(
    n: int,
    bandwidth: int,
    density_in_band: float = 0.6,
    seed: Optional[int] = None,
) -> COOMatrix:
    """Banded matrix: non-zeros within ``bandwidth`` of the diagonal.

    Models FEM / structural / CFD matrices (e.g. R04 bcsstk08, R09 EX3,
    R12 crack) whose entries cluster along the diagonal.
    """
    if bandwidth < 0:
        raise ShapeError("bandwidth must be non-negative")
    rng = _rng(seed)
    rows_parts = []
    cols_parts = []
    for i in range(n):
        lo = max(0, i - bandwidth)
        hi = min(n, i + bandwidth + 1)
        width = hi - lo
        count = max(1, int(round(density_in_band * width)))
        cols = lo + rng.choice(width, size=min(count, width), replace=False)
        rows_parts.append(np.full(cols.size, i, dtype=np.int64))
        cols_parts.append(cols.astype(np.int64))
    rows_all = np.concatenate(rows_parts)
    cols_all = np.concatenate(cols_parts)
    return COOMatrix(rows_all, cols_all, _values(rng, rows_all.size), (n, n))


def diagonal_local(
    n: int,
    nnz: int,
    spread: float = 0.01,
    seed: Optional[int] = None,
) -> COOMatrix:
    """Matrix with non-zeros scattered tightly around the diagonal.

    Offsets from the diagonal follow a geometric-like decay with scale
    ``spread * n``; models matrices of "local connections only" such as
    R09 in the paper (uniform distribution along the diagonal).
    """
    rng = _rng(seed)
    scale = max(1.0, spread * n)
    seen = set()
    for _ in range(64):
        need = nnz - len(seen)
        if need <= 0:
            break
        rows = rng.integers(0, n, size=int(need * 1.5) + 16)
        offsets = np.round(rng.laplace(0.0, scale, size=rows.size)).astype(np.int64)
        cols = rows + offsets
        ok = (cols >= 0) & (cols < n)
        for r, cl in zip(rows[ok], cols[ok]):
            key = int(r) * n + int(cl)
            if key not in seen:
                seen.add(key)
                if len(seen) >= nnz:
                    break
    keys = np.fromiter(seen, dtype=np.int64, count=len(seen))
    keys.sort()
    return COOMatrix(
        keys // n, keys % n, _values(rng, keys.size), (n, n)
    )


def block_arrow(
    n: int,
    nnz: int,
    n_blocks: int = 8,
    arrow_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> COOMatrix:
    """Block-diagonal matrix with dense border rows/columns (arrowhead).

    Models optimal-control and chemical-simulation matrices (R03 bayer09,
    R08 spaceStation, R13 kineticBatchReactor) which mix block structure
    with coupling rows.
    """
    if n_blocks < 1:
        raise ShapeError("n_blocks must be >= 1")
    rng = _rng(seed)
    block = max(1, n // n_blocks)
    arrow_nnz = int(nnz * arrow_fraction)
    block_nnz = nnz - arrow_nnz
    seen = set()

    # Border (arrow) entries live in the last few rows and columns.
    border = max(1, n // 50)
    attempts = 0
    while len(seen) < arrow_nnz and attempts < 64:
        attempts += 1
        need = arrow_nnz - len(seen)
        pick_row_side = rng.random(int(need * 1.5) + 8) < 0.5
        rr = np.where(
            pick_row_side,
            rng.integers(n - border, n, size=pick_row_side.size),
            rng.integers(0, n, size=pick_row_side.size),
        )
        cc = np.where(
            pick_row_side,
            rng.integers(0, n, size=pick_row_side.size),
            rng.integers(n - border, n, size=pick_row_side.size),
        )
        for r, cl in zip(rr, cc):
            seen.add(int(r) * n + int(cl))
            if len(seen) >= arrow_nnz:
                break

    # Block-diagonal entries.
    target = arrow_nnz + block_nnz
    attempts = 0
    while len(seen) < target and attempts < 128:
        attempts += 1
        need = target - len(seen)
        b = rng.integers(0, n_blocks, size=int(need * 1.5) + 8)
        base = b * block
        rr = base + rng.integers(0, block, size=b.size)
        cc = base + rng.integers(0, block, size=b.size)
        ok = (rr < n) & (cc < n)
        for r, cl in zip(rr[ok], cc[ok]):
            seen.add(int(r) * n + int(cl))
            if len(seen) >= target:
                break
    keys = np.fromiter(seen, dtype=np.int64, count=len(seen))
    keys.sort()
    return COOMatrix(
        keys // n, keys % n, _values(rng, keys.size), (n, n)
    )


def random_vector(n: int, density: float, seed: Optional[int] = None):
    """Uniform random sparse vector (the paper's 50%-dense B operand)."""
    from repro.sparse.vector import SparseVector

    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    nnz = int(round(density * n))
    idx = np.sort(rng.choice(n, size=nnz, replace=False))
    return SparseVector(idx, _values(rng, nnz), n)
