"""Evaluation matrix suite (paper Table 5).

The paper evaluates on six synthetic matrices (U1-U3 uniform random,
P1-P3 R-MAT power-law) and sixteen real-world matrices from SuiteSparse
and SNAP (R01-R16). The real collections are not available offline, so
this module generates *structural stand-ins*: each stand-in reproduces
the published dimension, non-zero count, and structural class (power-law
graph, banded FEM, diagonal-local CFD, block-arrow optimal control) of
the original. The controller reacts to structure, so the reproduction
preserves the behavioural distinctions the paper relies on (e.g. R09's
"local connections only" yielding small adaptation gains, R10/R11/R14's
power-law structure yielding the largest gains).

Matrices can be scaled down uniformly with the ``scale`` argument to keep
simulation times tractable; dimension and nnz shrink together so density
is approximately preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ShapeError
from repro.sparse import generators
from repro.sparse.coo import COOMatrix

__all__ = [
    "MatrixSpec",
    "SUITE",
    "SYNTHETIC_IDS",
    "SPMSPM_IDS",
    "SPMSPV_IDS",
    "load",
]


@dataclass(frozen=True)
class MatrixSpec:
    """Metadata of one evaluation matrix (one row of Table 5)."""

    matrix_id: str
    name: str
    dimension: int
    nnz: int
    domain: str
    structure: str  # generator family used for the stand-in
    symmetric: bool = False


def _spec(
    matrix_id: str,
    name: str,
    dim: int,
    nnz: int,
    domain: str,
    structure: str,
    symmetric: bool = False,
) -> MatrixSpec:
    return MatrixSpec(matrix_id, name, dim, nnz, domain, structure, symmetric)


#: Every matrix in Table 5. Dimensions and nnz are the published values.
SUITE: Dict[str, MatrixSpec] = {
    spec.matrix_id: spec
    for spec in [
        # Synthetic (Table 5 top). U = uniform, P = power-law R-MAT.
        _spec("U1", "uniform-25k", 8192, 25_000, "Synthetic", "uniform"),
        _spec("U2", "uniform-50k", 8192, 50_000, "Synthetic", "uniform"),
        _spec("U3", "uniform-100k", 8192, 100_000, "Synthetic", "uniform"),
        _spec("P1", "powerlaw-25k", 8192, 25_000, "Synthetic", "rmat"),
        _spec("P2", "powerlaw-50k", 8192, 50_000, "Synthetic", "rmat"),
        _spec("P3", "powerlaw-100k", 8192, 100_000, "Synthetic", "rmat"),
        # Real-world stand-ins (Table 5 bottom), SpMSpM set R01-R08.
        _spec("R01", "California", 9_664, 16_150, "Directed Graph", "rmat"),
        _spec("R02", "Si2", 769, 17_801, "Quant. Chemistry", "banded"),
        _spec("R03", "bayer09", 3_083, 11_767, "Chemical Simulation", "block_arrow"),
        _spec("R04", "bcsstk08", 1_074, 12_960, "Structural Problem", "banded"),
        _spec("R05", "coater1", 1_348, 19_457, "Comp. Fluid Dyn.", "banded"),
        _spec("R06", "gemat12", 4_929, 33_044, "Power Network", "diagonal_local"),
        _spec("R07", "p2p-Gnutella08", 6_301, 20_777, "Directed Graph", "rmat"),
        _spec("R08", "spaceStation_11", 1_442, 19_004, "Optimal Control", "block_arrow"),
        # SpMSpV set R09-R16.
        _spec("R09", "EX3", 1_821, 52_685, "Comp. Fluid Dyn.", "diagonal_local"),
        _spec("R10", "Oregon-1", 11_492, 46_818, "Undirected Graph", "rmat", True),
        _spec("R11", "as-22july06", 22_963, 96_872, "Undirected Graph", "rmat", True),
        _spec("R12", "crack", 10_240, 60_760, "2D/3D Problem", "banded"),
        _spec("R13", "kineticBatchReactor_3", 5_100, 53_166, "Optimal Control", "block_arrow"),
        _spec("R14", "nopoly", 10_774, 70_842, "Undirected Graph", "rmat", True),
        _spec("R15", "soc-sign-bitcoin-otc", 5_881, 35_592, "Directed Graph", "rmat"),
        _spec("R16", "wiki-Vote_11", 8_297, 103_689, "Directed Graph", "rmat"),
    ]
}

SYNTHETIC_IDS = ("U1", "U2", "U3", "P1", "P2", "P3")
SPMSPM_IDS = tuple(f"R{i:02d}" for i in range(1, 9))
SPMSPV_IDS = tuple(f"R{i:02d}" for i in range(9, 17))

#: Deterministic seed base so every load of a given matrix is identical.
_SEED_BASE = 0x5AD_A97


def _seed_for(matrix_id: str) -> int:
    return _SEED_BASE + sum(ord(ch) * 131 for ch in matrix_id)


def _build_uniform(dim: int, nnz: int, seed: int) -> COOMatrix:
    density = nnz / (dim * dim)
    return generators.uniform_random(dim, dim, density, seed=seed)


def _build_rmat(dim: int, nnz: int, seed: int) -> COOMatrix:
    return generators.rmat(dim, nnz, seed=seed)


def _build_banded(dim: int, nnz: int, seed: int) -> COOMatrix:
    # Choose the band so that density-in-band stays moderate (~0.5).
    per_row = max(1, nnz // dim)
    bandwidth = max(1, per_row)
    density_in_band = min(1.0, nnz / (dim * (2.0 * bandwidth + 1)))
    return generators.banded(dim, bandwidth, density_in_band, seed=seed)


def _build_diagonal_local(dim: int, nnz: int, seed: int) -> COOMatrix:
    return generators.diagonal_local(dim, nnz, spread=0.01, seed=seed)


def _build_block_arrow(dim: int, nnz: int, seed: int) -> COOMatrix:
    return generators.block_arrow(dim, nnz, n_blocks=8, seed=seed)


_BUILDERS: Dict[str, Callable[[int, int, int], COOMatrix]] = {
    "uniform": _build_uniform,
    "rmat": _build_rmat,
    "banded": _build_banded,
    "diagonal_local": _build_diagonal_local,
    "block_arrow": _build_block_arrow,
}


def _scaled(spec: MatrixSpec, scale: float) -> Tuple[int, int]:
    """Scaled (dimension, nnz) preserving the per-row non-zero count.

    Scaling nnz linearly with the dimension keeps the average row
    length — and with it the outer-product sizes, accumulator reuse,
    and row-skew statistics that drive the kernels' behaviour — equal
    to the full-size matrix.
    """
    dim = max(32, int(round(spec.dimension * scale)))
    nnz = max(dim, int(round(spec.nnz * scale)))
    nnz = min(nnz, dim * dim)
    return dim, nnz


def load(matrix_id: str, scale: float = 1.0) -> COOMatrix:
    """Load (generate) a suite matrix by its Table-5 identifier.

    Parameters
    ----------
    matrix_id:
        One of ``U1``-``U3``, ``P1``-``P3``, ``R01``-``R16``.
    scale:
        Uniform linear scale factor in (0, 1]; dimension and nnz both
        scale by ``scale`` so the per-row density is preserved.
        Benchmarks use reduced scales to keep runtimes tractable; the
        structural class (and therefore the adaptation behaviour) is
        unchanged.
    """
    if matrix_id not in SUITE:
        raise ShapeError(f"unknown suite matrix {matrix_id!r}")
    if not 0.0 < scale <= 1.0:
        raise ShapeError(f"scale must be in (0, 1], got {scale}")
    spec = SUITE[matrix_id]
    dim, nnz = _scaled(spec, scale)
    matrix = _BUILDERS[spec.structure](dim, nnz, _seed_for(matrix_id))
    if spec.symmetric:
        sym = matrix.transpose()
        both = COOMatrix(
            rows=_concat(matrix.rows, sym.rows),
            cols=_concat(matrix.cols, sym.cols),
            vals=_concat(matrix.vals, sym.vals),
            shape=matrix.shape,
        )
        matrix = both.sum_duplicates()
    return matrix


def _concat(a, b):
    import numpy as np

    return np.concatenate([a, b])
