"""Sparse linear-algebra substrate: formats, generators, evaluation suite.

Public API::

    from repro.sparse import COOMatrix, CSRMatrix, CSCMatrix, SparseVector
    from repro.sparse import generators, suite, ops
"""

from repro.sparse import generators, ops, suite
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.vector import SparseVector

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "SparseVector",
    "generators",
    "ops",
    "suite",
]
