"""Compressed sparse row (CSR) matrix format.

CSR stores, for each row, a contiguous slice of column indices and values.
It is the natural layout for the *B* operand of outer-product SpMSpM (row
fetches) and for row-wise traversals in the graph kernels.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        ``n_rows + 1`` monotonically non-decreasing offsets into
        ``indices``/``data``.
    indices:
        Column index of each stored entry, row-major order.
    data:
        Stored values, parallel to ``indices``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != n_rows + 1:
            raise FormatError(
                f"indptr must have length n_rows+1={n_rows + 1}, "
                f"got {indptr.size}"
            )
        if indptr[0] != 0:
            raise FormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.size != data.size or indices.size != indptr[-1]:
            raise FormatError("indices/data length must equal indptr[-1]")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise FormatError("column index out of bounds")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the dense size."""
        cells = self.shape[0] * self.shape[1]
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(col_indices, values)`` of row ``i`` (zero-copy views)."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"row {i} out of range for {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self, i: int) -> int:
        """Number of stored entries in row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"row {i} out of range for {self.shape}")
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_lengths(self) -> np.ndarray:
        """Array of per-row nnz counts (used for skew/imbalance metrics)."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, col_indices, values)`` for every non-empty row."""
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            if hi > lo:
                yield i, self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense matrix-vector product ``A @ x`` (reference semantics)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec expects length {self.shape[1]}, got {x.shape}"
            )
        out = np.zeros(self.shape[0])
        contributions = self.data * x[self.indices]
        row_ids = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )
        np.add.at(out, row_ids, contributions)
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self):
        """Convert to :class:`repro.sparse.coo.COOMatrix`."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def to_csc(self):
        """Convert to :class:`repro.sparse.csc.CSCMatrix`."""
        return self.to_coo().to_csc()

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        return self.to_coo().to_dense()

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix."""
        return self.to_coo().transpose().to_csr()
