"""Coordinate (COO) sparse matrix format.

COO is the interchange format of the sparse substrate: matrix generators
produce COO, and the compressed formats (:mod:`repro.sparse.csr`,
:mod:`repro.sparse.csc`) are built from it. Entries are stored as three
parallel arrays ``(rows, cols, vals)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length holding the row/column index of each
        stored entry.
    vals:
        Float array of stored values, same length as ``rows``.
    shape:
        ``(n_rows, n_cols)`` of the logical matrix.

    Duplicate coordinates are permitted on construction; use
    :meth:`sum_duplicates` to combine them. Most conversions call it
    implicitly.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if rows.ndim != 1 or cols.ndim != 1 or vals.ndim != 1:
            raise FormatError("COO arrays must be one-dimensional")
        if not (rows.size == cols.size == vals.size):
            raise FormatError(
                "COO arrays must have equal length, got "
                f"{rows.size}/{cols.size}/{vals.size}"
            )
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"negative shape {shape!r}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise FormatError("row index out of bounds")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise FormatError("column index out of bounds")
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (including any duplicates)."""
        return int(self.vals.size)

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the dense size."""
        cells = self.shape[0] * self.shape[1]
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def __repr__(self) -> str:
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4g})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """Build an all-zero matrix of the given shape."""
        zero = np.zeros(0)
        return cls(zero.astype(np.int64), zero.astype(np.int64), zero, shape)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent matrix with duplicate coordinates summed.

        Entries that sum to exactly zero are kept (they are still stored
        non-zeros); use :meth:`prune` to drop them.
        """
        if self.nnz == 0:
            return self
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        unique_mask = np.empty(keys.size, dtype=bool)
        unique_mask[0] = True
        unique_mask[1:] = keys[1:] != keys[:-1]
        group_ids = np.cumsum(unique_mask) - 1
        summed = np.zeros(int(group_ids[-1]) + 1)
        np.add.at(summed, group_ids, vals)
        unique_keys = keys[unique_mask]
        return COOMatrix(
            unique_keys // self.shape[1],
            unique_keys % self.shape[1],
            summed,
            self.shape,
        )

    def prune(self, tolerance: float = 0.0) -> "COOMatrix":
        """Drop stored entries whose magnitude is <= ``tolerance``."""
        keep = np.abs(self.vals) > tolerance
        return COOMatrix(
            self.rows[keep], self.cols[keep], self.vals[keep], self.shape
        )

    def transpose(self) -> "COOMatrix":
        """Return the transpose (O(nnz), swaps coordinate arrays)."""
        return COOMatrix(
            self.cols.copy(),
            self.rows.copy(),
            self.vals.copy(),
            (self.shape[1], self.shape[0]),
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array (duplicates are summed)."""
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        merged = self.sum_duplicates()
        order = np.lexsort((merged.cols, merged.rows))
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, merged.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr, merged.cols[order], merged.vals[order], self.shape
        )

    def to_csc(self):
        """Convert to :class:`repro.sparse.csc.CSCMatrix`."""
        from repro.sparse.csc import CSCMatrix

        merged = self.sum_duplicates()
        order = np.lexsort((merged.rows, merged.cols))
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.add.at(indptr, merged.cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(
            indptr, merged.rows[order], merged.vals[order], self.shape
        )
