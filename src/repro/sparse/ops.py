"""Reference sparse linear-algebra operations.

These are numerically exact, numpy-vectorized implementations used to
validate the modelled kernels in :mod:`repro.kernels` and to compute
result matrices without materializing every outer-product partial.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.vector import SparseVector

__all__ = [
    "spmspm_reference",
    "spmspv_reference",
    "spmspv_semiring",
    "sparse_add",
    "hadamard",
    "partials_per_row",
    "total_partial_products",
]


def spmspm_reference(a_csc: CSCMatrix, b_csr: CSRMatrix) -> COOMatrix:
    """Exact sparse-sparse matrix product ``C = A @ B``.

    Implemented as a row-wise Gustavson product over CSR(A); the numeric
    result is identical to the outer-product formulation the kernels
    model, while keeping memory proportional to the output rather than to
    the partial-product count.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions differ: {a_csc.shape} @ {b_csr.shape}"
        )
    a_csr = a_csc.to_csr()
    n_rows = a_csr.shape[0]
    n_cols = b_csr.shape[1]
    rows_out = []
    cols_out = []
    vals_out = []
    for i in range(n_rows):
        a_cols, a_vals = a_csr.row(i)
        if a_cols.size == 0:
            continue
        accumulator: dict = {}
        for k, a_val in zip(a_cols, a_vals):
            b_cols, b_vals = b_csr.row(int(k))
            if b_cols.size == 0:
                continue
            for j, b_val in zip(b_cols, b_vals):
                j = int(j)
                accumulator[j] = accumulator.get(j, 0.0) + a_val * b_val
        if accumulator:
            cols = np.fromiter(accumulator.keys(), dtype=np.int64)
            vals = np.fromiter(accumulator.values(), dtype=np.float64)
            rows_out.append(np.full(cols.size, i, dtype=np.int64))
            cols_out.append(cols)
            vals_out.append(vals)
    if not rows_out:
        return COOMatrix.empty((n_rows, n_cols))
    return COOMatrix(
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
        (n_rows, n_cols),
    ).sum_duplicates()


def spmspv_reference(a_csc: CSCMatrix, x: SparseVector) -> SparseVector:
    """Exact sparse matrix - sparse vector product ``y = A @ x``.

    Column-driven: for each stored entry ``x_j``, scale column ``j`` of A
    and accumulate — the same dataflow the modelled SpMSpV kernel uses.
    """
    if a_csc.shape[1] != x.length:
        raise ShapeError(
            f"dimension mismatch: {a_csc.shape} @ vector({x.length})"
        )
    dense_acc = np.zeros(a_csc.shape[0])
    for j, x_val in zip(x.indices, x.values):
        rows, vals = a_csc.col(int(j))
        np.add.at(dense_acc, rows, vals * x_val)
    return SparseVector.from_dense(dense_acc)


def spmspv_semiring(
    a_csc: CSCMatrix,
    x: SparseVector,
    add: str = "plus",
    multiply: str = "times",
) -> SparseVector:
    """SpMSpV over a configurable semiring.

    Supports the semirings needed by the graph kernels:

    * ``plus``/``times`` — ordinary arithmetic,
    * ``min``/``plus``   — tropical semiring for shortest paths,
    * ``or``/``and``     — boolean semiring for reachability (BFS).
    """
    if a_csc.shape[1] != x.length:
        raise ShapeError(
            f"dimension mismatch: {a_csc.shape} @ vector({x.length})"
        )
    if add == "plus":
        identity = 0.0
    elif add == "min":
        identity = np.inf
    elif add == "or":
        identity = 0.0
    else:
        raise ShapeError(f"unsupported additive operation {add!r}")

    acc = np.full(a_csc.shape[0], identity)
    touched = np.zeros(a_csc.shape[0], dtype=bool)
    for j, x_val in zip(x.indices, x.values):
        rows, vals = a_csc.col(int(j))
        if rows.size == 0:
            continue
        if multiply == "times":
            products = vals * x_val
        elif multiply == "plus":
            products = vals + x_val
        elif multiply == "and":
            products = ((vals != 0) & (x_val != 0)).astype(np.float64)
        else:
            raise ShapeError(f"unsupported multiplicative op {multiply!r}")
        if add == "plus":
            np.add.at(acc, rows, products)
        elif add == "min":
            np.minimum.at(acc, rows, products)
        else:  # "or"
            np.logical_or.at(touched, rows, products != 0)
        if add != "or":
            touched[rows] = True
    if add == "or":
        acc = touched.astype(np.float64)
    idx = np.nonzero(touched)[0]
    return SparseVector(idx, acc[idx], a_csc.shape[0])


def sparse_add(a: COOMatrix, b: COOMatrix) -> COOMatrix:
    """Element-wise sum ``A + B`` (GraphBLAS eWiseAdd with plus)."""
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} + {b.shape}")
    return COOMatrix(
        np.concatenate([a.rows, b.rows]),
        np.concatenate([a.cols, b.cols]),
        np.concatenate([a.vals, b.vals]),
        a.shape,
    ).sum_duplicates()


def hadamard(a: COOMatrix, b: COOMatrix) -> COOMatrix:
    """Element-wise product ``A .* B`` (GraphBLAS eWiseMult with times).

    Only coordinates stored in *both* operands survive (structural
    intersection), matching semiring semantics for masks.
    """
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} .* {b.shape}")
    a = a.sum_duplicates()
    b = b.sum_duplicates()
    a_keys = a.rows * a.shape[1] + a.cols
    b_keys = b.rows * b.shape[1] + b.cols
    common, ia, ib = np.intersect1d(a_keys, b_keys, return_indices=True)
    return COOMatrix(
        common // a.shape[1],
        common % a.shape[1],
        a.vals[ia] * b.vals[ib],
        a.shape,
    )


def partials_per_row(a_csc: CSCMatrix, b_csr: CSRMatrix) -> np.ndarray:
    """Outer-product partial counts landing in each row of C = A @ B.

    For outer product ``i`` (column ``i`` of A times row ``i`` of B),
    every stored row ``r`` of ``A[:, i]`` receives ``nnz(B[i, :])``
    partial products. The merge phase of OP-SpMSpM sorts and sums exactly
    these counts per row, so this array drives the merge-phase workload
    trace.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions differ: {a_csc.shape} @ {b_csr.shape}"
        )
    b_counts = b_csr.row_lengths()
    counts = np.zeros(a_csc.shape[0], dtype=np.int64)
    for i in range(a_csc.shape[1]):
        rows, _ = a_csc.col(i)
        if rows.size:
            np.add.at(counts, rows, b_counts[i])
    return counts


def total_partial_products(a_csc: CSCMatrix, b_csr: CSRMatrix) -> int:
    """Total outer-product partials: sum over i of nnz(A[:,i])*nnz(B[i,:])."""
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions differ: {a_csc.shape} @ {b_csr.shape}"
        )
    return int(np.dot(a_csc.col_lengths(), b_csr.row_lengths()))
