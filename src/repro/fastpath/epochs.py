"""Vectorized epoch-model evaluation over ``workloads x configs`` grids.

:class:`EpochGrid` reproduces
:meth:`repro.transmuter.machine.TransmuterModel._simulate_epoch` for a
whole grid of (workload, configuration) pairs in one pass of
elementwise numpy ops, bit-identical to the scalar reference. The
strategy, in order of importance:

1. **Mirror the scalar expressions exactly.** Elementwise float64
   arithmetic, ``np.minimum``/``np.maximum`` and ``np.sqrt`` are
   IEEE-754 correctly rounded in both numpy and CPython, so keeping the
   operand order and grouping of the scalar code yields the same bits.
2. **Never use numpy ``pow``.** numpy's vectorized ``**`` differs from
   CPython's ``float.__pow__`` in the last ulp for most exponents, so
   the two data-dependent powers (crossbar collision, soft roofline) go
   through :func:`pow_exact` — CPython's pow applied elementwise.
3. **Precompute config-only quantities with the scalar functions.**
   DVFS operating points, SRAM access energies, leakage power and DRAM
   latency depend only on the configuration; they are computed once per
   distinct config by the original scalar code (sqrt, pow and all) and
   broadcast, so their bits are the scalar path's bits by construction.
4. **Keep per-workload quantities in Python floats.** Workload-derived
   scalars (instruction counts, imbalance, geometry working sets, the
   GPE->L1 crossbar, which never varies along the config axis within a
   batch) are computed in a plain Python loop with the scalar
   expressions, then broadcast.

Branches on the configuration (sharing modes, prefetch level, L1 type)
become ``np.where`` selections between per-branch values; mixed-type
batches are partitioned by ``l1_type`` and stitched back column-wise.

The grid materializes :class:`~repro.transmuter.machine.EpochResult`
objects lazily: schemes touch only the table cells they stitch into a
schedule, so a 64-config table materializes ~1/64th of its entries.

This engine intentionally has no :class:`EpochEnvironment` or trace
support — degraded epochs occur only inside the (inherently
sequential) controller loop, and traced runs stay on the scalar path
so ``machine.epoch`` events are emitted by the reference code. Callers
gate on :func:`repro.fastpath.batch_active`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs import profile as obs_profile
from repro.transmuter import params
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import PerformanceCounters
from repro.transmuter.crossbar import model_crossbar
from repro.transmuter.dvfs import operating_point
from repro.transmuter.machine import EpochResult, TransmuterModel
from repro.transmuter.power import EnergyBreakdown, _sram_access_energy
from repro.transmuter.workload import EpochWorkload

__all__ = ["pow_exact", "EpochGrid", "simulate_configs", "simulate_trace"]

# CPython's float.__pow__ applied elementwise (object ufunc). numpy's
# own pow uses a SIMD implementation whose results differ in the last
# ulp, which would break byte-identical reports.
_POW_UFUNC = np.frompyfunc(float.__pow__, 2, 1)


def pow_exact(base: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``base ** exponent`` with CPython pow semantics."""
    exponent = float(exponent)
    if exponent == 1.0:
        # pow(x, 1.0) == x exactly in both numpy and libm.
        return np.array(base, dtype=np.float64, copy=True)
    return _POW_UFUNC(base, exponent).astype(np.float64)


# ---------------------------------------------------------------------------
# Per-axis precomputation
# ---------------------------------------------------------------------------
def _workload_scalars(
    machine: TransmuterModel, workloads: Sequence[EpochWorkload], spm: bool
) -> Dict[str, np.ndarray]:
    """Workload-only quantities, computed with scalar Python math.

    Every expression mirrors the scalar model verbatim; results are
    shaped ``(n_workloads, 1)`` for broadcasting along the config axis.
    """
    tiles = machine.n_tiles
    gpes = machine.gpes_per_tile
    n_gpes = machine.n_gpes
    cols: Dict[str, List[float]] = {name: [] for name in (
        "accesses", "instructions", "imbalance", "ipg", "mlp",
        "ws_l1_shared", "infl_l1_shared", "ws_l1_private",
        "infl_l1_private", "total_ws", "ws_l2_private",
        "infl_l2_private", "unique_words", "unique_lines", "conflict",
        "stride", "reuse_locality", "store_fraction", "lcp_instr",
        "fp_per_gpe", "read_bytes_compulsory", "write_bytes",
        "x1_contention", "x1_extra", "x1_transfers",
    )}
    for w in workloads:
        int_ops = w.int_ops
        if spm:
            int_ops *= 1.0 + params.SPM_ORCHESTRATION_OVERHEAD
        instructions = w.flops + int_ops + w.accesses
        imbalance = 1.0 + min(
            params.IMBALANCE_CAP - 1.0,
            params.IMBALANCE_COEFF * w.work_skew,
        )
        ipg = instructions / n_gpes * imbalance
        shared_frac = w.shared_fraction
        total_ws = w.live_set_bytes
        sf2 = w.shared_fraction * params.TILE_SHARING_FACTOR
        # GPE->L1 crossbar: its load never varies along the config axis
        # (within one l1_type partition), only the shared/private mode
        # does — evaluate the scalar model once for the shared case and
        # select by mask later (the private case is all zeros).
        x1 = model_crossbar(
            accesses=w.accesses / tiles,
            busy_cycles=ipg,
            n_requesters=gpes,
            n_banks=gpes,
            shared=True,
        )
        cols["accesses"].append(w.accesses)
        cols["instructions"].append(instructions)
        cols["imbalance"].append(imbalance)
        cols["ipg"].append(ipg)
        cols["mlp"].append(
            params.MLP
            * (
                params.MLP_STRIDE_FLOOR
                + params.MLP_STRIDE_SLOPE * w.stride_fraction
            )
        )
        cols["ws_l1_shared"].append(
            total_ws * ((1.0 - shared_frac) / tiles + shared_frac)
        )
        cols["infl_l1_shared"].append(
            (1.0 - shared_frac) + shared_frac * min(tiles, 2.0)
        )
        cols["ws_l1_private"].append(
            total_ws * ((1.0 - shared_frac) / (tiles * gpes) + shared_frac)
        )
        cols["infl_l1_private"].append(
            (1.0 - shared_frac)
            + shared_frac * min(gpes, params.REPLICATION_CAP_L1)
        )
        cols["total_ws"].append(total_ws)
        cols["ws_l2_private"].append(total_ws * ((1.0 - sf2) / tiles + sf2))
        cols["infl_l2_private"].append(
            (1.0 - sf2) + sf2 * min(tiles, params.REPLICATION_CAP_L2)
        )
        cols["unique_words"].append(w.unique_words)
        cols["unique_lines"].append(w.unique_lines)
        cols["conflict"].append(
            params.CONFLICT_BASE
            + params.CONFLICT_IRREGULAR * (1.0 - w.stride_fraction)
        )
        cols["stride"].append(w.stride_fraction)
        cols["reuse_locality"].append(w.reuse_locality)
        cols["store_fraction"].append(w.stores / max(w.accesses, 1e-9))
        cols["lcp_instr"].append(
            w.instructions
            * params.LCP_WORK_FRACTION
            * (1.0 + w.work_skew)
            / tiles
        )
        cols["fp_per_gpe"].append(w.fp_ops / n_gpes)
        cols["read_bytes_compulsory"].append(w.read_bytes_compulsory)
        cols["write_bytes"].append(w.write_bytes)
        cols["x1_contention"].append(x1.contention_ratio)
        cols["x1_extra"].append(x1.extra_latency_cycles)
        cols["x1_transfers"].append(x1.transfers)
    return {
        name: np.asarray(values, dtype=np.float64).reshape(-1, 1)
        for name, values in cols.items()
    }


def _config_scalars(
    machine: TransmuterModel, configs: Sequence[HardwareConfig], spm: bool
) -> Dict[str, np.ndarray]:
    """Config-only quantities via the original scalar functions.

    DVFS, SRAM energy and leakage involve ``pow``/``sqrt`` — computing
    them per distinct config with the scalar code guarantees their bits
    match the reference path. Shaped ``(1, n_configs)``.
    """
    tiles = machine.n_tiles
    gpes = machine.gpes_per_tile
    memory = machine.memory
    power = machine.power
    rows: Dict[str, List[float]] = {name: [] for name in (
        "freq_hz", "dyn_scale", "l1_energy", "l2_energy", "leak_w",
        "dram_latency", "cap_l1", "cap_l2", "conflict_add_l1",
        "conflict_add_l2", "coverage", "pollution_coef",
        "overfetch_coef", "l1_shared", "l2_shared",
    )}
    for cfg in configs:
        point = operating_point(cfg.clock_mhz)
        l1_energy = _sram_access_energy(params.E_L1_BASE, cfg.l1_kb)
        if spm:
            l1_energy *= params.SPM_ENERGY_FACTOR
        l1_shared = cfg.l1_sharing == "shared"
        l2_shared = cfg.l2_sharing == "shared"
        sharers_l1 = gpes if l1_shared else 1
        sharers_l2 = tiles if l2_shared else 1
        rows["freq_hz"].append(cfg.clock_mhz * 1e6)
        rows["dyn_scale"].append(point.dynamic_scale)
        rows["l1_energy"].append(l1_energy)
        rows["l2_energy"].append(
            _sram_access_energy(params.E_L2_BASE, cfg.l2_kb)
        )
        rows["leak_w"].append(power.leakage_power(cfg, point))
        rows["dram_latency"].append(memory.latency_cycles(cfg.clock_mhz))
        rows["cap_l1"].append(
            cfg.l1_kb * 1024.0 * gpes if l1_shared else cfg.l1_kb * 1024.0
        )
        rows["cap_l2"].append(
            cfg.l2_kb * 1024.0 * tiles if l2_shared else cfg.l2_kb * 1024.0
        )
        rows["conflict_add_l1"].append(
            params.CONFLICT_SHARING * (1.0 - 1.0 / sharers_l1)
            if sharers_l1 > 1
            else 0.0
        )
        rows["conflict_add_l2"].append(
            params.CONFLICT_SHARING * (1.0 - 1.0 / sharers_l2)
            if sharers_l2 > 1
            else 0.0
        )
        rows["coverage"].append(params.PREFETCH_COVERAGE[cfg.prefetch])
        rows["pollution_coef"].append(params.PREFETCH_POLLUTION[cfg.prefetch])
        rows["overfetch_coef"].append(params.PREFETCH_OVERFETCH[cfg.prefetch])
        rows["l1_shared"].append(l1_shared)
        rows["l2_shared"].append(l2_shared)
    out = {
        name: np.asarray(values, dtype=np.float64).reshape(1, -1)
        for name, values in rows.items()
        if name not in ("l1_shared", "l2_shared")
    }
    out["l1_shared"] = np.asarray(rows["l1_shared"], dtype=bool).reshape(1, -1)
    out["l2_shared"] = np.asarray(rows["l2_shared"], dtype=bool).reshape(1, -1)
    return out


# ---------------------------------------------------------------------------
# Vectorized cache level (mirrors cache_model.model_level + residency)
# ---------------------------------------------------------------------------
def _model_level_vec(
    accesses_in,
    unique_words_in,
    unique_lines_in,
    working_set,
    capacity,
    stride,
    reuse_locality,
    coverage,
    pollution_coef,
    overfetch_coef,
    conflict_base,
    conflict_add,
) -> Dict[str, np.ndarray]:
    accesses = np.maximum(accesses_in, 1e-9)
    unique_words = np.minimum(unique_words_in, accesses)
    unique_lines = np.minimum(unique_lines_in, unique_words)
    # Scalar: ``min(...) or 1e-9`` — the fallback fires on exact zero.
    unique_lines = np.where(unique_lines == 0.0, 1e-9, unique_lines)

    pollution = pollution_coef * (1.0 - stride)
    overfetch_rate = overfetch_coef * (1.0 - stride)

    # residency(): capacity over working set with conflict discounts.
    effective = capacity * (1.0 - pollution)
    conflict = conflict_base + conflict_add
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = np.minimum(1.0, effective / working_set)
        p_resident = np.maximum(0.0, raw * (1.0 - conflict))
    p_resident = np.where(working_set > 0.0, p_resident, 1.0)

    reuse_refs = np.maximum(0.0, accesses - unique_words)
    spatial_refs = np.maximum(0.0, unique_words - unique_lines)
    compulsory = unique_lines

    covered_lines = compulsory * stride * coverage
    prefetches_issued = covered_lines + compulsory * overfetch_rate
    overfetch_lines = compulsory * overfetch_rate

    spatial_hit_prob = np.maximum(p_resident, 0.8)
    spatial_density = np.maximum(
        0.0, 1.0 - unique_lines / np.maximum(unique_words, 1e-9)
    )
    refill_hit_prob = spatial_density * reuse_locality
    reuse_hit_prob = p_resident + (1.0 - p_resident) * refill_hit_prob
    hits = (
        reuse_refs * reuse_hit_prob
        + spatial_refs * spatial_hit_prob
        + covered_lines
    )
    hits = np.minimum(hits, accesses)
    misses = accesses - hits
    occupancy = np.minimum(1.0, working_set / np.maximum(capacity, 1e-9))
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / accesses,
        "occupancy": occupancy,
        "prefetches_issued": prefetches_issued,
        "covered_lines": covered_lines,
        "overfetch_lines": overfetch_lines,
    }


def _model_l1_spm_vec(accesses_col, working_set, capacity):
    """Vector twin of ``TransmuterModel._model_l1_spm``."""
    mappable = working_set * params.SPM_MAPPABLE_FRACTION
    mapped_fraction = params.SPM_MAPPABLE_FRACTION * np.minimum(
        1.0, capacity / np.maximum(mappable, 1.0)
    )
    access_hit_fraction = np.minimum(
        0.98, mapped_fraction * params.SPM_HOT_ACCESS_BOOST
    )
    accesses = np.maximum(accesses_col, 1e-9)
    hits = accesses * access_hit_fraction
    misses = accesses - hits
    zeros = np.zeros(np.broadcast(hits, capacity).shape)
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": access_hit_fraction + zeros,
        "occupancy": np.minimum(
            1.0, working_set / np.maximum(capacity, 1e-9)
        )
        + zeros,
        "prefetches_issued": zeros,
        "covered_lines": zeros,
        "overfetch_lines": zeros,
    }


# ---------------------------------------------------------------------------
# The grid
# ---------------------------------------------------------------------------
#: EpochResult scalar fields held as (n_workloads, n_configs) arrays.
_FIELDS = (
    "time_s", "core_time_s", "memory_time_s",
    "dram_read_bytes", "dram_write_bytes",
    "core_dynamic", "l1_dynamic", "l2_dynamic", "xbar_dynamic",
    "dram", "leakage",
    "l1_access_rate", "l1_occupancy", "l1_miss_rate", "l1_prefetch_ratio",
    "l2_access_rate", "l2_occupancy", "l2_miss_rate", "l2_prefetch_ratio",
    "xbar_contention_ratio", "gpe_ipc", "gpe_fp_ipc", "lcp_ipc",
    "dram_read_utilization", "dram_write_utilization",
)


def _compute(
    machine: TransmuterModel,
    workloads: Sequence[EpochWorkload],
    configs: Sequence[HardwareConfig],
) -> Dict[str, np.ndarray]:
    """Evaluate one homogeneous-``l1_type`` grid; see module docstring."""
    spm = configs[0].l1_type == "spm"
    w = _workload_scalars(machine, workloads, spm)
    c = _config_scalars(machine, configs, spm)
    tiles = machine.n_tiles
    n_gpes = machine.n_gpes
    bandwidth = machine.memory.bandwidth_bytes_per_s

    # --- L1 ------------------------------------------------------------
    ws1 = np.where(c["l1_shared"], w["ws_l1_shared"], w["ws_l1_private"])
    if spm:
        l1 = _model_l1_spm_vec(w["accesses"], ws1, c["cap_l1"])
    else:
        inflation1 = np.where(
            c["l1_shared"], w["infl_l1_shared"], w["infl_l1_private"]
        )
        uw_inflated = w["unique_words"] * inflation1
        ul_inflated = w["unique_lines"] * inflation1
        l1 = _model_level_vec(
            accesses_in=w["accesses"],
            unique_words_in=np.minimum(uw_inflated, w["accesses"]),
            unique_lines_in=np.minimum(ul_inflated, uw_inflated),
            working_set=ws1,
            capacity=c["cap_l1"],
            stride=w["stride"],
            reuse_locality=w["reuse_locality"],
            coverage=c["coverage"],
            pollution_coef=c["pollution_coef"],
            overfetch_coef=c["overfetch_coef"],
            conflict_base=w["conflict"],
            conflict_add=c["conflict_add_l1"],
        )

    # --- L2 ------------------------------------------------------------
    ws2 = np.where(c["l2_shared"], w["total_ws"], w["ws_l2_private"])
    inflation2 = np.where(c["l2_shared"], 1.0, w["infl_l2_private"])
    l1_misses_floor = np.maximum(l1["misses"], 1e-9)
    unique2 = np.minimum(w["unique_lines"] * inflation2, l1_misses_floor)
    l2 = _model_level_vec(
        accesses_in=l1_misses_floor,
        unique_words_in=unique2,
        unique_lines_in=unique2,
        working_set=ws2,
        capacity=c["cap_l2"],
        stride=w["stride"],
        reuse_locality=w["reuse_locality"],
        coverage=c["coverage"],
        pollution_coef=c["pollution_coef"],
        overfetch_coef=c["overfetch_coef"],
        conflict_base=w["conflict"],
        conflict_add=c["conflict_add_l2"],
    )

    # --- Crossbars ------------------------------------------------------
    x1_contention = np.where(c["l1_shared"], w["x1_contention"], 0.0)
    x1_extra = np.where(c["l1_shared"], w["x1_extra"], 0.0)
    accesses_x2 = l1["misses"] / max(tiles, 1)
    cycles_x2 = np.maximum(w["ipg"], 1.0)
    rate_x2 = np.minimum(1.0, accesses_x2 / (tiles * cycles_x2))
    collision_x2 = 1.0 - pow_exact(1.0 - rate_x2 / tiles, tiles - 1)
    extra_x2_raw = (
        params.L1_SHARED_BASE_LATENCY
        - 1.0
        + collision_x2 * params.XBAR_CONTENTION_PENALTY
    )
    valid_x2 = c["l2_shared"] & (accesses_x2 != 0.0)
    x2_contention = np.where(valid_x2, collision_x2, 0.0)
    x2_extra = np.where(valid_x2, extra_x2_raw, 0.0)

    # --- Stalls and core time ------------------------------------------
    l2_hit_latency = params.L2_LATENCY + x2_extra
    l2_hits = l1["misses"] * l2["hit_rate"]
    l2_misses = l1["misses"] - l2_hits
    covered = np.minimum(l2["covered_lines"], l2_misses)
    uncovered = l2_misses - covered
    stalls = (
        w["accesses"] * x1_extra
        + l2_hits * l2_hit_latency
        + covered * l2_hit_latency
        + uncovered * c["dram_latency"]
    )
    stalls_per_gpe = stalls / n_gpes * w["imbalance"] / w["mlp"]
    cycles_per_gpe = w["ipg"] + stalls_per_gpe
    core_time = cycles_per_gpe / c["freq_hz"]

    # --- DRAM traffic and roofline -------------------------------------
    line = params.CACHE_LINE_BYTES
    read_bytes = line * (
        l2["misses"] * params.REFETCH_LINE_FACTOR + l2["overfetch_lines"]
    )
    read_bytes = np.maximum(read_bytes, w["read_bytes_compulsory"])
    evict_bytes = line * l2["misses"] * w["store_fraction"] * 0.5
    write_bytes = w["write_bytes"] + evict_bytes
    memory_time = (read_bytes + write_bytes) / bandwidth
    p = params.ROOFLINE_SMOOTHNESS
    elapsed = pow_exact(
        pow_exact(core_time, p) + pow_exact(memory_time, p), 1.0 / p
    )
    window = np.maximum(elapsed, 1e-15)
    bw_capacity = bandwidth * window
    read_utilization = np.minimum(1.0, read_bytes / bw_capacity)
    write_utilization = np.minimum(1.0, write_bytes / bw_capacity)

    # --- Energy ---------------------------------------------------------
    l1_accesses_e = w["accesses"] + l1["prefetches_issued"]
    l2_accesses_e = l1["misses"] + l2["prefetches_issued"]
    xbar_transfers = w["x1_transfers"] * tiles + accesses_x2 * tiles
    dram_bytes = read_bytes + write_bytes
    scale = c["dyn_scale"]

    # --- Counters --------------------------------------------------------
    cycles = np.maximum(cycles_per_gpe, 1e-9)
    gpe_ipc = np.minimum(1.0, w["ipg"] / cycles)
    gpe_fp_ipc = np.minimum(gpe_ipc, w["fp_per_gpe"] / cycles)
    lcp_ipc = np.minimum(1.0, w["lcp_instr"] / cycles)

    shape = (len(workloads), len(configs))
    grid = {
        "time_s": elapsed,
        "core_time_s": core_time,
        "memory_time_s": memory_time,
        "dram_read_bytes": read_bytes,
        "dram_write_bytes": write_bytes,
        "core_dynamic": w["instructions"] * params.E_CORE_OP * scale,
        "l1_dynamic": l1_accesses_e * c["l1_energy"] * scale,
        "l2_dynamic": l2_accesses_e * c["l2_energy"] * scale,
        "xbar_dynamic": xbar_transfers * params.E_XBAR_TRANSFER * scale,
        "dram": dram_bytes * params.E_DRAM_BYTE,
        "leakage": c["leak_w"] * elapsed,
        "l1_access_rate": w["accesses"] / cycles / n_gpes,
        "l1_occupancy": l1["occupancy"],
        "l1_miss_rate": 1.0 - l1["hit_rate"],
        "l1_prefetch_ratio": l1["prefetches_issued"]
        / np.maximum(w["accesses"], 1e-9),
        "l2_access_rate": l1["misses"] / cycles / tiles,
        "l2_occupancy": l2["occupancy"],
        "l2_miss_rate": 1.0 - l2["hit_rate"],
        "l2_prefetch_ratio": l2["prefetches_issued"]
        / np.maximum(l1["misses"], 1e-9),
        "xbar_contention_ratio": np.maximum(x1_contention, x2_contention),
        "gpe_ipc": gpe_ipc,
        "gpe_fp_ipc": gpe_fp_ipc,
        "lcp_ipc": lcp_ipc,
        "dram_read_utilization": read_utilization,
        "dram_write_utilization": write_utilization,
    }
    return {
        name: np.broadcast_to(np.asarray(value), shape)
        for name, value in grid.items()
    }


class _ResultRow:
    """Lazy list-like view of one workload's results across configs."""

    __slots__ = ("_grid", "_index")

    def __init__(self, grid: "EpochGrid", index: int) -> None:
        self._grid = grid
        self._index = index

    def __len__(self) -> int:
        return self._grid.n_configs

    def __getitem__(self, j: int) -> EpochResult:
        return self._grid.result(self._index, j)

    def __iter__(self):
        for j in range(len(self)):
            yield self[j]


class EpochGrid:
    """Batched, lazily materialized ``workloads x configs`` results."""

    def __init__(
        self,
        machine: TransmuterModel,
        workloads: Sequence[EpochWorkload],
        configs: Sequence[HardwareConfig],
    ) -> None:
        if not workloads or not configs:
            raise SimulationError("epoch grid needs workloads and configs")
        self.machine = machine
        self.workloads = list(workloads)
        self.configs = list(configs)
        self.n_workloads = len(self.workloads)
        self.n_configs = len(self.configs)
        with obs_profile.span("epoch_batch"):
            by_type: Dict[str, List[int]] = {}
            for j, cfg in enumerate(self.configs):
                by_type.setdefault(cfg.l1_type, []).append(j)
            if len(by_type) == 1:
                self._fields = _compute(machine, self.workloads, self.configs)
            else:
                shape = (self.n_workloads, self.n_configs)
                fields = {
                    name: np.empty(shape, dtype=np.float64)
                    for name in _FIELDS
                }
                for indices in by_type.values():
                    sub = _compute(
                        machine,
                        self.workloads,
                        [self.configs[j] for j in indices],
                    )
                    for name in _FIELDS:
                        fields[name][:, indices] = sub[name]
                self._fields = fields
        self._lists: Optional[Dict[str, list]] = None
        self._cache: Dict[int, EpochResult] = {}

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Epoch durations, seconds, shape (n_workloads, n_configs)."""
        return np.array(self._fields["time_s"])

    @property
    def energies(self) -> np.ndarray:
        """Total epoch energies, joules, same shape as :attr:`times`."""
        f = self._fields
        # EnergyBreakdown.total sums the components left to right.
        return (
            f["core_dynamic"]
            + f["l1_dynamic"]
            + f["l2_dynamic"]
            + f["xbar_dynamic"]
            + f["dram"]
            + f["leakage"]
        )

    def rows(self) -> List[_ResultRow]:
        """Lazy ``results[i][j]``-style view (EpochTable contract)."""
        return [_ResultRow(self, i) for i in range(self.n_workloads)]

    # ------------------------------------------------------------------
    def result(self, i: int, j: int) -> EpochResult:
        """Materialize the :class:`EpochResult` of one grid cell."""
        key = i * self.n_configs + j
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._lists is None:
            # One bulk unboxing: scheme stitching touches whole rows, and
            # tolist() converts far faster than per-cell item() calls.
            self._lists = {
                name: arr.tolist() for name, arr in self._fields.items()
            }
        f = {name: values[i][j] for name, values in self._lists.items()}
        workload = self.workloads[i]
        config = self.configs[j]
        energy = EnergyBreakdown(
            core_dynamic=f["core_dynamic"],
            l1_dynamic=f["l1_dynamic"],
            l2_dynamic=f["l2_dynamic"],
            xbar_dynamic=f["xbar_dynamic"],
            dram=f["dram"],
            leakage=f["leakage"],
        )
        counters = PerformanceCounters(
            l1_access_rate=f["l1_access_rate"],
            l1_occupancy=f["l1_occupancy"],
            l1_miss_rate=f["l1_miss_rate"],
            l1_prefetch_ratio=f["l1_prefetch_ratio"],
            l1_capacity_kb=float(config.l1_kb),
            l2_access_rate=f["l2_access_rate"],
            l2_occupancy=f["l2_occupancy"],
            l2_miss_rate=f["l2_miss_rate"],
            l2_prefetch_ratio=f["l2_prefetch_ratio"],
            l2_capacity_kb=float(config.l2_kb),
            xbar_contention_ratio=f["xbar_contention_ratio"],
            gpe_ipc=f["gpe_ipc"],
            gpe_fp_ipc=f["gpe_fp_ipc"],
            lcp_ipc=f["lcp_ipc"],
            lcp_fp_ipc=f["lcp_ipc"] * 0.4,
            clock_mhz=config.clock_mhz,
            dram_read_utilization=f["dram_read_utilization"],
            dram_write_utilization=f["dram_write_utilization"],
        )
        result = EpochResult(
            time_s=f["time_s"],
            energy=energy,
            counters=counters,
            core_time_s=f["core_time_s"],
            memory_time_s=f["memory_time_s"],
            dram_read_bytes=f["dram_read_bytes"],
            dram_write_bytes=f["dram_write_bytes"],
            flops=workload.flops,
            fp_ops=workload.fp_ops,
        )
        self._cache[key] = result
        return result


# ---------------------------------------------------------------------------
def simulate_configs(
    machine: TransmuterModel,
    workload: EpochWorkload,
    configs: Sequence[HardwareConfig],
) -> List[EpochResult]:
    """One workload under many configurations (training-set search)."""
    grid = EpochGrid(machine, [workload], configs)
    return [grid.result(0, j) for j in range(grid.n_configs)]


def simulate_trace(
    machine: TransmuterModel,
    workloads: Sequence[EpochWorkload],
    config: HardwareConfig,
) -> List[EpochResult]:
    """Many epochs under one fixed configuration (static baselines)."""
    grid = EpochGrid(machine, workloads, [config])
    return [grid.result(i, 0) for i in range(grid.n_workloads)]
