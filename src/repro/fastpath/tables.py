"""Flat decision tables compiled from fitted CART trees and forests.

A fitted :class:`~repro.ml.decision_tree._BaseTree` is a linked
``TreeNode`` structure; walking it costs a Python attribute chase per
level per sample. Compilation flattens the tree into four contiguous
arrays indexed by node id::

    feature[n]    int32    splitting feature, -1 for leaves
    threshold[n]  float64  split threshold (x[feature] <= threshold -> left)
    left[n]       int32    left child node id
    right[n]      int32    right child node id
    values[n, c]  float64  node value (class probabilities / mean target)

Batch prediction descends all rows breadth-wise: each iteration
resolves one tree level for every still-internal row with a handful of
vectorized gathers, so a whole epoch batch costs ``depth`` numpy ops
instead of ``n_rows`` Python walks. Single-row prediction (the
controller's per-epoch case) uses plain Python lists, which beats both
the node chase and numpy scalar indexing.

Equivalence with the scalar estimators is exact: the node comparisons
(``x <= threshold``), the leaf argmax decode, and the forest's
class-aligned probability averaging reproduce the reference
implementations operation for operation, and
``tests/test_fastpath_equivalence.py`` asserts bit-identical outputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ModelError

__all__ = [
    "CompiledTree",
    "CompiledForest",
    "compile_tree",
    "compile_estimator",
    "compile_forest",
]


class CompiledTree:
    """One fitted tree as flat arrays (see module docstring)."""

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "values",
        "classes_",
        "leaf_pred",
        "n_features",
        "_feature_list",
        "_threshold_list",
        "_left_list",
        "_right_list",
        "_pred_list",
    )

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        values: np.ndarray,
        classes: Optional[np.ndarray],
        n_features: int,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.values = values
        self.classes_ = classes
        self.n_features = n_features
        # Leaf decode, precomputed once: np.argmax over the node value is
        # exactly what DecisionTreeClassifier.predict does per row.
        self.leaf_pred = np.argmax(values, axis=1).astype(np.int32)
        # Python-list mirrors for the tight single-row walker.
        self._feature_list = feature.tolist()
        self._threshold_list = threshold.tolist()
        self._left_list = left.tolist()
        self._right_list = right.tolist()
        self._pred_list = self.leaf_pred.tolist()

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    def leaf_ids(self, rows: np.ndarray) -> np.ndarray:
        """Leaf node id reached by every row (breadth-wise descent)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.n_features:
            raise ModelError(
                f"expected (n, {self.n_features}) rows, got {rows.shape}"
            )
        node = np.zeros(rows.shape[0], dtype=np.int32)
        while True:
            feat = self.feature[node]
            internal = feat >= 0
            if not internal.any():
                return node
            idx = np.nonzero(internal)[0]
            sub = node[idx]
            go_left = rows[idx, feat[idx]] <= self.threshold[sub]
            node[idx] = np.where(go_left, self.left[sub], self.right[sub])

    def leaf_values(self, rows: np.ndarray) -> np.ndarray:
        """Node values at the reached leaves (probabilities / means)."""
        return self.values[self.leaf_ids(rows)]

    def predict_batch(self, rows: np.ndarray) -> np.ndarray:
        """Decoded predictions for a batch of rows."""
        leaves = self.leaf_ids(rows)
        if self.classes_ is None:
            return self.values[leaves, 0]
        return self.classes_[self.leaf_pred[leaves]]

    def predict_row(self, row) -> object:
        """Decoded prediction for one sample (flat-array walk)."""
        feature = self._feature_list
        threshold = self._threshold_list
        left = self._left_list
        right = self._right_list
        node = 0
        feat = feature[0]
        while feat >= 0:
            node = (
                left[node] if row[feat] <= threshold[node] else right[node]
            )
            feat = feature[node]
        if self.classes_ is None:
            return self.values[node, 0]
        return self.classes_[self._pred_list[node]]


class CompiledForest:
    """A bagged ensemble of compiled trees with class-aligned voting."""

    __slots__ = ("trees", "classes_", "col_maps", "n_features")

    def __init__(
        self,
        trees: List[CompiledTree],
        classes: np.ndarray,
        col_maps: List[np.ndarray],
    ) -> None:
        if not trees:
            raise ModelError("cannot compile an empty forest")
        self.trees = trees
        self.classes_ = classes
        self.col_maps = col_maps
        self.n_features = trees[0].n_features

    def predict_batch(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        accumulated = np.zeros((rows.shape[0], self.classes_.size))
        for tree, col_map in zip(self.trees, self.col_maps):
            accumulated[:, col_map] += tree.leaf_values(rows)
        probs = accumulated / len(self.trees)
        return self.classes_[np.argmax(probs, axis=1)]

    def predict_row(self, row) -> object:
        return self.predict_batch(np.asarray(row).reshape(1, -1))[0]


# ---------------------------------------------------------------------------
def compile_tree(tree) -> CompiledTree:
    """Flatten one fitted tree estimator into a :class:`CompiledTree`."""
    root = getattr(tree, "root_", None)
    if root is None:
        raise ModelError("estimator is not fitted; call fit() first")
    features: List[int] = []
    thresholds: List[float] = []
    lefts: List[int] = []
    rights: List[int] = []
    values: List[np.ndarray] = []

    def visit(node) -> int:
        index = len(features)
        features.append(node.feature if not node.is_leaf else -1)
        thresholds.append(node.threshold)
        lefts.append(0)
        rights.append(0)
        values.append(np.asarray(node.value, dtype=np.float64))
        if not node.is_leaf:
            lefts[index] = visit(node.left)
            rights[index] = visit(node.right)
        return index

    visit(root)
    value_matrix = np.vstack([v.reshape(1, -1) for v in values])
    return CompiledTree(
        feature=np.asarray(features, dtype=np.int32),
        threshold=np.asarray(thresholds, dtype=np.float64),
        left=np.asarray(lefts, dtype=np.int32),
        right=np.asarray(rights, dtype=np.int32),
        values=value_matrix,
        classes=getattr(tree, "classes_", None),
        n_features=int(tree.n_features_),
    )


def compile_estimator(estimator):
    """Compile a tree or forest estimator; ``None`` when unsupported.

    Unsupported estimators (anything without the from-scratch tree
    internals) simply stay on their scalar ``predict`` — the caller
    treats ``None`` as "no fast path for this parameter".
    """
    member_trees = getattr(estimator, "trees_", None)
    if member_trees is not None:  # random forest
        classes = getattr(estimator, "classes_", None)
        if classes is None or not member_trees:
            return None
        compiled = [compile_tree(tree) for tree in member_trees]
        col_maps = [
            np.searchsorted(classes, tree.classes_) for tree in member_trees
        ]
        return CompiledForest(compiled, classes, col_maps)
    if getattr(estimator, "root_", None) is not None:
        return compile_tree(estimator)
    return None


def compile_forest(model) -> Dict[str, object]:
    """Compile a :class:`~repro.core.model.SparseAdaptModel` ensemble.

    Returns ``{parameter: CompiledTree | CompiledForest | None}`` —
    one flat table per predicted runtime parameter, ``None`` where the
    estimator type has no compiled form.
    """
    from repro.obs import profile as obs_profile

    with obs_profile.span("forest_compile"):
        return {
            name: compile_estimator(model.trees[name])
            for name in model.predicted_parameters()
        }
