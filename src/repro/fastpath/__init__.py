"""Compiled hot path: vectorized epoch batches and flat decision tables.

Campaigns evaluate the analytic machine model and the CART ensemble
millions of times; both are pure-Python loops on the reference path.
This package compiles them down to numpy:

* :mod:`repro.fastpath.tables` flattens fitted trees and forests into
  contiguous feature/threshold/child/value arrays walked breadth-wise
  over whole batches (and by a tight flat-array loop for the single-row
  controller case).
* :mod:`repro.fastpath.epochs` evaluates the cache/crossbar/DVFS/power
  epoch model for a whole ``workloads x configs`` grid in one pass of
  elementwise array ops.

**Bit-identity is the contract.** Every downstream guarantee
(kill/resume, multi-host convergence, compare gates) keys off exact
report bytes, so the fast path must be numerically indistinguishable
from the scalar reference:

* elementwise float64 ``+ - * /``, ``minimum``/``maximum`` and
  ``sqrt`` are IEEE-754 correctly rounded in both numpy and CPython,
  so mirrored expressions (same operand order, same grouping) produce
  the same bits;
* ``**`` is NOT: numpy's SIMD ``pow`` differs from libm's in the last
  ulp for most exponents, so every data-dependent power is routed
  through :func:`repro.fastpath.epochs.pow_exact` (CPython's
  ``float.__pow__`` applied elementwise) and every config-only power
  (DVFS operating points, SRAM access energies, leakage) is
  precomputed per distinct configuration with the original scalar
  functions.

``tests/test_fastpath_equivalence.py`` locks the equivalence down with
differential property tests; ``REPRO_FASTPATH=0`` (or ``--no-fastpath``)
selects the scalar reference path everywhere.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "enabled",
    "set_enabled",
    "overridden",
    "batch_active",
    "env_default",
]

_FALSEY = ("0", "false", "no", "off")


def env_default() -> bool:
    """The gate value requested by the ``REPRO_FASTPATH`` variable."""
    raw = os.environ.get("REPRO_FASTPATH", "1").strip().lower()
    return raw not in _FALSEY


_STATE = {"enabled": env_default()}


def enabled() -> bool:
    """Whether the compiled fast path is selected for this process."""
    return _STATE["enabled"]


def set_enabled(flag: bool) -> bool:
    """Set the gate (e.g. from ``--no-fastpath``); returns the old value."""
    old = _STATE["enabled"]
    _STATE["enabled"] = bool(flag)
    return old


@contextmanager
def overridden(flag: bool) -> Iterator[None]:
    """Temporarily force the gate (differential tests run both legs)."""
    old = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(old)


def batch_active() -> bool:
    """Whether batched epoch simulation may replace the scalar loop.

    Traced runs stay on the scalar path: ``simulate_epoch`` emits
    ``machine.epoch`` events and per-epoch metrics when a recorder is
    installed, and the batch engine intentionally does not reproduce
    that side-channel (the trace contract is "identical events", which
    the reference path guarantees by construction).
    """
    if not _STATE["enabled"]:
        return False
    from repro.obs import get_recorder

    return not get_recorder().enabled
