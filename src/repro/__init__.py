"""SparseAdapt reproduction: runtime control for sparse linear algebra
on a reconfigurable accelerator (MICRO 2021).

Subpackages
-----------
``repro.sparse``
    Sparse matrix formats, generators, and the Table-5 evaluation suite.
``repro.ml``
    From-scratch decision trees, forests, and linear models.
``repro.transmuter``
    Analytical model of the Transmuter CGRA: configuration space, DVFS,
    caches, crossbars, prefetcher, memory, power, counters, reconfiguration.
``repro.kernels``
    Outer-product SpMSpM, SpMSpV, GeMM, and Conv workload models that
    execute on real data and emit per-epoch workload traces.
``repro.graph``
    BFS and SSSP as iterative SpMSpV vertex programs.
``repro.core``
    The SparseAdapt framework: modes, telemetry, training-set
    construction, the predictive-model ensemble, cost-aware policies,
    and the runtime controller.
``repro.baselines``
    Static configurations, Ideal Greedy, Oracle, and ProfileAdapt.
``repro.experiments``
    Harness and drivers that regenerate every table and figure.
``repro.obs``
    Observability: structured JSONL traces, metrics registry, reports.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
