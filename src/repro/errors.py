"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """An operation received operands with incompatible shapes."""


class FormatError(ReproError):
    """A sparse-matrix container was constructed with inconsistent arrays."""


class ConfigError(ReproError):
    """A hardware configuration is outside the supported parameter space."""


class ModelError(ReproError):
    """A predictive model was used before fitting, or fit on bad data."""


class SimulationError(ReproError):
    """The machine model was driven with an invalid workload or state."""


class FaultError(ReproError):
    """A fault-injection spec, schedule, or campaign request is invalid."""


class StorageError(ReproError):
    """Durable campaign state failed an integrity check.

    Raised when a result group, ledger, or other store artifact is
    detectably corrupt — a torn record, a checksum-trailer mismatch, a
    half-written file — rather than merely absent. Absence is normal
    (the job is simply open); corruption must never be half-read
    silently. ``repro fsck --repair`` quarantines the damaged artifact
    so the campaign can re-run it deterministically.
    """


class RetryableError(ReproError):
    """A transient failure; the suite runner may retry the job.

    Raise this (or a subclass) from job code when the failure is
    plausibly transient — a flaky input source, an injected crash, a
    recoverable environment hiccup. Anything else that escapes a job is
    treated as a poisoned input and quarantined without retry.
    """


class JobTimeoutError(RetryableError):
    """A supervised job overran its deadline and was abandoned.

    Timeouts are retryable: a hang can be transient (contention, a cold
    cache); a persistent hang exhausts the retry budget and the job is
    quarantined with a structured failure record.
    """
