"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """An operation received operands with incompatible shapes."""


class FormatError(ReproError):
    """A sparse-matrix container was constructed with inconsistent arrays."""


class ConfigError(ReproError):
    """A hardware configuration is outside the supported parameter space."""


class ModelError(ReproError):
    """A predictive model was used before fitting, or fit on bad data."""


class SimulationError(ReproError):
    """The machine model was driven with an invalid workload or state."""


class FaultError(ReproError):
    """A fault-injection spec, schedule, or campaign request is invalid."""
