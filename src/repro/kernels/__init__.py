"""Kernel workload models: SpMSpM, SpMSpV, GeMM, Conv.

Public API::

    from repro.kernels import (
        KernelTrace, trace_spmspm, trace_spmspv, trace_gemm, trace_conv,
        SPMSPM_EPOCH_FP_OPS, SPMSPV_EPOCH_FP_OPS,
    )
"""

from repro.kernels.base import (
    SPMSPM_EPOCH_FP_OPS,
    SPMSPV_EPOCH_FP_OPS,
    EpochAccumulator,
    KernelTrace,
)
from repro.kernels.conv import trace_conv
from repro.kernels.gemm import trace_gemm
from repro.kernels.spmspm import trace_spmspm
from repro.kernels.spmspm_inner import trace_spmspm_inner
from repro.kernels.spmspv import trace_spmspv

__all__ = [
    "KernelTrace",
    "EpochAccumulator",
    "trace_spmspm",
    "trace_spmspm_inner",
    "trace_spmspv",
    "trace_gemm",
    "trace_conv",
    "SPMSPM_EPOCH_FP_OPS",
    "SPMSPV_EPOCH_FP_OPS",
]
