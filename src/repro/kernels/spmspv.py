"""Column-wise SpMSpV kernel model.

``y = A @ x`` with A in CSC and x as sorted index/value pairs: for every
stored ``x_j`` the kernel scales column ``j`` of A and accumulates into
a sparse accumulator over the output vector. Multiply and merge happen
"in tandem" (paper Section 5.1): every column task both multiplies and
merges into the accumulator, so the trace has a single explicit phase
and all phase variation is implicit — driven by column densities and by
how much of the accumulator each column revisits.

The kernel executes on the real operands and tracks the accumulator
exactly, so accumulator reuse (the dominant implicit-phase signal) is
measured, not assumed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPV_EPOCH_FP_OPS, EpochAccumulator, KernelTrace
from repro.sparse.csc import CSCMatrix
from repro.sparse.vector import SparseVector
from repro.transmuter import params
from repro.transmuter.workload import PHASE_SPMSPV

__all__ = ["trace_spmspv"]

_ELEMENT_BYTES = 12.0

#: Streaming fraction of the column fetch (values + indices).
_COLUMN_STRIDE = 0.85


def trace_spmspv(
    a_csc: CSCMatrix,
    x: SparseVector,
    epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
    name: Optional[str] = None,
) -> KernelTrace:
    """Trace column-driven SpMSpV over real operands.

    Returns a :class:`KernelTrace` with one implicit-phase epoch stream.
    Use :func:`repro.sparse.ops.spmspv_reference` for the numeric result.
    """
    if a_csc.shape[1] != x.length:
        raise ShapeError(
            f"dimension mismatch: {a_csc.shape} @ vector({x.length})"
        )
    n_rows = a_csc.shape[0]
    accumulator_touched = np.zeros(n_rows, dtype=bool)
    touched_count = 0
    accumulator = EpochAccumulator(PHASE_SPMSPV, epoch_fp_ops)

    # Words per cache line: accumulator updates whose row gaps stay
    # within a line behave like streaming; larger gaps are true gathers.
    words_per_line = params.CACHE_LINE_BYTES // params.WORD_BYTES

    for j in x.indices:
        rows, _values = a_csc.col(int(j))
        a_nnz = int(rows.size)
        if a_nnz == 0:
            continue
        new_mask = ~accumulator_touched[rows]
        new_touches = int(np.count_nonzero(new_mask))
        accumulator_touched[rows] = True
        touched_count += new_touches

        # Spatial locality of the accumulator scatter: the fraction of
        # consecutive row gaps that stay within one cache line.
        # Diagonal-local matrices (R09) score high; power-law columns
        # whose entries span the whole accumulator score low.
        if a_nnz > 1:
            gaps = np.diff(rows)  # CSC row indices are sorted
            accumulator_locality = float(np.mean(gaps <= words_per_line))
        else:
            accumulator_locality = 1.0

        flops = 2.0 * a_nnz  # multiply + accumulate per stored element
        fp_loads = 2.0 * a_nnz + 1.0  # column values + accumulator reads + x_j
        fp_stores = float(a_nnz)  # accumulator writes
        int_ops = 3.0 * a_nnz  # row indices + accumulator addressing
        loads = 3.0 * a_nnz + 1.0  # values, indices, accumulator
        stores = float(a_nnz)
        unique_words = 2.0 * a_nnz + new_touches
        unique_lines = max(
            1.0,
            (
                _ELEMENT_BYTES * a_nnz
                + params.WORD_BYTES * new_touches / max(accumulator_locality, 0.125)
            )
            / params.CACHE_LINE_BYTES,
        )
        column_accesses = 2.0 * a_nnz
        accumulator_accesses = 2.0 * a_nnz
        stride = (
            column_accesses * _COLUMN_STRIDE
            + accumulator_accesses * accumulator_locality
        ) / (column_accesses + accumulator_accesses)
        # The output vector is row-partitioned across GPEs, and each
        # GPE reads only the column entries landing in its slice, so
        # both the accumulator and the matrix data are effectively
        # private; only x values and index metadata are shared.
        shared = 0.15
        accumulator.add(
            flops=flops,
            fp_loads=fp_loads,
            fp_stores=fp_stores,
            int_ops=int_ops,
            loads=loads,
            stores=stores,
            unique_words=unique_words,
            unique_lines=unique_lines,
            stride_fraction=float(np.clip(stride, 0.0, 1.0)),
            shared_fraction=shared,
            read_bytes=_ELEMENT_BYTES * a_nnz + _ELEMENT_BYTES,
            write_bytes=_ELEMENT_BYTES * new_touches,
            resident_bytes=(
                touched_count * params.WORD_BYTES
                + _ELEMENT_BYTES * a_nnz
            ),
            reuse_locality=accumulator_locality,
        )

    epochs = accumulator.finish()
    return KernelTrace(
        name=name or "spmspv",
        epochs=epochs,
        info={
            "a_nnz": float(a_csc.nnz),
            "x_nnz": float(x.nnz),
            "y_nnz": float(np.count_nonzero(accumulator_touched)),
        },
    )
