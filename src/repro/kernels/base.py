"""Kernel trace containers and the epoch accumulator.

A kernel "execution" in this reproduction walks the real algorithm over
the real input data, accumulating workload statistics, and cuts an
epoch whenever the floating-point-operation budget (inclusive of FP
loads and stores, Section 4 of the paper) is exhausted. The result is a
:class:`KernelTrace`: an ordered list of
:class:`~repro.transmuter.workload.EpochWorkload` records plus metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.transmuter.workload import EpochWorkload

__all__ = ["KernelTrace", "EpochAccumulator"]

#: Default epoch budgets (paper Section 5.4).
SPMSPM_EPOCH_FP_OPS = 5000
SPMSPV_EPOCH_FP_OPS = 500


@dataclass
class KernelTrace:
    """A kernel execution summarized as a sequence of epoch workloads."""

    name: str
    epochs: List[EpochWorkload]
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def total_flops(self) -> float:
        """Arithmetic FLOPs across the whole trace (GFLOPS numerator)."""
        return float(sum(epoch.flops for epoch in self.epochs))

    @property
    def total_fp_ops(self) -> float:
        return float(sum(epoch.fp_ops for epoch in self.epochs))

    def phases(self) -> List[str]:
        """Distinct phase labels in execution order."""
        seen: List[str] = []
        for epoch in self.epochs:
            if not seen or seen[-1] != epoch.phase:
                seen.append(epoch.phase)
        return seen


class EpochAccumulator:
    """Accumulates per-task statistics and emits fixed-budget epochs.

    Tasks (one outer product, one merged row, one SpMSpV column, ...)
    call :meth:`add` with their incremental contribution; whenever the
    accumulated FP-op count reaches ``epoch_fp_ops`` the accumulator
    closes the epoch. Fractions (stride, sharing) are averaged weighted
    by accesses; the work skew is the coefficient of variation of the
    per-task FP work inside the epoch.
    """

    def __init__(self, phase: str, epoch_fp_ops: float) -> None:
        if epoch_fp_ops <= 0:
            raise SimulationError("epoch budget must be positive")
        self.phase = phase
        self.epoch_fp_ops = epoch_fp_ops
        self.epochs: List[EpochWorkload] = []
        self._reset()

    def _reset(self) -> None:
        self._fp_ops = 0.0
        self._flops = 0.0
        self._int_ops = 0.0
        self._loads = 0.0
        self._stores = 0.0
        self._unique_words = 0.0
        self._unique_lines = 0.0
        self._stride_weighted = 0.0
        self._reuse_locality_weighted = 0.0
        self._shared_weighted = 0.0
        self._unique_weight = 0.0
        self._read_bytes = 0.0
        self._write_bytes = 0.0
        self._resident_bytes = 0.0
        self._task_work: List[float] = []

    # ------------------------------------------------------------------
    def add(
        self,
        flops: float,
        fp_loads: float,
        fp_stores: float,
        int_ops: float,
        loads: float,
        stores: float,
        unique_words: float,
        unique_lines: float,
        stride_fraction: float,
        shared_fraction: float,
        read_bytes: float,
        write_bytes: float,
        resident_bytes: float = 0.0,
        reuse_locality: float = 0.5,
    ) -> None:
        """Add one task's contribution; may close one or more epochs.

        ``resident_bytes`` is the live cross-epoch working set observed
        while this task ran; the epoch records the maximum across its
        tasks.
        """
        self._flops += flops
        self._fp_ops += flops + fp_loads + fp_stores
        self._int_ops += int_ops
        self._loads += loads
        self._stores += stores
        self._unique_words += unique_words
        self._unique_lines += unique_lines
        weight = max(unique_words, 1.0)
        self._stride_weighted += stride_fraction * weight
        self._reuse_locality_weighted += reuse_locality * weight
        self._shared_weighted += shared_fraction * weight
        self._unique_weight += weight
        self._read_bytes += read_bytes
        self._write_bytes += write_bytes
        self._resident_bytes = max(self._resident_bytes, resident_bytes)
        self._task_work.append(flops + fp_loads + fp_stores)
        if self._fp_ops >= self.epoch_fp_ops:
            self._close()

    def _close(self) -> None:
        if self._fp_ops <= 0:
            self._reset()
            return
        work = np.asarray(self._task_work)
        if work.size > 1 and work.mean() > 0:
            skew = float(work.std() / work.mean())
        else:
            skew = 0.0
        weight = max(self._unique_weight, 1e-9)
        self.epochs.append(
            EpochWorkload(
                phase=self.phase,
                fp_ops=self._fp_ops,
                flops=self._flops,
                int_ops=self._int_ops,
                loads=self._loads,
                stores=self._stores,
                unique_words=self._unique_words,
                unique_lines=max(self._unique_lines, 1.0),
                stride_fraction=min(1.0, self._stride_weighted / weight),
                shared_fraction=min(1.0, self._shared_weighted / weight),
                read_bytes_compulsory=self._read_bytes,
                write_bytes=self._write_bytes,
                work_skew=skew,
                resident_bytes=self._resident_bytes,
                reuse_locality=min(
                    1.0, self._reuse_locality_weighted / weight
                ),
            )
        )
        self._reset()

    def finish(self) -> List[EpochWorkload]:
        """Close any partial epoch and return all epochs."""
        if self._fp_ops > 0:
            self._close()
        return self.epochs
