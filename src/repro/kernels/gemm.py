"""Dense GeMM workload model (regular-kernel ablation, paper Section 7).

The paper's offline analysis shows that for *regular* kernels (GeMM and
Conv) the gap between Ideal Static and Oracle is under 5%, i.e. dynamic
control is unnecessary. Tiled dense GeMM produces a stream of nearly
identical epochs — no implicit phases — which is exactly what makes the
static configuration sufficient.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ShapeError
from repro.kernels.base import SPMSPM_EPOCH_FP_OPS, EpochAccumulator, KernelTrace
from repro.transmuter import params
from repro.transmuter.workload import PHASE_GEMM

__all__ = ["trace_gemm"]


def trace_gemm(
    m: int,
    k: int,
    n: int,
    tile: int = 32,
    epoch_fp_ops: float = SPMSPM_EPOCH_FP_OPS,
    name: Optional[str] = None,
) -> KernelTrace:
    """Trace a tiled dense ``C[m,n] = A[m,k] @ B[k,n]``.

    Each task is one ``tile x tile x tile`` block multiply: fully
    regular, high stride, strong reuse of the resident tiles.
    """
    if min(m, k, n) <= 0 or tile <= 0:
        raise ShapeError("GeMM dimensions must be positive")
    accumulator = EpochAccumulator(PHASE_GEMM, epoch_fp_ops)
    tiles_m = (m + tile - 1) // tile
    tiles_k = (k + tile - 1) // tile
    tiles_n = (n + tile - 1) // tile
    block = float(tile * tile)
    for _ in range(tiles_m * tiles_k * tiles_n):
        flops = 2.0 * tile * block  # multiply-accumulate per element
        fp_loads = 2.0 * block + block  # A tile, B tile, C tile
        fp_stores = block
        accumulator.add(
            flops=flops,
            fp_loads=fp_loads,
            fp_stores=fp_stores,
            int_ops=0.3 * flops,  # loop/address overhead
            loads=fp_loads,
            stores=fp_stores,
            unique_words=3.0 * block,
            unique_lines=3.0 * block * params.WORD_BYTES / params.CACHE_LINE_BYTES,
            stride_fraction=0.95,
            shared_fraction=0.5,  # B tiles shared across GPEs of a tile row
            read_bytes=2.0 * block * params.WORD_BYTES,
            write_bytes=block * params.WORD_BYTES / max(tiles_k, 1),
            resident_bytes=16 * 3.0 * block * params.WORD_BYTES,
            reuse_locality=0.95,
        )
    return KernelTrace(
        name=name or f"gemm-{m}x{k}x{n}",
        epochs=accumulator.finish(),
        info={"m": float(m), "k": float(k), "n": float(n)},
    )
