"""Outer-product SpMSpM kernel model (paper Section 2.1, OuterSpace).

``C = A @ B`` with A in CSC and B in CSR decomposes into two explicit
phases:

* **multiply** — for every inner index ``i``, the outer product of
  column ``i`` of A (``a_i`` non-zeros) with row ``i`` of B (``b_i``
  non-zeros) produces ``a_i * b_i`` partial products, streamed out as
  per-row lists. The B row is reused ``a_i`` times, so dense outer
  products have high temporal reuse and a larger live working set —
  these are the paper's *implicit phases* (Figure 1).
* **merge** — for every output row, the partial products accumulated
  for that row are merge-sorted and summed into the final row of C.
  Row partial counts vary wildly for power-law inputs, driving load
  imbalance and irregular access.

The kernel walks the real matrices, so the epoch statistics (and hence
the implicit phases the controller reacts to) come from real data.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPM_EPOCH_FP_OPS, EpochAccumulator, KernelTrace
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import partials_per_row
from repro.transmuter import params
from repro.transmuter.workload import PHASE_MERGE, PHASE_MULTIPLY

__all__ = ["trace_spmspm"]

#: Bytes per stored element: 8-byte value + 4-byte index.
_ELEMENT_BYTES = 12.0

#: Streaming fractions of each phase's access mix: the multiply phase
#: reads and writes sequential runs (columns, rows, partial lists); the
#: merge phase gathers scattered partials.
_MULTIPLY_STRIDE = 0.85
_MERGE_STRIDE = 0.30

#: GPEs collaborating on one outer product share the B row (the paper
#: observes multiply is amenable to shared L1, merge to private L1).
_MERGE_SHARED = 0.05

#: Nominal number of concurrent tasks (outer products / merge rows) in
#: flight across the system, used to size the live operand buffers the
#: caches should hold (machine-independent trace: the 2x8 system).
_CONCURRENCY = 16


def trace_spmspm(
    a_csc: CSCMatrix,
    b_csr: CSRMatrix,
    epoch_fp_ops: float = SPMSPM_EPOCH_FP_OPS,
    name: Optional[str] = None,
) -> KernelTrace:
    """Trace outer-product SpMSpM over real operands.

    Returns a :class:`KernelTrace` whose epochs cover the multiply phase
    followed by the merge phase. Use
    :func:`repro.sparse.ops.spmspm_reference` for the numeric result.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions differ: {a_csc.shape} @ {b_csr.shape}"
        )
    multiply = EpochAccumulator(PHASE_MULTIPLY, epoch_fp_ops)
    a_counts = a_csc.col_lengths()
    b_counts = b_csr.row_lengths()

    # ------------------------------------------------------------------
    # Multiply phase: one task per outer product.
    # ------------------------------------------------------------------
    for i in range(a_csc.shape[1]):
        a_nnz = int(a_counts[i])
        b_nnz = int(b_counts[i])
        if a_nnz == 0 or b_nnz == 0:
            continue
        partials = a_nnz * b_nnz
        # The B row is streamed once per element of the A column; reuse
        # makes all but the first pass cache-resident.
        fp_loads = a_nnz + a_nnz * b_nnz  # A values once, B values re-read
        fp_stores = partials  # partial-product values
        int_ops = 2.0 * partials + (a_nnz + b_nnz)  # indices + addressing
        loads = 2.0 * a_nnz + a_nnz * b_nnz + b_nnz  # values + index arrays
        stores = 2.0 * partials  # value + column index per partial
        unique_words = 2.0 * (a_nnz + b_nnz) + 2.0 * partials
        unique_lines = (
            _ELEMENT_BYTES * (a_nnz + b_nnz) + _ELEMENT_BYTES * partials
        ) / params.CACHE_LINE_BYTES
        shared = (2.0 * b_nnz) / max(unique_words, 1.0)
        multiply.add(
            flops=float(partials),
            fp_loads=float(fp_loads),
            fp_stores=float(fp_stores),
            int_ops=float(int_ops),
            loads=float(loads),
            stores=float(stores),
            unique_words=float(unique_words),
            unique_lines=float(max(unique_lines, 1.0)),
            stride_fraction=_MULTIPLY_STRIDE,
            shared_fraction=min(0.9, 4.0 * shared),
            read_bytes=_ELEMENT_BYTES * (a_nnz + b_nnz),
            write_bytes=_ELEMENT_BYTES * partials,
            resident_bytes=_CONCURRENCY * _ELEMENT_BYTES * (a_nnz + b_nnz),
            reuse_locality=0.9,  # the reused B row is re-scanned in order
        )
    multiply_epochs = multiply.finish()

    # ------------------------------------------------------------------
    # Merge phase: one task per output row holding >= 1 partial.
    # ------------------------------------------------------------------
    merge = EpochAccumulator(PHASE_MERGE, epoch_fp_ops)
    row_partials = partials_per_row(a_csc, b_csr)
    for k in row_partials[row_partials > 0]:
        k = float(k)
        passes = max(1.0, math.ceil(math.log2(k)) if k > 1 else 1.0)
        output = max(1.0, k * 0.7)  # duplicates collapse some partials
        fp_loads = k * passes
        fp_stores = k * (passes - 1.0) + output
        merge.add(
            flops=k,  # additions when summing duplicate columns
            fp_loads=fp_loads,
            fp_stores=fp_stores,
            int_ops=2.0 * k * passes,  # comparisons + index moves
            loads=2.0 * k * passes,
            stores=2.0 * (k * (passes - 1.0) + output),
            unique_words=2.0 * (k + output),
            unique_lines=max(
                1.0, _ELEMENT_BYTES * (k + output) / params.CACHE_LINE_BYTES
            ),
            stride_fraction=_MERGE_STRIDE,
            shared_fraction=_MERGE_SHARED,
            read_bytes=_ELEMENT_BYTES * k,
            write_bytes=_ELEMENT_BYTES * output,
            resident_bytes=_CONCURRENCY * _ELEMENT_BYTES * (k + output),
            reuse_locality=0.6,  # merge passes re-scan partial runs
        )
    merge_epochs = merge.finish()

    epochs = multiply_epochs + merge_epochs
    total_partials = float(np.sum(row_partials))
    return KernelTrace(
        name=name or "spmspm",
        epochs=epochs,
        info={
            "a_nnz": float(a_csc.nnz),
            "b_nnz": float(b_csr.nnz),
            "partial_products": total_partials,
            "multiply_epochs": float(len(multiply_epochs)),
            "merge_epochs": float(len(merge_epochs)),
        },
    )
