"""Dense 2-D convolution workload model (regular-kernel ablation).

Companion to :mod:`repro.kernels.gemm` for the Section-7 study: a
sliding-window convolution has near-perfect spatial locality and fully
uniform epochs, so dynamic reconfiguration has nothing to exploit.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ShapeError
from repro.kernels.base import SPMSPM_EPOCH_FP_OPS, EpochAccumulator, KernelTrace
from repro.transmuter import params
from repro.transmuter.workload import PHASE_CONV

__all__ = ["trace_conv"]


def trace_conv(
    height: int,
    width: int,
    kernel: int = 3,
    channels: int = 1,
    epoch_fp_ops: float = SPMSPM_EPOCH_FP_OPS,
    name: Optional[str] = None,
) -> KernelTrace:
    """Trace a dense ``kernel x kernel`` convolution over an image.

    One task per output row: the kernel window slides along the row,
    re-reading ``kernel - 1`` input rows that are resident from the
    previous output row (strong reuse, high stride).
    """
    if min(height, width, kernel, channels) <= 0:
        raise ShapeError("convolution dimensions must be positive")
    if kernel > min(height, width):
        raise ShapeError("kernel larger than image")
    accumulator = EpochAccumulator(PHASE_CONV, epoch_fp_ops)
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    taps = float(kernel * kernel * channels)
    for _ in range(out_h):
        flops = 2.0 * taps * out_w  # multiply + add per tap per output
        fp_loads = taps * out_w  # window reads (mostly cached)
        fp_stores = float(out_w)
        new_words = float(width * channels)  # one fresh input row + output
        accumulator.add(
            flops=flops,
            fp_loads=fp_loads,
            fp_stores=fp_stores,
            int_ops=0.4 * flops,
            loads=fp_loads,
            stores=fp_stores,
            unique_words=new_words + out_w,
            unique_lines=max(
                1.0,
                (new_words + out_w) * params.WORD_BYTES / params.CACHE_LINE_BYTES,
            ),
            stride_fraction=0.95,
            shared_fraction=0.3,  # halo rows shared between neighbours
            read_bytes=new_words * params.WORD_BYTES,
            write_bytes=out_w * params.WORD_BYTES,
            resident_bytes=kernel * width * channels * params.WORD_BYTES,
            reuse_locality=0.95,
        )
    return KernelTrace(
        name=name or f"conv-{height}x{width}k{kernel}",
        epochs=accumulator.finish(),
        info={
            "height": float(height),
            "width": float(width),
            "kernel": float(kernel),
        },
    )
