"""Inner-product SpMSpM kernel model (the paper's Section-5.4 foil).

The paper limits its evaluation to *outer-product* SpMSpM "as it has
been shown to be superior for the density levels considered" (citing
the inner-product-with-compression design of Sparse-TPU). This module
models the inner-product alternative so that claim can be checked:

``C[i, j] = A[i, :] . B[:, j]`` — for every output row, the row of A is
held resident while every column of B is streamed past it and the
sorted index lists are intersected. Compared with the outer-product
formulation:

* the same multiplies happen (one per index match — exactly the
  outer-product partial count), and no merge phase is needed;
* but the index intersections cost ``a_i + b_j`` comparisons per
  (row, column) pair, and B is re-streamed once per output row —
  an O(n x nnz) traffic term that dwarfs the outer product's
  O(partials) partial-product traffic at low densities, and only wins
  when the matrices get dense.

The kernel uses exact per-row partial counts (match counts) and column
lengths; it does not enumerate every intersection, so tracing stays
O(nnz + n).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPM_EPOCH_FP_OPS, EpochAccumulator, KernelTrace
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import partials_per_row
from repro.transmuter import params

__all__ = ["trace_spmspm_inner"]

_ELEMENT_BYTES = 12.0

#: Phase label of the single (fused) inner-product phase.
PHASE_INNER = "inner"

#: Index-intersection streams are sequential scans of two sorted lists.
_INNER_STRIDE = 0.9

#: The resident A row is shared by the GPEs sweeping B columns.
_INNER_SHARED = 0.4


def trace_spmspm_inner(
    a_csc: CSCMatrix,
    b_csr: CSRMatrix,
    epoch_fp_ops: float = SPMSPM_EPOCH_FP_OPS,
    name: Optional[str] = None,
) -> KernelTrace:
    """Trace inner-product SpMSpM over real operands.

    One task per non-empty output row: the row of A stays resident
    while all non-empty columns of B stream past it.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions differ: {a_csc.shape} @ {b_csr.shape}"
        )
    a_csr = a_csc.to_csr()
    b_csc = b_csr.to_csc()
    a_row_lengths = a_csr.row_lengths()
    b_col_lengths = b_csc.col_lengths()
    b_nnz = float(b_csc.nnz)
    n_nonempty_cols = int(np.count_nonzero(b_col_lengths))
    matches_per_row = partials_per_row(a_csc, b_csr)

    accumulator = EpochAccumulator(PHASE_INNER, epoch_fp_ops)
    for i in range(a_csr.shape[0]):
        a_nnz = float(a_row_lengths[i])
        if a_nnz == 0:
            continue
        matches = float(matches_per_row[i])
        # Sorted-list intersection of the A row against every column.
        comparisons = a_nnz * n_nonempty_cols + b_nnz
        flops = 2.0 * matches  # multiply + accumulate per index match
        fp_loads = 2.0 * matches + a_nnz  # matched values + row values
        output = max(1.0, matches * 0.7)
        fp_stores = output
        # B values+indices are re-streamed for this row; the A row is
        # read once and re-referenced per column.
        loads = 2.0 * b_nnz + a_nnz * n_nonempty_cols + 2.0 * a_nnz
        stores = 2.0 * output
        unique_words = 2.0 * (a_nnz + b_nnz) + 2.0 * output
        unique_lines = max(
            1.0,
            _ELEMENT_BYTES * (a_nnz + b_nnz + output)
            / params.CACHE_LINE_BYTES,
        )
        accumulator.add(
            flops=flops,
            fp_loads=fp_loads,
            fp_stores=fp_stores,
            int_ops=comparisons,
            loads=loads,
            stores=stores,
            unique_words=unique_words,
            unique_lines=unique_lines,
            stride_fraction=_INNER_STRIDE,
            shared_fraction=_INNER_SHARED,
            # B must come from DRAM once per row sweep unless cached.
            read_bytes=_ELEMENT_BYTES * a_nnz + _ELEMENT_BYTES * b_nnz,
            write_bytes=_ELEMENT_BYTES * output,
            resident_bytes=_ELEMENT_BYTES * (a_nnz + b_nnz),
            reuse_locality=_INNER_STRIDE,
        )
    epochs = accumulator.finish()
    return KernelTrace(
        name=name or "spmspm-inner",
        epochs=epochs,
        info={
            "a_nnz": float(a_csr.nnz),
            "b_nnz": b_nnz,
            "matches": float(np.sum(matches_per_row)),
        },
    )
