"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the configuration space, Table-4 static points, and the
    default machine geometry.
``suite``
    List the Table-5 evaluation matrices and their stand-in classes.
``train``
    Train a SparseAdapt model on the Table-3 sweep and save it as JSON.
``run``
    Evaluate control schemes for one kernel/matrix and print the gains
    (``--json`` for machine-readable output).
``experiment``
    Run one of the paper's figure/table drivers and print its report
    (``--json`` for machine-readable output).
``trace``
    Run SparseAdapt over one kernel/matrix with structured tracing
    enabled and write the trace as JSONL.
``trace-report``
    Summarize a recorded trace: epoch timeline, reconfiguration counts
    by parameter, decision-latency histogram, most expensive epochs.
``explain``
    Print the decision provenance recorded in a trace: the tree path
    (counter vs threshold at every node), vote margin, and the policy
    verdict with its cost-vs-budget numbers, per epoch and parameter.
``diff``
    Align two recorded traces epoch-by-epoch: first-divergence epoch,
    per-parameter divergence timeline, counter deltas at divergence,
    and a whole-run metric regression summary. Exits 3 when the traces
    diverge (0 when identical), so scripts can assert reproducibility.
``compare``
    Render a multi-candidate comparison from a declarative experiment
    spec and the ledger ``suite-run --spec`` produced (or from legacy
    campaign ledgers): per-workload metric tables, win/loss matrix,
    geomean deltas vs the baseline candidate, per-candidate health,
    regression gates (violations exit 3), optional SVG figures and a
    first-divergence drill-down between two adaptive candidates.
``faults``
    Run a fault-injection campaign from a schedule spec file (or the
    built-in ``--mixed`` schedule) and print the degradation table:
    gain over BASELINE and clean-gain retention per fault-rate scale,
    hardened vs. unhardened.
``suite-run``
    Run a supervised campaign from a plan file (or the built-in
    Table-5 plan): per-job deadlines, bounded retries, quarantine for
    poisoned inputs, and a durable run ledger that makes the campaign
    resumable with ``--resume``. ``--workers N`` shards the pending
    jobs across N processes with byte-identical results. ``--spec``
    compiles a declarative experiment spec (see ``docs/experiments.md``)
    into the plan instead, for ``repro compare`` afterwards.
    ``--store DIR`` registers the plan in a shared experiment store
    and works it as one store worker — any number of additional
    ``repro worker --store DIR`` processes (any host sharing the path)
    can join, and the converged ledger is byte-identical regardless.
``worker``
    Join a registered experiment store as one worker process: claim
    open jobs via atomic lease files, execute them under the store's
    supervision config, publish results first-wins, and exit when the
    grid converges (see docs/robustness.md, "multi-host campaigns").
``ledger-compact``
    Rewrite a run ledger to its header plus terminal records only,
    sealed with a checksum trailer — reports stay byte-identical while
    retry/heartbeat churn is dropped. ``--check`` verifies a compacted
    ledger's trailer instead.
``fsck``
    Scan an experiment store (or a bare ledger file) for storage
    damage: torn/corrupt records, result groups failing their sha256
    trailer, orphan ``*.tmp`` residue, dead leases, and terminal
    ledger rows whose result group vanished. ``--repair`` quarantines
    corrupt groups back to open, scavenges residue, and rewrites or
    rebuilds damaged ledgers so a resumed campaign converges
    byte-identical. Exits 0 clean / 1 unrepairable / 3 repairable
    damage found without ``--repair``.
``suite-report``
    Summarize a past campaign's run ledger without re-running it (job
    counts, retries, quarantine taxonomy, per-worker timing), or diff
    two ledgers' terminal rows with ``--diff``.
``top``
    Watch a running campaign live through its ledger's heartbeat
    records: progress bar, per-worker throughput, EWMA-based ETA, and
    straggler/dead-worker flags (``--once`` for one snapshot,
    ``--metrics-out`` for an OpenMetrics export).
``profile-report``
    Render a profile saved by ``run``/``suite-run`` ``--profile-out``:
    per-component self-time table, span tree, or the collapsed-stack
    flamegraph text (``--collapsed``).

``run``, ``trace``, and ``experiment`` execute under the suite
runner's watchdog, so ``--deadline SECONDS`` bounds any single
invocation; ``run`` and ``suite-run`` accept ``--profile`` to print a
wall-clock attribution report (see ``docs/profiling.md``).

Every library failure (bad arguments, malformed spec files, unknown
fault kinds, ...) exits 1 with a one-line ``error: ...`` on stderr —
never a traceback. The comparison verbs share one exit-code contract:
``diff``, ``explain --against``, ``suite-report --diff`` and
``compare`` exit 0 when the inputs agree (all gates pass), 3 when they
diverge or a gate is violated, with a one-line summary on stderr (see
``docs/observability.md``). Ctrl-C flushes open trace sinks, prints a
one-line ``interrupted: ...`` (with a resume hint when a ledger was
active), and exits 130.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__

__all__ = ["main", "build_parser"]

_MODES = {"ee": "energy-efficient", "pp": "power-performance"}

_EXPERIMENTS = (
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11-policies",
    "fig11-bandwidth",
    "fig12",
    "tab6",
    "sec64",
    "sec7",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparseAdapt (MICRO 2021) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="use the scalar reference path (no compiled decision "
        "tables, no batched epoch simulation, no decision memo); "
        "equivalent to REPRO_FASTPATH=0. Results are bit-identical "
        "either way; this exists for verification and debugging.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="describe the modeled system")
    commands.add_parser("suite", help="list the Table-5 matrices")

    train = commands.add_parser("train", help="train and save a model")
    train.add_argument("--mode", choices=sorted(_MODES), default="ee")
    train.add_argument(
        "--kernel", choices=("spmspm", "spmspv"), default="spmspv"
    )
    train.add_argument("--l1-type", choices=("cache", "spm"), default="cache")
    train.add_argument(
        "--full",
        action="store_true",
        help="run the full hyperparameter grid search (slower)",
    )
    train.add_argument("--out", required=True, help="output JSON path")

    run = commands.add_parser("run", help="evaluate schemes on one input")
    run.add_argument(
        "--kernel",
        choices=("spmspm", "spmspv", "bfs", "sssp"),
        default="spmspm",
    )
    run.add_argument("--matrix", default="R03", help="Table-5 id (e.g. R03)")
    run.add_argument("--scale", type=float, default=0.3)
    run.add_argument("--mode", choices=sorted(_MODES), default="ee")
    run.add_argument("--model", help="trained model JSON (default: stock)")
    run.add_argument(
        "--bandwidth", type=float, default=1.0, help="off-chip GB/s"
    )
    run.add_argument(
        "--upper-bounds",
        action="store_true",
        help="include Ideal Static / Ideal Greedy / Oracle",
    )
    run.add_argument(
        "--noise",
        type=float,
        default=0.0,
        help="telemetry noise sigma on the SparseAdapt scheme",
    )
    run.add_argument(
        "--noise-seed",
        type=int,
        default=0,
        help="RNG seed of the telemetry noise stream",
    )
    run.add_argument(
        "--faults",
        help="fault schedule JSON for the SparseAdapt scheme "
        "(see docs/robustness.md)",
    )
    run.add_argument(
        "--no-hardening",
        action="store_true",
        help="run the fault-injected controller without the hardened "
        "sanitize/read-back/safe-mode layer",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock deadline in seconds (the evaluation runs "
        "under the suite runner's watchdog)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print a wall-clock profile (kernel sim, forest "
        "inference, cache/power models, ...) after the results",
    )
    run.add_argument(
        "--profile-out",
        help="also save the profile as JSON for `repro profile-report`",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the gain table",
    )

    experiment = commands.add_parser(
        "experiment", help="run a figure/table driver"
    )
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock deadline in seconds (the driver runs under "
        "the suite runner's watchdog)",
    )
    experiment.add_argument(
        "--json",
        action="store_true",
        help="emit the driver's result dict as JSON",
    )

    trace = commands.add_parser(
        "trace", help="record a SparseAdapt run as a JSONL trace"
    )
    trace.add_argument(
        "--kernel",
        choices=("spmspm", "spmspv", "bfs", "sssp"),
        default="spmspv",
    )
    trace.add_argument("--matrix", default="R03", help="Table-5 id (e.g. R03)")
    trace.add_argument("--scale", type=float, default=0.3)
    trace.add_argument("--mode", choices=sorted(_MODES), default="ee")
    trace.add_argument("--model", help="trained model JSON (default: stock)")
    trace.add_argument(
        "--bandwidth", type=float, default=1.0, help="off-chip GB/s"
    )
    trace.add_argument(
        "--noise",
        type=float,
        default=0.0,
        help="telemetry noise sigma (robustness runs)",
    )
    trace.add_argument(
        "--noise-seed",
        type=int,
        default=0,
        help="RNG seed of the telemetry noise stream (recorded in the trace)",
    )
    trace.add_argument(
        "--faults",
        help="fault schedule JSON (see docs/robustness.md); the "
        "injected and detected faults are recorded in the trace",
    )
    trace.add_argument(
        "--no-hardening",
        action="store_true",
        help="run the fault-injected controller without the hardened "
        "sanitize/read-back/safe-mode layer",
    )
    trace.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock deadline in seconds (the recorded run "
        "executes under the suite runner's watchdog)",
    )
    trace.add_argument(
        "--trace-out", required=True, help="output JSONL trace path"
    )

    report = commands.add_parser(
        "trace-report", help="summarize a recorded JSONL trace"
    )
    report.add_argument("path", help="trace file written by `repro trace`")
    report.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many most-expensive epochs to list",
    )
    report.add_argument(
        "--timeline-rows",
        type=int,
        default=64,
        help="max epoch-timeline rows before eliding the middle",
    )

    explain = commands.add_parser(
        "explain",
        help="explain the recorded reconfiguration decisions of a trace",
    )
    explain.add_argument("path", help="trace file written by `repro trace`")
    explain.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="explain one epoch (default: every epoch proposing a change)",
    )
    explain.add_argument(
        "--param",
        default=None,
        help="restrict to one runtime parameter (e.g. l1_kb)",
    )
    explain.add_argument(
        "--counters",
        action="store_true",
        help="also print the counter values the model read",
    )
    explain.add_argument(
        "--against",
        metavar="OTHER",
        default=None,
        help="second trace: explain both runs' decisions at their "
        "first divergence epoch instead (exits 3 when they diverge, "
        "0 when identical)",
    )

    diff = commands.add_parser(
        "diff", help="compare two recorded traces epoch-by-epoch"
    )
    diff.add_argument("path_a", help="reference trace")
    diff.add_argument("path_b", help="trace to compare against the reference")
    diff.add_argument(
        "--timeline-rows",
        type=int,
        default=24,
        help="max divergence-timeline rows before eliding the tail",
    )
    diff.add_argument(
        "--json",
        action="store_true",
        help="emit the structured diff as JSON instead of the report",
    )

    compare = commands.add_parser(
        "compare",
        help="compare candidates side-by-side from a spec's ledger "
        "(or legacy campaign ledgers)",
    )
    compare.add_argument(
        "target",
        help="experiment spec file (JSON/TOML), or a run ledger",
    )
    compare.add_argument(
        "ledgers",
        nargs="*",
        help="run ledger(s): exactly one when TARGET is a spec; "
        "optional extra ledgers when TARGET is itself a ledger",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        help="baseline candidate for geomeans and gates "
        "(default: the spec's baseline, or the first candidate)",
    )
    compare.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric override "
        "(default: the spec's metric list)",
    )
    compare.add_argument(
        "--no-gates",
        action="store_true",
        help="skip the spec's regression gates (never exit 3)",
    )
    compare.add_argument(
        "--drill-down",
        metavar="CANDIDATE@WORKLOAD",
        default=None,
        help="re-run this candidate against the baseline on one "
        "workload with tracing and print the first-divergence trace "
        "diff (spec targets only; both must be adaptive)",
    )
    compare.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the --drill-down re-runs",
    )
    compare.add_argument(
        "--timeline-rows",
        type=int,
        default=24,
        help="max --drill-down divergence-timeline rows",
    )
    compare.add_argument(
        "--svg-dir",
        help="write one self-contained grouped-bar SVG per metric "
        "into this directory",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison (and gate results) as JSON",
    )
    compare.add_argument(
        "--out",
        help="also write the comparison JSON to this path (atomically)",
    )

    faults = commands.add_parser(
        "faults", help="run a fault-injection campaign"
    )
    faults.add_argument(
        "spec",
        nargs="?",
        help="fault schedule JSON file (omit when using --mixed)",
    )
    faults.add_argument(
        "--mixed",
        type=float,
        default=None,
        metavar="RATE",
        help="use the built-in all-kinds schedule at this base rate "
        "instead of a spec file",
    )
    faults.add_argument(
        "--seed", type=int, default=0, help="schedule seed for --mixed"
    )
    faults.add_argument(
        "--rates",
        default="0,0.5,1",
        help="comma-separated rate scale factors to sweep "
        "(multipliers on the schedule's fire rates)",
    )
    faults.add_argument(
        "--kernel",
        choices=("spmspm", "spmspv", "bfs", "sssp"),
        default="spmspv",
    )
    faults.add_argument("--matrix", default="P3", help="Table-5 id")
    faults.add_argument("--scale", type=float, default=0.3)
    faults.add_argument("--mode", choices=sorted(_MODES), default="ee")
    faults.add_argument(
        "--no-unhardened",
        action="store_true",
        help="skip the unhardened comparison runs",
    )
    faults.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-rate-job wall-clock deadline in seconds",
    )
    faults.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per rate job for retryable failures",
    )
    faults.add_argument(
        "--json",
        action="store_true",
        help="emit the campaign result as JSON instead of the table",
    )
    faults.add_argument(
        "--out", help="also write the campaign result JSON to this path"
    )

    suite_run = commands.add_parser(
        "suite-run",
        help="run a supervised, resumable campaign from a plan",
    )
    suite_run.add_argument(
        "plan",
        nargs="?",
        help="campaign plan JSON file (omit for the built-in Table-5 plan)",
    )
    suite_run.add_argument(
        "--spec",
        help="experiment spec file (JSON/TOML) to compile into the "
        "campaign plan (mutually exclusive with a plan file); "
        "inspect the results with `repro compare SPEC LEDGER`",
    )
    suite_run.add_argument(
        "--scale",
        type=float,
        default=0.3,
        help="problem scale of the built-in plan (ignored with a plan file)",
    )
    suite_run.add_argument(
        "--mode",
        choices=sorted(_MODES),
        default="ee",
        help="optimization mode of the built-in plan "
        "(ignored with a plan file)",
    )
    suite_run.add_argument(
        "--ledger",
        help="durable JSONL run ledger; arms checkpointing and --resume",
    )
    suite_run.add_argument(
        "--store",
        metavar="DIR",
        help="register the plan in a shared experiment store at DIR "
        "(creating or attaching) and run as one store worker; other "
        "hosts join with `repro worker --store DIR` "
        "(mutually exclusive with --ledger/--resume/--workers)",
    )
    suite_run.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous run from --ledger "
        "(completed jobs replay from the ledger)",
    )
    suite_run.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock deadline in seconds "
        "(jobs may override via their deadline_s)",
    )
    suite_run.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per job for retryable failures (incl. timeouts)",
    )
    suite_run.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="first retry backoff sleep in seconds (doubles per retry)",
    )
    suite_run.add_argument(
        "--seed", type=int, default=0, help="seed of the retry-jitter streams"
    )
    suite_run.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after this many newly executed jobs, leaving the "
        "ledger resumable (campaign sharding, CI smoke)",
    )
    suite_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard pending jobs across "
        "(default 1 = in-process; results are byte-identical "
        "at any count)",
    )
    suite_run.add_argument(
        "--faults",
        help="fault schedule JSON; its job_hang/job_crash/job_oom kinds "
        "are applied per job attempt (see docs/robustness.md)",
    )
    suite_run.add_argument(
        "--profile",
        action="store_true",
        help="profile the campaign (workers export their span trees "
        "to the parent) and print the attribution report",
    )
    suite_run.add_argument(
        "--profile-out",
        help="also save the profile as JSON for `repro profile-report`",
    )
    suite_run.add_argument(
        "--metrics-out",
        help="write the campaign's final metrics in OpenMetrics text "
        "format to this path (atomically)",
    )
    suite_run.add_argument(
        "--json",
        action="store_true",
        help="emit the suite report as JSON instead of the table",
    )
    suite_run.add_argument(
        "--out",
        help="also write the suite report JSON to this path (atomically)",
    )

    suite_report = commands.add_parser(
        "suite-report",
        help="summarize or diff past campaign ledgers without re-running",
    )
    suite_report.add_argument(
        "ledger",
        help="run ledger (or worker shard) JSONL file to summarize",
    )
    suite_report.add_argument(
        "--diff",
        metavar="OTHER",
        help="second ledger: diff terminal rows (stable view, "
        "wall-clock stripped) instead of summarizing",
    )
    suite_report.add_argument(
        "--json",
        action="store_true",
        help="emit the summary/diff as JSON instead of text",
    )

    worker = commands.add_parser(
        "worker",
        help="join a shared experiment store as one campaign worker",
    )
    worker.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="experiment store directory (registered by "
        "`repro suite-run --store DIR` on any participating host)",
    )
    worker.add_argument(
        "--owner",
        default=None,
        help="lease owner id recorded on every claim "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="lease time-to-live in seconds; a worker silent for this "
        "long forfeits its claim to any survivor (default 30)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.25,
        help="seconds between scans when no open job is claimable",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after publishing this many jobs, leaving the rest "
        "to other workers",
    )
    worker.add_argument(
        "--wait",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wait up to this long for the store registration to "
        "appear (workers launched before the coordinator)",
    )
    worker.add_argument(
        "--no-finalize",
        action="store_true",
        help="never merge the canonical ledger, even when this worker "
        "observes convergence (leave it to the coordinator)",
    )
    worker.add_argument(
        "--json",
        action="store_true",
        help="emit the worker summary as JSON instead of one line",
    )

    ledger_compact = commands.add_parser(
        "ledger-compact",
        help="rewrite a ledger to terminal records + checksum trailer",
    )
    ledger_compact.add_argument(
        "ledger",
        help="run ledger JSONL file to compact (or verify with --check)",
    )
    ledger_compact.add_argument(
        "--out",
        help="write the compacted ledger here instead of replacing "
        "the input in place",
    )
    ledger_compact.add_argument(
        "--check",
        action="store_true",
        help="verify the ledger's checksum trailer instead of "
        "compacting (exit 1 when missing or corrupt)",
    )
    ledger_compact.add_argument(
        "--json",
        action="store_true",
        help="emit the compaction/verification stats as JSON",
    )

    fsck = commands.add_parser(
        "fsck",
        help="scan (and --repair) an experiment store or ledger for "
        "storage damage",
    )
    fsck.add_argument(
        "target",
        help="experiment store directory (holding store.json) or a "
        "run-ledger JSONL file",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="apply repairs: quarantine corrupt result groups back to "
        "open, scavenge tmp residue, drop dead leases, rewrite or "
        "rebuild damaged ledgers (assumes no worker is active)",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the fsck report as JSON",
    )

    top = commands.add_parser(
        "top",
        help="watch a running campaign live through its ledger",
    )
    top.add_argument(
        "ledger",
        help="run ledger of the campaign to watch (shards are found "
        "next to it)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit instead of refreshing",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh interval in seconds",
    )
    top.add_argument(
        "--straggler-threshold",
        type=float,
        default=30.0,
        help="heartbeat age in seconds after which a runner is "
        "flagged as a straggler (dead at 4x)",
    )
    top.add_argument(
        "--metrics-out",
        help="write each snapshot as OpenMetrics text to this path "
        "(atomically; scrape-friendly)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit one snapshot as JSON and exit (implies --once)",
    )

    profile_report = commands.add_parser(
        "profile-report",
        help="render a profile saved by run/suite-run --profile-out",
    )
    profile_report.add_argument(
        "path", help="profile JSON written by --profile-out"
    )
    profile_report.add_argument(
        "--top",
        type=int,
        default=None,
        help="limit the component table to the N hottest components",
    )
    profile_report.add_argument(
        "--collapsed",
        action="store_true",
        help="emit collapsed-stack flamegraph text instead of the "
        "report (pipe into any flamegraph tool)",
    )
    profile_report.add_argument(
        "--json",
        action="store_true",
        help="emit the raw profile dict as JSON",
    )

    return parser


# ---------------------------------------------------------------------------
def _fault_setup(args):
    """Resolve the shared ``--noise``/``--faults`` arguments.

    Returns ``(faults, hardening)`` for the controller, or raises
    :class:`~repro.errors.FaultError` (one-line error, exit 1) for
    negative rates, conflicting flags, and unreadable/malformed spec
    files — the CLI boundary validates before any model is trained.
    """
    from repro.core.hardening import HardeningConfig
    from repro.errors import FaultError
    from repro.faults import FaultSchedule, noise_schedule

    noise = getattr(args, "noise", 0.0)
    if noise < 0:
        raise FaultError(f"--noise must be non-negative, got {noise:g}")
    if noise > 0 and args.faults:
        raise FaultError("pass either --noise or --faults, not both")
    if args.faults:
        schedule = FaultSchedule.from_file(args.faults)
        hardening = (
            HardeningConfig.disabled() if args.no_hardening else None
        )
        return schedule, hardening
    if noise > 0:
        # Legacy noise as its fault-schedule equivalent (bit-identical
        # stream, hardening off — the historical behaviour).
        return (
            noise_schedule(noise, getattr(args, "noise_seed", 0)),
            HardeningConfig.disabled(),
        )
    return None, None


def _mode(label: str):
    from repro.core.modes import OptimizationMode

    return (
        OptimizationMode.ENERGY_EFFICIENT
        if label == "ee"
        else OptimizationMode.POWER_PERFORMANCE
    )


def _command_info() -> int:
    from repro.baselines import static_configs_for
    from repro.transmuter import TransmuterModel, runtime_space, space_size

    machine = TransmuterModel()
    print(f"repro {__version__} - SparseAdapt reproduction")
    print(f"default machine: {machine.describe()}")
    print(
        f"configuration space: {space_size()} points "
        f"({len(runtime_space('cache'))} runtime-reachable for L1 cache, "
        f"{len(runtime_space('spm'))} for L1 SPM)"
    )
    print("\nTable-4 static configurations:")
    for l1_type in ("cache", "spm"):
        for name, config in static_configs_for(l1_type).items():
            print(f"  [{l1_type}] {name:9s} {config.describe()}")
    return 0


def _command_suite() -> int:
    from repro.sparse import suite

    print(f"{'id':4} {'name':24} {'dim':>7} {'nnz':>8}  domain / stand-in")
    for matrix_id, spec in suite.SUITE.items():
        print(
            f"{matrix_id:4} {spec.name:24} {spec.dimension:>7} "
            f"{spec.nnz:>8}  {spec.domain} / {spec.structure}"
        )
    return 0


def _command_train(args) -> int:
    from repro.core import save_model, train_default_model

    model = train_default_model(
        _mode(args.mode),
        kernel=args.kernel,
        l1_type=args.l1_type,
        quick=not args.full,
    )
    save_model(model, args.out)
    print(f"model saved to {args.out}")
    print(model.describe())
    return 0


def _emit_profile(profiler, args) -> None:
    """Print a just-captured profile (and save it with --profile-out)."""
    from repro.obs import profile as obs_profile

    data = profiler.as_dict()
    out = getattr(args, "profile_out", None)
    if out:
        obs_profile.save_profile(data, out)
    # With --json stdout must stay machine-parseable, so the human
    # report moves to stderr (the saved JSON is the machine channel).
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(file=stream)
    print(obs_profile.format_profile_report(data), end="", file=stream)
    if out:
        print(
            f"profile written to {out} (repro profile-report {out})",
            file=stream,
        )


def _command_run(args) -> int:
    from repro.obs import profile as obs_profile

    if not args.profile:
        return _run_single(args)
    with obs_profile.profiling() as profiler:
        code = _run_single(args)
    if code == 0:
        _emit_profile(profiler, args)
    return code


def _run_single(args) -> int:
    from repro.core import load_model
    from repro.experiments.harness import (
        STANDARD_SCHEMES,
        UPPER_BOUND_SCHEMES,
        EvaluationContext,
        build_trace,
        default_policy_for,
        evaluate_schemes,
        gains_over,
    )
    from repro.experiments.reporting import format_gain_table
    from repro.runner import Job, SuiteRunner, SupervisorConfig, job_key
    from repro.transmuter import TransmuterModel

    faults, hardening = _fault_setup(args)
    trace = build_trace(args.kernel, args.matrix, scale=args.scale)
    if not args.json:
        print(f"trace: {trace.name} ({trace.n_epochs} epochs)")
    schemes = (
        UPPER_BOUND_SCHEMES + ("Best Avg", "Max Cfg")
        if args.upper_bounds
        else STANDARD_SCHEMES
    )

    def evaluate() -> dict:
        model = load_model(args.model) if args.model else None
        context = EvaluationContext(
            trace=trace,
            machine=TransmuterModel(bandwidth_gbps=args.bandwidth),
            mode=_mode(args.mode),
            model=model,
            policy=default_policy_for(
                "spmspm" if args.kernel == "spmspm" else "spmspv"
            ),
            faults=faults,
            hardening=hardening,
        )
        results = evaluate_schemes(context, schemes)
        return {"results": results, "gains": gains_over(results)}

    # A single evaluation = a single-job campaign: the suite runner
    # supplies the --deadline watchdog (inline, zero threads, when no
    # deadline is set) and turns failures into structured rows.
    job = Job(
        key=job_key(
            {
                "type": "run",
                "kernel": args.kernel,
                "matrix": args.matrix,
                "scale": args.scale,
                "mode": args.mode,
            }
        ),
        label=f"run/{args.kernel}/{args.matrix}",
        fn=evaluate,
        index=0,
        deadline_s=args.deadline,
    )
    runner = SuiteRunner(config=SupervisorConfig(max_retries=0))
    report = runner.run([job], name=f"run-{args.kernel}-{args.matrix}")
    row = report.rows[0]
    if row["status"] != "ok":
        print(f"error: {row['failure']['error']}", file=sys.stderr)
        return 1
    results = row["result"]["results"]
    gains = row["result"]["gains"]
    if args.json:
        payload = {
            "kernel": args.kernel,
            "matrix": args.matrix,
            "scale": args.scale,
            "mode": _mode(args.mode).value,
            "bandwidth_gbps": args.bandwidth,
            "trace": {"name": trace.name, "n_epochs": trace.n_epochs},
            "schemes": {
                name: result.as_dict() for name, result in results.items()
            },
            "gains_over_baseline": gains,
        }
        if faults is not None:
            payload["faults"] = {
                "seed": faults.seed,
                "kinds": sorted(faults.kinds()),
                "n_specs": len(faults),
                "hardened": hardening is None or hardening.enabled,
            }
        print(json.dumps(_to_jsonable(payload), indent=2))
        return 0
    rows = {
        name: {
            "GFLOPS": values["gflops"],
            "GFLOPS/W": values["gflops_per_watt"],
            "perf x": values["perf_gain"],
            "eff x": values["efficiency_gain"],
        }
        for name, values in gains.items()
    }
    print(
        format_gain_table(
            f"{args.kernel} on {args.matrix} "
            f"({_mode(args.mode).value} mode, {args.bandwidth:g} GB/s)",
            rows,
            ("GFLOPS", "GFLOPS/W", "perf x", "eff x"),
            value_format="{:8.4f}",
        )
    )
    return 0


def _command_experiment(args) -> int:
    from repro.experiments import figures

    drivers = {
        "fig1": figures.figure1_motivation,
        "fig5": figures.figure5_spmspv_synthetic,
        "fig6": figures.figure6_spmspm_real,
        "fig7": figures.figure7_spmspv_real,
        "fig8": figures.figure8_upper_bounds,
        "fig9": figures.figure9_model_complexity,
        "fig10": figures.figure10_feature_importance,
        "fig11-policies": figures.figure11_policy_sweep,
        "fig11-bandwidth": figures.figure11_bandwidth_sweep,
        "fig12": figures.figure12_system_size,
        "tab6": figures.table6_graph_algorithms,
        "sec64": figures.section64_profileadapt,
        "sec7": figures.section7_regular_kernels,
    }
    driver = drivers[args.name]
    kwargs = {}
    if args.scale is not None and args.name not in (
        "fig1",
        "fig10",
        "sec7",
        "fig11-bandwidth",
    ):
        kwargs["scale"] = args.scale

    # One driver run = a single-job campaign: the suite runner supplies
    # the deadline watchdog and turns a failure into a structured row
    # (drivers are deterministic, so there is nothing to retry).
    from repro.runner import Job, SuiteRunner, SupervisorConfig, job_key

    job = Job(
        key=job_key({"type": "experiment", "name": args.name, **kwargs}),
        label=f"experiment/{args.name}",
        fn=lambda: driver(**kwargs),
        index=0,
        deadline_s=getattr(args, "deadline", None),
    )
    runner = SuiteRunner(config=SupervisorConfig(max_retries=0))
    report = runner.run([job], name=f"experiment-{args.name}")
    row = report.rows[0]
    if row["status"] != "ok":
        print(f"error: {row['failure']['error']}", file=sys.stderr)
        return 1
    result = row["result"]
    if getattr(args, "json", False):
        print(json.dumps(_to_jsonable(result), indent=2))
    else:
        _pretty_print(result)
    return 0


def _command_trace(args) -> int:
    from repro import obs
    from repro.core import load_model
    from repro.core.controller import SparseAdaptController
    from repro.core.training import train_default_model
    from repro.experiments.harness import build_trace, default_policy_for
    from repro.transmuter import TransmuterModel

    trace = build_trace(args.kernel, args.matrix, scale=args.scale)
    mode = _mode(args.mode)
    model_kernel = "spmspm" if args.kernel == "spmspm" else "spmspv"
    faults, hardening = _fault_setup(args)
    if args.faults:
        fault_kwargs = {"faults": faults, "hardening": hardening}
    else:
        # Legacy --noise stays on the telemetry_noise shim so existing
        # noise traces remain byte-identical (same stream, same records).
        fault_kwargs = {
            "telemetry_noise": args.noise,
            "noise_seed": args.noise_seed,
        }
    def record() -> dict:
        model = (
            load_model(args.model)
            if args.model
            else train_default_model(
                mode, kernel=model_kernel, l1_type="cache"
            )
        )
        controller = SparseAdaptController(
            model=model,
            machine=TransmuterModel(bandwidth_gbps=args.bandwidth),
            mode=mode,
            policy=default_policy_for(model_kernel),
            **fault_kwargs,
        )
        with obs.recording(args.trace_out) as recorder:
            schedule = controller.run(trace)
            emitted = recorder.n_emitted
        return {"schedule": schedule, "emitted": emitted}

    # Route the recorded run through the suite runner so --deadline
    # bounds it; every print below already happens after the run, so
    # the output is unchanged when no deadline is set.
    from repro.runner import Job, SuiteRunner, SupervisorConfig, job_key

    job = Job(
        key=job_key(
            {
                "type": "trace",
                "kernel": args.kernel,
                "matrix": args.matrix,
                "scale": args.scale,
                "mode": args.mode,
            }
        ),
        label=f"trace/{args.kernel}/{args.matrix}",
        fn=record,
        index=0,
        deadline_s=args.deadline,
    )
    runner = SuiteRunner(config=SupervisorConfig(max_retries=0))
    report = runner.run([job], name=f"trace-{args.kernel}-{args.matrix}")
    row = report.rows[0]
    if row["status"] != "ok":
        print(f"error: {row['failure']['error']}", file=sys.stderr)
        return 1
    schedule = row["result"]["schedule"]
    emitted = row["result"]["emitted"]
    print(
        f"trace: {trace.name} ({trace.n_epochs} epochs) -> "
        f"{args.trace_out} ({emitted} records)"
    )
    for key, value in schedule.summary().items():
        if isinstance(value, float):
            print(f"  {key}: {value:.4g}")
        else:
            print(f"  {key}: {value}")
    print(f"inspect with: repro trace-report {args.trace_out}")
    return 0


def _command_compare(args) -> int:
    from repro.errors import ConfigError
    from repro.experiments.spec import load_spec, looks_like_spec
    from repro.obs import compare as obs_compare
    from repro.obs.sinks import write_atomic

    spec = None
    if looks_like_spec(args.target):
        spec = load_spec(args.target)
        if len(args.ledgers) != 1:
            raise ConfigError(
                "a spec target needs exactly one ledger: "
                "repro compare SPEC LEDGER (run the spec first with "
                f"`repro suite-run --spec {args.target} --ledger ...`)"
            )
        ledger_paths = list(args.ledgers)
    else:
        ledger_paths = [args.target, *args.ledgers]

    if args.metrics is not None:
        metrics = tuple(
            token.strip()
            for token in args.metrics.split(",")
            if token.strip()
        )
        if not metrics:
            raise ConfigError("--metrics must name at least one metric")
    elif spec is not None:
        metrics = spec.metrics
    else:
        from repro.experiments.spec import DEFAULT_METRICS

        metrics = DEFAULT_METRICS

    rows: list = []
    header: dict = {}
    for path in ledger_paths:
        header, terminal = obs_compare.ledger_terminal_rows(path)
        if spec is not None:
            from repro.experiments.spec import compile_plan

            expected = compile_plan(spec).key()
            if header.get("plan_key") != expected:
                raise ConfigError(
                    f"ledger {path} was not produced by this spec "
                    f"(plan key {header.get('plan_key')!r}, spec "
                    f"compiles to {expected!r}); re-run with "
                    f"`repro suite-run --spec {args.target} "
                    f"--ledger {path}`"
                )
        rows.extend(terminal)

    samples = obs_compare.scrape_rows(rows, metrics)
    comparison = obs_compare.build_comparison(
        samples,
        metrics,
        baseline=args.baseline
        or (spec.baseline if spec is not None else None),
        candidates=spec.candidate_names() if spec is not None else None,
        workloads=spec.workload_names() if spec is not None else None,
        name=(
            spec.name
            if spec is not None
            # Legacy ledgers: the plan name, never the ledger path —
            # reports must not vary with where the ledger lives.
            else str(header.get("plan_name") or "comparison")
        ),
    )
    gate_results = None
    if spec is not None and not args.no_gates:
        gate_results = obs_compare.evaluate_gates(comparison, spec.gates)

    drill = None
    if args.drill_down is not None:
        if spec is None:
            raise ConfigError(
                "--drill-down re-runs candidates from a spec; the "
                "target must be a spec file, not a ledger"
            )
        candidate, separator, workload = args.drill_down.partition("@")
        if not separator or not candidate or not workload:
            raise ConfigError(
                "--drill-down takes CANDIDATE@WORKLOAD, got "
                f"{args.drill_down!r}"
            )
        drill = obs_compare.drill_down(
            spec,
            candidate,
            workload,
            seed=args.seed,
            reference=args.baseline,
        )

    payload = {"comparison": comparison, "gates": gate_results}
    if drill is not None:
        payload["drill_down"] = drill
    if args.out:
        write_atomic(
            args.out,
            json.dumps(_to_jsonable(payload), indent=2, sort_keys=True)
            + "\n",
        )
    if args.json:
        print(json.dumps(_to_jsonable(payload), indent=2, sort_keys=True))
    else:
        print(obs_compare.render_comparison(comparison, gate_results))
        if drill is not None:
            from repro.obs.diff import render_diff

            print()
            print(render_diff(drill, max_timeline_rows=args.timeline_rows))
        if args.out:
            print(f"comparison written to {args.out}")
    if args.svg_dir:
        written = obs_compare.write_figures(comparison, args.svg_dir)
        if not args.json:
            print(f"{len(written)} figure(s) written to {args.svg_dir}")

    violated = [
        result for result in gate_results or () if not result["passed"]
    ]
    if violated:
        print(
            f"gate violation: {len(violated)} of {len(gate_results)} "
            "gate(s) failed",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_faults(args) -> int:
    from repro.errors import FaultError
    from repro.faults import (
        FaultSchedule,
        format_campaign_table,
        mixed_schedule,
        run_campaign,
    )
    from repro.obs.sinks import write_atomic
    from repro.runner import SupervisorConfig

    if (args.spec is None) == (args.mixed is None):
        raise FaultError(
            "pass exactly one of a schedule spec file or --mixed RATE"
        )
    if args.mixed is not None:
        schedule = mixed_schedule(args.mixed, seed=args.seed)
    else:
        schedule = FaultSchedule.from_file(args.spec)
    try:
        rates = tuple(
            float(token) for token in args.rates.split(",") if token.strip()
        )
    except ValueError:
        raise FaultError(
            f"--rates must be comma-separated numbers, got {args.rates!r}"
        ) from None
    if not rates:
        raise FaultError("--rates must name at least one rate scale")

    result = run_campaign(
        schedule,
        rates=rates,
        kernel=args.kernel,
        matrix_id=args.matrix,
        scale=args.scale,
        mode=_mode(args.mode),
        include_unhardened=not args.no_unhardened,
        runner_config=SupervisorConfig(
            deadline_s=args.deadline, max_retries=args.max_retries
        ),
    )
    payload = _to_jsonable(result.as_dict())
    if args.out:
        write_atomic(
            args.out,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_campaign_table(result))
        if args.out:
            print(f"campaign result written to {args.out}")
    return 0


def _command_suite_run(args) -> int:
    from repro.errors import ConfigError
    from repro.faults import FaultSchedule
    from repro.obs.sinks import write_atomic
    from repro.runner import (
        CampaignPlan,
        SupervisorConfig,
        format_suite_table,
        run_plan,
        table5_plan,
    )

    if args.store and args.ledger:
        raise ConfigError(
            "--store keeps its own canonical ledger inside the store "
            "directory; pass either --store or --ledger, not both"
        )
    if args.store and args.resume:
        raise ConfigError(
            "--store campaigns resume themselves: re-running the same "
            "command (or any `repro worker --store`) continues from "
            "the published results; drop --resume"
        )
    if args.store and args.workers != 1:
        raise ConfigError(
            "--store parallelism comes from attaching more workers "
            "(`repro worker --store DIR`), not --workers; drop --workers"
        )
    if args.resume and not args.ledger:
        raise ConfigError(
            "--resume requires --ledger (the run ledger to continue)"
        )
    if args.max_jobs is not None and args.max_jobs < 1:
        raise ConfigError(
            f"--max-jobs must be at least 1, got {args.max_jobs}"
        )
    if args.workers < 1:
        raise ConfigError(
            f"--workers must be at least 1, got {args.workers}"
        )
    if args.plan and args.spec:
        raise ConfigError(
            "pass either a plan file or --spec, not both"
        )
    if args.spec:
        from repro.experiments.spec import compile_plan, load_spec

        spec = load_spec(args.spec)
        plan = compile_plan(spec)
        if not args.json:
            print(
                f"spec {spec.name!r}: {len(plan.jobs)} job(s) "
                f"({len(spec.candidates)} candidate(s) x "
                f"{len(spec.workloads)} workload(s) x "
                f"{len(spec.seeds)} seed(s)), plan key {plan.key()}"
            )
    elif args.plan:
        plan = CampaignPlan.from_file(args.plan)
    else:
        plan = table5_plan(scale=args.scale, mode=args.mode)
    if args.faults:
        schedule = FaultSchedule.from_file(args.faults)
        plan = CampaignPlan(name=plan.name, jobs=plan.jobs, faults=schedule)
    config = SupervisorConfig(
        deadline_s=args.deadline,
        max_retries=args.max_retries,
        backoff_base_s=args.backoff,
        seed=args.seed,
    )

    if args.store:
        return _suite_run_store(args, plan, config)

    def execute():
        return run_plan(
            plan,
            config=config,
            ledger_path=args.ledger,
            resume=args.resume,
            max_jobs=args.max_jobs,
            workers=args.workers,
        )

    profiler = None
    if args.profile:
        from repro.obs import profile as obs_profile

        # Workers see the "profile" flag in their payload, run their
        # own Profiler, and export their span tree back to the parent
        # for merging — so the report covers the whole campaign.
        with obs_profile.profiling() as profiler:
            report = execute()
    else:
        report = execute()
    payload = _to_jsonable(report.as_dict())
    if args.out:
        write_atomic(
            args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_suite_table(report))
        if args.out:
            print(f"suite report written to {args.out}")
    if profiler is not None:
        _emit_profile(profiler, args)
    if args.metrics_out:
        from repro.obs import live
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        if args.ledger:
            live.export_campaign_metrics(
                live.read_live(args.ledger), registry
            )
        else:
            # No ledger: no heartbeats survive anywhere, so publish the
            # campaign totals straight from the in-memory report.
            counts = report.counts()
            registry.gauge(
                "campaign.jobs.total", "Jobs in the campaign plan"
            ).set(len(report.rows))
            registry.gauge(
                "campaign.jobs.done", "Jobs finished ok"
            ).set(counts.get("ok", 0))
            registry.gauge(
                "campaign.jobs.failed", "Jobs failed or quarantined"
            ).set(
                counts.get("failed", 0) + counts.get("quarantined", 0)
            )
        write_atomic(args.metrics_out, registry.render_openmetrics())
        if not args.json:
            print(f"metrics written to {args.metrics_out}")
    if report.partial:
        hint = "; rerun with --resume to continue" if args.ledger else ""
        print(
            f"checkpoint: stopped after --max-jobs {args.max_jobs} "
            f"new jobs{hint}",
            file=sys.stderr,
        )
    return 0


def _suite_run_store(args, plan, config) -> int:
    """``suite-run --store``: register the plan and work it as one
    store worker (the coordinator leg of a multi-host campaign)."""
    from repro.obs.sinks import write_atomic
    from repro.runner import (
        ExperimentStore,
        format_suite_table,
        run_store_worker,
    )

    store = ExperimentStore.create_or_attach(
        args.store, plan=plan, config=config
    )
    if not args.json:
        print(
            f"store {store.root}: plan {store.plan_name!r} "
            f"({store.n_jobs} jobs, key {store.plan_key}) — "
            f"join with `repro worker --store {store.root}`"
        )
    summary = run_store_worker(store, max_jobs=args.max_jobs)
    report = store.report()
    payload = _to_jsonable({"report": report.as_dict(), "worker": summary})
    if args.out:
        write_atomic(
            args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_suite_table(report))
        if args.out:
            print(f"suite report written to {args.out}")
        print(
            f"store worker w{summary['worker']} ({summary['owner']}): "
            f"{summary['published']} job(s) published, "
            f"finalized={summary['finalized']}"
        )
    if not summary["complete"]:
        print(
            "checkpoint: store not yet converged "
            f"({len(store.open_entries())} open job(s)); any "
            "`repro worker --store` can finish it",
            file=sys.stderr,
        )
    return 0


def _command_worker(args) -> int:
    from repro.errors import ConfigError
    from repro.runner import (
        DEFAULT_LEASE_TTL_S,
        ExperimentStore,
        run_store_worker,
    )

    if args.wait < 0:
        raise ConfigError(f"--wait must be non-negative, got {args.wait:g}")
    ttl = DEFAULT_LEASE_TTL_S if args.lease_ttl is None else args.lease_ttl
    store = ExperimentStore.attach(args.store, wait_s=args.wait)
    summary = run_store_worker(
        store,
        owner=args.owner,
        lease_ttl_s=ttl,
        poll_s=args.poll,
        max_jobs=args.max_jobs,
        finalize=not args.no_finalize,
    )
    if args.json:
        print(json.dumps(_to_jsonable(summary), indent=2, sort_keys=True))
    else:
        print(
            f"worker w{summary['worker']} ({summary['owner']}): "
            f"{summary['published']} job(s) published "
            f"({summary['ok']} ok, {summary['failed']} failed) "
            f"in {summary['duration_s']:.2f}s — "
            f"store {'converged' if summary['complete'] else 'open'}"
            + (", ledger finalized" if summary["finalized"] else "")
        )
    return 0


def _command_ledger_compact(args) -> int:
    from repro.runner import compact_ledger, verify_trailer

    if args.check:
        result = verify_trailer(args.ledger)
        if args.json:
            print(json.dumps(_to_jsonable(result), indent=2, sort_keys=True))
        if not result["present"]:
            print(
                f"error: {args.ledger} has no checksum trailer "
                "(not a compacted ledger)",
                file=sys.stderr,
            )
            return 1
        if not result["ok"]:
            print(
                f"error: {args.ledger} trailer mismatch "
                f"(expected sha256 {result['expected']}, "
                f"recomputed {result['sha256']})",
                file=sys.stderr,
            )
            return 1
        if not args.json:
            print(
                f"{args.ledger}: trailer ok "
                f"({result['records']} records, sha256 {result['sha256']})"
            )
        return 0
    stats = compact_ledger(args.ledger, out=args.out)
    if args.json:
        print(json.dumps(_to_jsonable(stats), indent=2, sort_keys=True))
    else:
        dropped = sum(stats["dropped"].values())
        print(
            f"compacted {stats['path']} -> {stats['out']}: "
            f"{stats['records_before']} -> {stats['records_after']} "
            f"records ({stats['jobs']} jobs, {dropped} volatile/"
            f"superseded dropped, {stats['torn_lines']} torn), "
            f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
        )
        print(f"trailer sha256 {stats['sha256']}")
    return 0


def _command_fsck(args) -> int:
    from repro.runner.fsck import format_fsck_report, run_fsck

    report = run_fsck(args.target, repair=args.repair)
    if args.json:
        print(
            json.dumps(
                _to_jsonable(report.as_dict()), indent=2, sort_keys=True
            )
        )
    else:
        print(format_fsck_report(report))
    code = report.exit_code()
    if code == 3 and args.json:
        print(
            f"error: repairable damage in {args.target}; "
            "re-run with --repair",
            file=sys.stderr,
        )
    elif code == 1:
        print(
            f"error: unrepaired damage in {args.target}",
            file=sys.stderr,
        )
    return code


def _command_suite_report(args) -> int:
    from repro.runner.report import (
        diff_ledgers,
        format_ledger_diff,
        format_ledger_summary,
        summarize_ledger,
    )

    if args.diff:
        diff = diff_ledgers(args.ledger, args.diff)
        if args.json:
            print(json.dumps(_to_jsonable(diff), indent=2, sort_keys=True))
        else:
            print(format_ledger_diff(diff))
        return 0 if diff["identical"] else 3
    summary = summarize_ledger(args.ledger)
    if args.json:
        print(json.dumps(_to_jsonable(summary), indent=2, sort_keys=True))
    else:
        print(format_ledger_summary(summary))
    return 0


def _command_top(args) -> int:
    import time as time_module

    from repro.obs import live
    from repro.obs import metrics as obs_metrics
    from repro.obs.sinks import write_atomic

    def snapshot():
        status = live.read_live(
            args.ledger, straggler_after_s=args.straggler_threshold
        )
        if args.metrics_out:
            registry = obs_metrics.MetricsRegistry()
            live.export_campaign_metrics(status, registry)
            write_atomic(args.metrics_out, registry.render_openmetrics())
        return status

    if args.once or args.json:
        status = snapshot()
        if args.json:
            print(
                json.dumps(
                    _to_jsonable(status.as_dict()), indent=2, sort_keys=True
                )
            )
        else:
            print(live.render_top(status), end="")
        return 0
    while True:
        status = snapshot()
        # Full-screen refresh: clear, home, redraw.
        sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write(live.render_top(status))
        sys.stdout.flush()
        if status.complete:
            return 0
        time_module.sleep(args.interval)


def _command_profile_report(args) -> int:
    from repro.obs import profile as obs_profile

    try:
        data = obs_profile.load_profile(args.path)
    except FileNotFoundError:
        print(f"error: no such profile file: {args.path}", file=sys.stderr)
        return 1
    except IsADirectoryError:
        print(
            f"error: {args.path} is a directory, not a profile",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:  # malformed JSON or wrong schema
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 1
    if args.collapsed:
        sys.stdout.write(obs_profile.collapsed_stacks(data))
        return 0
    if args.json:
        print(json.dumps(_to_jsonable(data), indent=2, sort_keys=True))
        return 0
    print(obs_profile.format_profile_report(data, top=args.top), end="")
    return 0


def _load_trace_checked(path: str):
    """Load + schema-check a trace; ``None`` after a one-line stderr error.

    The single error path every trace-reading verb (``trace-report``,
    ``explain``, ``diff``) funnels through: missing file, malformed
    JSONL, and unsupported schema versions all print one line and make
    the caller exit 1 — never a traceback.
    """
    from repro.obs import report

    try:
        records = report.load_trace(path)
        report.check_schema(records, origin="trace")
    except FileNotFoundError:
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return None
    except IsADirectoryError:
        print(f"error: {path} is a directory, not a trace", file=sys.stderr)
        return None
    except ValueError as exc:  # malformed JSONL or bad schema version
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None
    return records


def _command_trace_report(args) -> int:
    from repro.obs import report

    records = _load_trace_checked(args.path)
    if records is None:
        return 1
    summary = report.summarize(records)
    print(
        report.render(
            summary, top=args.top, max_timeline_rows=args.timeline_rows
        )
    )
    return 0


def _command_explain(args) -> int:
    from repro.obs.explain import (
        render_divergence_explanation,
        render_explanation,
    )

    records = _load_trace_checked(args.path)
    if records is None:
        return 1
    if args.against:
        records_b = _load_trace_checked(args.against)
        if records_b is None:
            return 1
        try:
            text, first = render_divergence_explanation(
                records,
                records_b,
                label_a=args.path,
                label_b=args.against,
                parameter=args.param,
                show_counters=args.counters,
            )
        except ValueError as exc:  # no epochs / schema-1 config gaps
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(text)
        if first is None:
            return 0
        print(
            f"divergence: traces split at epoch {first}",
            file=sys.stderr,
        )
        return 3
    try:
        print(
            render_explanation(
                records,
                epoch=args.epoch,
                parameter=args.param,
                show_counters=args.counters,
            )
        )
    except ValueError as exc:  # no/filtered-out provenance records
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 1
    return 0


def _command_diff(args) -> int:
    from repro.obs.diff import diff_traces, render_diff

    records_a = _load_trace_checked(args.path_a)
    if records_a is None:
        return 1
    records_b = _load_trace_checked(args.path_b)
    if records_b is None:
        return 1
    try:
        diff = diff_traces(
            records_a, records_b, label_a=args.path_a, label_b=args.path_b
        )
    except ValueError as exc:  # no epochs / schema-1 config gaps
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(_to_jsonable(diff), indent=2))
    else:
        print(render_diff(diff, max_timeline_rows=args.timeline_rows))
    first = diff["first_divergence_epoch"]
    if first is None:
        return 0
    # Same contract as `suite-report --diff`: divergence exits 3 so
    # reproducibility checks can assert without parsing the report.
    print(
        "divergence: first at epoch {} ({} of {} compared epochs "
        "differ)".format(
            first,
            diff["divergence"]["n_divergent_epochs"],
            diff["n_compared"],
        ),
        file=sys.stderr,
    )
    return 3


def _to_jsonable(value):
    """Recursively coerce a result structure into JSON-native types."""
    if isinstance(value, dict):
        return {str(key): _to_jsonable(nested) for key, nested in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _to_jsonable(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)  # numpy arrays
    if callable(tolist):
        return _to_jsonable(tolist())
    return str(value)


def _pretty_print(value, indent: int = 0) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        for key, nested in value.items():
            if isinstance(nested, dict):
                print(f"{pad}{key}:")
                _pretty_print(nested, indent + 1)
            elif isinstance(nested, float):
                print(f"{pad}{key}: {nested:.4g}")
            elif isinstance(nested, list) and len(nested) > 8:
                print(f"{pad}{key}: [{len(nested)} values]")
            else:
                print(f"{pad}{key}: {nested}")
    else:
        print(f"{pad}{value}")


def _flush_trace_sinks() -> None:
    """Best-effort close of a recorder left installed by an interrupted
    command, so the trace on disk ends on a complete record. (The
    ``obs.recording`` context manager already restores and closes on
    the way out; this covers recorders installed without it.)"""
    from repro import obs

    recorder = obs.get_recorder()
    if getattr(recorder, "enabled", False):
        try:
            obs.install(None)
            recorder.close()
        except Exception:  # noqa: BLE001 - interrupt path, flush only
            pass


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    if getattr(args, "no_fastpath", False):
        import os

        from repro import fastpath

        # The env var makes spawned worker processes inherit the
        # choice; set_enabled covers this process (and forked workers).
        os.environ["REPRO_FASTPATH"] = "0"
        fastpath.set_enabled(False)
    handlers = {
        "info": lambda: _command_info(),
        "suite": lambda: _command_suite(),
        "train": lambda: _command_train(args),
        "run": lambda: _command_run(args),
        "experiment": lambda: _command_experiment(args),
        "trace": lambda: _command_trace(args),
        "trace-report": lambda: _command_trace_report(args),
        "explain": lambda: _command_explain(args),
        "diff": lambda: _command_diff(args),
        "compare": lambda: _command_compare(args),
        "faults": lambda: _command_faults(args),
        "suite-run": lambda: _command_suite_run(args),
        "worker": lambda: _command_worker(args),
        "ledger-compact": lambda: _command_ledger_compact(args),
        "fsck": lambda: _command_fsck(args),
        "suite-report": lambda: _command_suite_report(args),
        "top": lambda: _command_top(args),
        "profile-report": lambda: _command_profile_report(args),
    }
    try:
        return handlers[args.command]()
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    except KeyboardInterrupt as exc:
        # Ctrl-C: flush open sinks, one line, exit 130. A campaign
        # interrupt carries a resume hint (the ledger was checkpointed
        # before we got here).
        _flush_trace_sinks()
        hint = getattr(exc, "resume_hint", None)
        print(
            f"interrupted: {hint or 'stopped before completion'}",
            file=sys.stderr,
        )
        return 130
    except ReproError as exc:
        # Every library failure surfaces as one line, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
