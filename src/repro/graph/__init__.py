"""Graph algorithms as iterative SpMSpV vertex programs.

Public API::

    from repro.graph import bfs, sssp, BFSResult, SSSPResult, teps_per_watt
"""

from repro.graph.bfs import BFSResult, bfs
from repro.graph.components import ComponentsResult, connected_components
from repro.graph.metrics import teps, teps_per_watt
from repro.graph.pagerank import PageRankResult, pagerank
from repro.graph.sssp import SSSPResult, sssp

__all__ = [
    "bfs",
    "BFSResult",
    "sssp",
    "SSSPResult",
    "pagerank",
    "PageRankResult",
    "connected_components",
    "ComponentsResult",
    "teps",
    "teps_per_watt",
]
