"""Connected components via label-propagation SpMSpV iterations.

Each round propagates the minimum component label along edges — a
(min, select) semiring product — with the frontier holding only
vertices whose label just changed, matching the GraphBLAS formulation
the paper's framework targets. The graph is treated as undirected
(labels flow both ways across an edge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPV_EPOCH_FP_OPS, KernelTrace
from repro.kernels.spmspv import trace_spmspv
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.vector import SparseVector

__all__ = ["ComponentsResult", "connected_components"]


@dataclass
class ComponentsResult:
    """Output of a traced connected-components run."""

    labels: np.ndarray  # component id = minimum vertex id in component
    n_components: int
    n_iterations: int
    trace: KernelTrace


def connected_components(
    adjacency_csc: CSCMatrix,
    epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
    max_iterations: int = 0,
) -> ComponentsResult:
    """Label-propagation connected components over an adjacency matrix."""
    n_rows, n_cols = adjacency_csc.shape
    if n_rows != n_cols:
        raise ShapeError("components need a square adjacency matrix")
    n = n_cols
    max_iterations = max_iterations or n

    # Undirected view: out-neighbours plus in-neighbours.
    csr: CSRMatrix = adjacency_csc.to_csr()
    labels = np.arange(n, dtype=np.float64)
    frontier_ids = np.arange(n, dtype=np.int64)
    epochs = []
    iteration = 0
    while frontier_ids.size and iteration < max_iterations:
        iteration += 1
        frontier = SparseVector(
            frontier_ids, labels[frontier_ids] + 1.0, n  # +1: keep nnz
        )
        step = trace_spmspv(
            adjacency_csc, frontier, epoch_fp_ops, name=f"cc-iter{iteration}"
        )
        epochs.extend(step.epochs)

        # Exact propagation (both edge directions).
        candidate = labels.copy()
        for v in frontier_ids:
            label_v = labels[v]
            out_rows, _ = adjacency_csc.col(int(v))
            if out_rows.size:
                np.minimum.at(candidate, out_rows, label_v)
            in_cols, _ = csr.row(int(v))
            if in_cols.size:
                np.minimum.at(candidate, in_cols, label_v)
        # Also pull: a frontier vertex may adopt a smaller neighbour label.
        for v in frontier_ids:
            out_rows, _ = adjacency_csc.col(int(v))
            in_cols, _ = csr.row(int(v))
            neighbours = np.concatenate([out_rows, in_cols])
            if neighbours.size:
                candidate[v] = min(
                    candidate[v], labels[neighbours].min()
                )
        changed = np.nonzero(candidate < labels)[0]
        labels = candidate
        frontier_ids = changed

    unique_labels = np.unique(labels)
    trace = KernelTrace(
        name="connected-components",
        epochs=epochs,
        info={
            "iterations": float(iteration),
            "components": float(unique_labels.size),
        },
    )
    return ComponentsResult(
        labels=labels.astype(np.int64),
        n_components=int(unique_labels.size),
        n_iterations=iteration,
        trace=trace,
    )
