"""Graph-workload metrics (TEPS and TEPS per watt, paper Table 6)."""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["teps", "teps_per_watt"]


def teps(edges_traversed: float, elapsed_s: float) -> float:
    """Traversed edges per second."""
    if elapsed_s <= 0:
        raise SimulationError("elapsed time must be positive")
    if edges_traversed < 0:
        raise SimulationError("edge count must be non-negative")
    return edges_traversed / elapsed_s


def teps_per_watt(
    edges_traversed: float, elapsed_s: float, energy_j: float
) -> float:
    """Traversed edges per second per watt (= edges / energy)."""
    if energy_j <= 0:
        raise SimulationError("energy must be positive")
    return teps(edges_traversed, elapsed_s) / (energy_j / elapsed_s)
