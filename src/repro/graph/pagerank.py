"""PageRank as iterated SpMV over the column-normalized adjacency.

The paper motivates SparseAdapt with graph analytics expressed in
sparse linear algebra (GraphBLAS); PageRank is the canonical such
workload beyond BFS/SSSP: each power iteration is one sparse
matrix-vector product against an (eventually dense) rank vector, so the
trace starts SpMSpV-like and converges to a dense-vector regime — a
slow implicit phase drift over iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPV_EPOCH_FP_OPS, KernelTrace
from repro.kernels.spmspv import trace_spmspv
from repro.sparse.csc import CSCMatrix
from repro.sparse.vector import SparseVector

__all__ = ["PageRankResult", "pagerank"]


@dataclass
class PageRankResult:
    """Output of a traced PageRank run."""

    ranks: np.ndarray
    n_iterations: int
    converged: bool
    trace: KernelTrace

    def top(self, count: int = 10) -> np.ndarray:
        """Vertex ids of the highest-ranked vertices."""
        return np.argsort(self.ranks)[::-1][:count]


def pagerank(
    adjacency_csc: CSCMatrix,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 100,
    epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
    trace_iterations: Optional[int] = 3,
) -> PageRankResult:
    """Run PageRank; trace the SpMV workload of the first iterations.

    ``adjacency_csc.col(v)`` lists the out-neighbours of ``v``. Dangling
    vertices distribute uniformly. Tracing every iteration of a long
    power-method run is redundant (they converge to identical epochs),
    so only ``trace_iterations`` are traced (None = all).
    """
    n_rows, n_cols = adjacency_csc.shape
    if n_rows != n_cols:
        raise ShapeError("PageRank needs a square adjacency matrix")
    if not 0.0 < damping < 1.0:
        raise ShapeError("damping must be in (0, 1)")
    n = n_cols
    out_degree = adjacency_csc.col_lengths().astype(np.float64)
    dangling = out_degree == 0

    ranks = np.full(n, 1.0 / n)
    epochs = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Trace the SpMV of this iteration (the rank vector is dense
        # after the first iteration, carried as a full sparse vector).
        if trace_iterations is None or iteration <= trace_iterations:
            contribution = np.where(dangling, 0.0, ranks / np.maximum(out_degree, 1.0))
            step = trace_spmspv(
                adjacency_csc,
                SparseVector.from_dense(contribution),
                epoch_fp_ops,
                name=f"pagerank-iter{iteration}",
            )
            epochs.extend(step.epochs)

        # Exact update.
        spread = np.zeros(n)
        weights = np.where(dangling, 0.0, ranks / np.maximum(out_degree, 1.0))
        for v in range(n):
            if weights[v] == 0.0:
                continue
            rows, _ = adjacency_csc.col(v)
            spread[rows] += weights[v]
        dangling_mass = ranks[dangling].sum() / n
        new_ranks = (1.0 - damping) / n + damping * (spread + dangling_mass)
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta < tolerance:
            converged = True
            break

    trace = KernelTrace(
        name="pagerank",
        epochs=epochs,
        info={
            "iterations": float(iteration),
            "converged": float(converged),
            "traced_iterations": float(
                iteration
                if trace_iterations is None
                else min(iteration, trace_iterations)
            ),
        },
    )
    return PageRankResult(
        ranks=ranks,
        n_iterations=iteration,
        converged=converged,
        trace=trace,
    )
