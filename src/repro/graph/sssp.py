"""Single-source shortest paths as iterative SpMSpV (Bellman-Ford style).

Each relaxation round is one SpMSpV over the (min, +) tropical
semiring: ``candidate = min(distance, A^T min.+ frontier)``. The
frontier carries only vertices whose distance improved, matching the
GraphMat vertex-program formulation the paper uses. Edge weights are
the stored matrix values (taken as positive lengths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPV_EPOCH_FP_OPS, KernelTrace
from repro.kernels.spmspv import trace_spmspv
from repro.sparse.csc import CSCMatrix
from repro.sparse.vector import SparseVector

__all__ = ["SSSPResult", "sssp"]


@dataclass
class SSSPResult:
    """Output of a traced SSSP run."""

    distances: np.ndarray  # np.inf for unreachable vertices
    n_iterations: int
    edges_relaxed: int
    trace: KernelTrace

    @property
    def reached(self) -> int:
        return int(np.count_nonzero(np.isfinite(self.distances)))


def sssp(
    adjacency_csc: CSCMatrix,
    source: int = 0,
    epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
    max_iterations: Optional[int] = None,
) -> SSSPResult:
    """Run SSSP from ``source``; edge weights are |stored values|."""
    n_rows, n_cols = adjacency_csc.shape
    if n_rows != n_cols:
        raise ShapeError("SSSP needs a square adjacency matrix")
    if not 0 <= source < n_cols:
        raise ShapeError(f"source {source} out of range")
    max_iterations = max_iterations or n_cols

    distances = np.full(n_cols, np.inf)
    distances[source] = 0.0
    frontier = SparseVector(
        np.array([source], dtype=np.int64), np.array([0.0]), n_cols
    )
    col_lengths = adjacency_csc.col_lengths()
    epochs = []
    edges = 0
    iteration = 0
    while frontier.nnz and iteration < max_iterations:
        frontier_edges = int(col_lengths[frontier.indices].sum())
        if frontier_edges == 0:
            break  # frontier vertices have no out-edges: nothing to relax
        iteration += 1
        edges += frontier_edges
        step = trace_spmspv(
            adjacency_csc, frontier, epoch_fp_ops, name=f"sssp-iter{iteration}"
        )
        epochs.extend(step.epochs)
        # Exact tropical relaxation for the next frontier.
        candidate = distances.copy()
        for v, dist_v in zip(frontier.indices, frontier.values):
            rows, weights = adjacency_csc.col(int(v))
            if rows.size == 0:
                continue
            np.minimum.at(candidate, rows, dist_v + np.abs(weights))
        improved = np.nonzero(candidate < distances)[0]
        distances = candidate
        frontier = SparseVector(improved, distances[improved], n_cols)
    trace = KernelTrace(
        name="sssp",
        epochs=epochs,
        info={
            "iterations": float(iteration),
            "edges_relaxed": float(edges),
            "reached": float(np.count_nonzero(np.isfinite(distances))),
        },
    )
    return SSSPResult(
        distances=distances,
        n_iterations=iteration,
        edges_relaxed=edges,
        trace=trace,
    )
