"""Breadth-first search as iterative SpMSpV (GraphMat style).

The paper maps vertex programs to iterative SpMSpV operations "similar
to GraphMat" (Section 6.1.3). Each BFS level is one SpMSpV over the
boolean semiring: ``next = (A^T and frontier) and not visited``. The
algorithm genuinely executes (levels are computed and returned) while
each iteration contributes its SpMSpV epochs to the workload trace, so
frontier growth and collapse show up as implicit phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels.base import SPMSPV_EPOCH_FP_OPS, KernelTrace
from repro.kernels.spmspv import trace_spmspv
from repro.sparse.csc import CSCMatrix
from repro.sparse.vector import SparseVector

__all__ = ["BFSResult", "bfs"]


@dataclass
class BFSResult:
    """Output of a traced BFS run."""

    levels: np.ndarray  # -1 for unreachable vertices
    n_iterations: int
    edges_traversed: int
    trace: KernelTrace

    @property
    def reached(self) -> int:
        return int(np.count_nonzero(self.levels >= 0))


def bfs(
    adjacency_csc: CSCMatrix,
    source: int = 0,
    epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
    max_iterations: Optional[int] = None,
) -> BFSResult:
    """Run BFS from ``source`` over a (square) adjacency matrix.

    The matrix is interpreted column-wise: ``adjacency_csc.col(v)``
    lists the out-neighbours of vertex ``v`` (CSC of A means the SpMSpV
    ``y = A @ frontier`` propagates along edges ``v -> row``).
    """
    n_rows, n_cols = adjacency_csc.shape
    if n_rows != n_cols:
        raise ShapeError("BFS needs a square adjacency matrix")
    if not 0 <= source < n_cols:
        raise ShapeError(f"source {source} out of range")
    max_iterations = max_iterations or n_cols

    levels = np.full(n_cols, -1, dtype=np.int64)
    levels[source] = 0
    frontier = SparseVector(
        np.array([source], dtype=np.int64), np.array([1.0]), n_cols
    )
    col_lengths = adjacency_csc.col_lengths()
    epochs = []
    edges = 0
    iteration = 0
    while frontier.nnz and iteration < max_iterations:
        frontier_edges = int(col_lengths[frontier.indices].sum())
        if frontier_edges == 0:
            break  # frontier vertices have no out-edges: nothing to relax
        iteration += 1
        edges += frontier_edges
        step = trace_spmspv(
            adjacency_csc, frontier, epoch_fp_ops, name=f"bfs-iter{iteration}"
        )
        epochs.extend(step.epochs)
        # Compute the next frontier exactly (boolean semiring + mask).
        reached = np.zeros(n_cols, dtype=bool)
        for v in frontier.indices:
            rows, _ = adjacency_csc.col(int(v))
            reached[rows] = True
        fresh = np.nonzero(reached & (levels < 0))[0]
        levels[fresh] = iteration
        frontier = SparseVector(
            fresh, np.ones(fresh.size), n_cols
        )
    trace = KernelTrace(
        name="bfs",
        epochs=epochs,
        info={
            "iterations": float(iteration),
            "edges_traversed": float(edges),
            "reached": float(np.count_nonzero(levels >= 0)),
        },
    )
    return BFSResult(
        levels=levels,
        n_iterations=iteration,
        edges_traversed=edges,
        trace=trace,
    )
