"""Declarative strategy-vs-strategy experiment specs.

An experiment spec is a small JSON (or TOML, on Python 3.11+) file
that names *candidates* — complete controller/baseline configurations:
a scheme plus optional policy, hardening switch, fault schedule, and
trained model — and *workloads* (kernel x matrix selections), a seed
list, and the metric set to compare them on::

    {
      "name": "policies",
      "baseline": "conservative",
      "metrics": ["efficiency_gain", "perf_gain"],
      "seeds": [0],
      "defaults": {"kernel": "spmspv", "scale": 0.3, "mode": "pp"},
      "candidates": [
        {"name": "conservative", "policy": "conservative"},
        {"name": "hybrid-40", "policy": "hybrid:0.4"},
        {"name": "best-avg", "scheme": "Best Avg"}
      ],
      "workloads": [
        {"matrix": "P3"},
        {"matrix": "R12"}
      ],
      "gates": [
        {"candidate": "hybrid-40", "metric": "efficiency_gain",
         "within_pct": 50}
      ]
    }

:func:`compile_plan` turns the cross product (workload-major:
workloads, then candidates, then seeds) into an ordinary
:class:`~repro.runner.plan.CampaignPlan` whose jobs carry their
candidate/workload/seed identity, so specs run through ``suite-run``'s
supervised, sharded, kill/resume-safe executor *unchanged* and land in
the same content-addressed ledger format. The comparison layer
(:mod:`repro.obs.compare`, ``repro compare``) scrapes the declared
metrics back out of the ledger and renders side-by-side reports.

Like plan and fault-schedule files, specs are strict: unknown keys are
rejected at every level, and cross-references (baseline candidate,
gate targets) are checked at load time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_METRICS",
    "CandidateSpec",
    "WorkloadSpec",
    "RegressionGate",
    "ExperimentSpec",
    "compile_plan",
    "load_spec",
    "looks_like_spec",
]

#: Metrics compared when the spec does not declare a list.
DEFAULT_METRICS: Tuple[str, ...] = ("efficiency_gain", "perf_gain")

_SPEC_KEYS = (
    "name",
    "description",
    "baseline",
    "metrics",
    "seeds",
    "defaults",
    "candidates",
    "workloads",
    "gates",
)
_CANDIDATE_KEYS = ("name", "scheme", "policy", "hardening", "faults", "model")
_WORKLOAD_KEYS = (
    "name",
    "kernel",
    "matrix",
    "scale",
    "mode",
    "l1_type",
    "bandwidth_gbps",
)
#: Workload fields the spec-level ``defaults`` object may set.
_WORKLOAD_DEFAULT_KEYS = tuple(
    key for key in _WORKLOAD_KEYS if key not in ("name", "matrix")
)
_GATE_KEYS = ("candidate", "metric", "within_pct", "of", "workload")


def _require_keys(raw: Mapping, known: Tuple[str, ...], what: str) -> None:
    if not isinstance(raw, Mapping):
        raise ConfigError(f"{what} must be an object, got {raw!r}")
    for key in raw:
        if key not in known:
            raise ConfigError(
                f"unknown {what} key {key!r} "
                f"(expected one of {', '.join(known)})"
            )


def _name_of(raw: Mapping, what: str, fallback: Optional[str] = None) -> str:
    name = raw.get("name", fallback)
    if not isinstance(name, str) or not name:
        raise ConfigError(f"{what} needs a non-empty 'name'")
    return name


@dataclass(frozen=True)
class CandidateSpec:
    """One named strategy under comparison."""

    name: str
    scheme: str = "SparseAdapt"
    policy: Optional[str] = None
    hardening: Optional[bool] = None
    faults: Optional[dict] = None
    model: Optional[str] = None

    @staticmethod
    def from_dict(raw: Mapping) -> "CandidateSpec":
        _require_keys(raw, _CANDIDATE_KEYS, "candidate")
        return CandidateSpec(
            name=_name_of(raw, "candidate"),
            scheme=raw.get("scheme", "SparseAdapt"),
            policy=raw.get("policy"),
            hardening=raw.get("hardening"),
            faults=raw.get("faults"),
            model=raw.get("model"),
        )

    def schemes(self) -> Tuple[str, ...]:
        """The evaluation scheme set: Baseline (the gains reference)
        plus this candidate's scheme, unless the candidate *is* the
        baseline machine."""
        if self.scheme == "Baseline":
            return ("Baseline",)
        return ("Baseline", self.scheme)


@dataclass(frozen=True)
class WorkloadSpec:
    """One named kernel x matrix input the candidates all run on."""

    name: str
    kernel: str
    matrix: str
    scale: float = 0.3
    mode: str = "ee"
    l1_type: str = "cache"
    bandwidth_gbps: float = 1.0

    @staticmethod
    def from_dict(
        raw: Mapping, defaults: Optional[Mapping] = None
    ) -> "WorkloadSpec":
        _require_keys(raw, _WORKLOAD_KEYS, "workload")
        merged = dict(defaults or {})
        merged.update(raw)
        if "kernel" not in merged or "matrix" not in merged:
            raise ConfigError(
                "workload needs 'kernel' and 'matrix' "
                "(directly or via spec defaults)"
            )
        merged.setdefault("name", merged["matrix"])
        return WorkloadSpec(**merged)


@dataclass(frozen=True)
class RegressionGate:
    """``require: candidate X within Y% of candidate Z on metric M``.

    ``of`` defaults to the spec's baseline candidate; ``workload``
    limits the check to one workload (default: the geomean across all
    of them). A gate *passes* when the candidate's value is no more
    than ``within_pct`` percent worse than the reference on that
    metric, worse meaning lower for higher-is-better metrics and
    higher for lower-is-better ones.
    """

    candidate: str
    metric: str
    within_pct: float
    of: Optional[str] = None
    workload: Optional[str] = None

    @staticmethod
    def from_dict(raw: Mapping) -> "RegressionGate":
        _require_keys(raw, _GATE_KEYS, "gate")
        for key in ("candidate", "metric", "within_pct"):
            if key not in raw:
                raise ConfigError(f"gate is missing {key!r}")
        within = raw["within_pct"]
        if not isinstance(within, (int, float)) or isinstance(within, bool):
            raise ConfigError(
                f"gate within_pct must be a number, got {within!r}"
            )
        if within < 0:
            raise ConfigError(
                f"gate within_pct must be >= 0, got {within!r}"
            )
        return RegressionGate(
            candidate=raw["candidate"],
            metric=raw["metric"],
            within_pct=float(within),
            of=raw.get("of"),
            workload=raw.get("workload"),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A parsed, cross-checked experiment file."""

    name: str
    candidates: Tuple[CandidateSpec, ...]
    workloads: Tuple[WorkloadSpec, ...]
    baseline: str
    metrics: Tuple[str, ...] = DEFAULT_METRICS
    seeds: Tuple[int, ...] = (0,)
    gates: Tuple[RegressionGate, ...] = ()
    description: str = ""

    def candidate_names(self) -> List[str]:
        return [candidate.name for candidate in self.candidates]

    def workload_names(self) -> List[str]:
        return [workload.name for workload in self.workloads]

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(raw: Mapping) -> "ExperimentSpec":
        _require_keys(raw, _SPEC_KEYS, "experiment spec")
        name = _name_of(raw, "experiment spec")
        for key in ("candidates", "workloads"):
            entries = raw.get(key)
            if not isinstance(entries, (list, tuple)) or not entries:
                raise ConfigError(
                    f"experiment spec needs a non-empty {key!r} list"
                )

        candidates = tuple(
            CandidateSpec.from_dict(entry) for entry in raw["candidates"]
        )
        _reject_duplicates([c.name for c in candidates], "candidate")

        defaults = raw.get("defaults", {})
        _require_keys(defaults, _WORKLOAD_DEFAULT_KEYS, "spec defaults")
        workloads = tuple(
            WorkloadSpec.from_dict(entry, defaults=defaults)
            for entry in raw["workloads"]
        )
        _reject_duplicates([w.name for w in workloads], "workload")

        baseline = raw.get("baseline", candidates[0].name)
        if baseline not in [c.name for c in candidates]:
            raise ConfigError(
                f"baseline {baseline!r} is not a declared candidate"
            )

        metrics = tuple(raw.get("metrics", DEFAULT_METRICS))
        if not metrics:
            raise ConfigError("experiment spec 'metrics' must be non-empty")
        _reject_duplicates(list(metrics), "metric")
        from repro.obs.compare import METRICS

        for metric in metrics:
            if metric not in METRICS:
                raise ConfigError(
                    f"unknown metric {metric!r} "
                    f"(expected one of {', '.join(sorted(METRICS))})"
                )

        seeds = raw.get("seeds", [0])
        if not isinstance(seeds, (list, tuple)) or not seeds:
            raise ConfigError("'seeds' must be a non-empty list of integers")
        for seed in seeds:
            if (
                not isinstance(seed, int)
                or isinstance(seed, bool)
                or seed < 0
            ):
                raise ConfigError(f"seeds must be integers >= 0, got {seed!r}")
        _reject_duplicates([str(seed) for seed in seeds], "seed")

        gates = tuple(
            RegressionGate.from_dict(entry) for entry in raw.get("gates", [])
        )
        spec = ExperimentSpec(
            name=name,
            candidates=candidates,
            workloads=workloads,
            baseline=baseline,
            metrics=metrics,
            seeds=tuple(seeds),
            gates=gates,
            description=raw.get("description", ""),
        )
        spec._check_gates()
        return spec

    def _check_gates(self) -> None:
        candidates = set(self.candidate_names())
        workloads = set(self.workload_names())
        for gate in self.gates:
            if gate.candidate not in candidates:
                raise ConfigError(
                    f"gate names unknown candidate {gate.candidate!r}"
                )
            reference = gate.of if gate.of is not None else self.baseline
            if reference not in candidates:
                raise ConfigError(
                    f"gate names unknown reference candidate {reference!r}"
                )
            if reference == gate.candidate:
                raise ConfigError(
                    f"gate compares candidate {gate.candidate!r} "
                    f"against itself"
                )
            if gate.metric not in self.metrics:
                raise ConfigError(
                    f"gate metric {gate.metric!r} is not in the spec's "
                    f"metric list ({', '.join(self.metrics)})"
                )
            if gate.workload is not None and gate.workload not in workloads:
                raise ConfigError(
                    f"gate names unknown workload {gate.workload!r}"
                )


def _reject_duplicates(names: List[str], what: str) -> None:
    seen = set()
    for name in names:
        if name in seen:
            raise ConfigError(f"duplicate {what} name {name!r}")
        seen.add(name)


# ---------------------------------------------------------------------------
# Spec -> CampaignPlan compilation
# ---------------------------------------------------------------------------
def compile_plan(spec: ExperimentSpec):
    """Compile a spec into a :class:`~repro.runner.plan.CampaignPlan`.

    Jobs are emitted workload-major (all candidates x seeds of workload
    1, then workload 2, ...) so a partially-run ledger always holds
    complete comparison rows for a prefix of the workloads. Every job
    carries its candidate/workload/seed identity in both the
    content-addressed key and the ledger row metadata.
    """
    from repro.runner.plan import CampaignPlan, JobSpec

    regret = "oracle_regret_pct" in spec.metrics
    jobs = []
    for workload in spec.workloads:
        for candidate in spec.candidates:
            for seed in spec.seeds:
                jobs.append(
                    JobSpec(
                        kernel=workload.kernel,
                        matrix=workload.matrix,
                        scale=workload.scale,
                        mode=workload.mode,
                        schemes=candidate.schemes(),
                        l1_type=workload.l1_type,
                        bandwidth_gbps=workload.bandwidth_gbps,
                        candidate=candidate.name,
                        workload=workload.name,
                        seed=seed,
                        policy=candidate.policy,
                        hardening=candidate.hardening,
                        faults=candidate.faults,
                        model=candidate.model,
                        regret=regret,
                    )
                )
    return CampaignPlan(name=spec.name, jobs=tuple(jobs))


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------
def load_spec(path: Union[str, "object"]) -> ExperimentSpec:
    """Load a spec file (JSON, or TOML on Python 3.11+).

    Every failure — missing file, malformed syntax, schema violation —
    is a :class:`ConfigError` with a one-line explanation.
    """
    raw = _read_raw(path)
    return ExperimentSpec.from_dict(raw)


def _read_raw(path) -> Mapping:
    text_path = str(path)
    if text_path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            raise ConfigError(
                "TOML specs need Python 3.11+ (tomllib); "
                "convert the spec to JSON to run it here"
            ) from None
        try:
            with open(path, "rb") as handle:
                return tomllib.load(handle)
        except FileNotFoundError:
            raise ConfigError(f"no such spec file: {path}") from None
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"malformed spec {path}: {exc}") from None
        except OSError as exc:
            raise ConfigError(f"cannot read spec {path}: {exc}") from None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        raise ConfigError(f"no such spec file: {path}") from None
    except IsADirectoryError:
        raise ConfigError(f"{path} is a directory, not a spec") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed spec {path}: {exc}") from None
    except OSError as exc:
        raise ConfigError(f"cannot read spec {path}: {exc}") from None
    if not isinstance(raw, Mapping):
        raise ConfigError(
            f"spec {path} must contain a JSON object, "
            f"got {type(raw).__name__}"
        )
    return raw


def looks_like_spec(path) -> bool:
    """Cheap sniff: is ``path`` an experiment spec file (vs a ledger)?

    Spec files are single JSON/TOML documents with a ``candidates``
    list; ledgers are JSONL streams whose first record is a header
    object without one. Used by ``repro compare`` to accept either.
    """
    try:
        raw = _read_raw(path)
    except ConfigError:
        return False
    return isinstance(raw, Mapping) and "candidates" in raw
