"""CSV export of schedules and gain tables.

The paper's artifact emits "tarballs containing raw CSV results";
these helpers provide the same raw-data escape hatch so downstream
plotting never has to re-run a simulation.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.core.schedule import ScheduleResult
from repro.errors import SimulationError
from repro.kernels.base import KernelTrace

__all__ = ["schedule_to_csv", "gains_to_csv", "write_csv"]

_SCHEDULE_COLUMNS = (
    "epoch",
    "phase",
    "l1_type",
    "l1_sharing",
    "l2_sharing",
    "l1_kb",
    "l2_kb",
    "clock_mhz",
    "prefetch",
    "time_us",
    "energy_uj",
    "gflops",
    "gflops_per_watt",
    "reconfig_time_us",
    "reconfig_energy_uj",
    "l1_miss_rate",
    "l2_miss_rate",
    "dram_read_utilization",
    "dram_write_utilization",
)


def schedule_to_csv(
    schedule: ScheduleResult, trace: Optional[KernelTrace] = None
) -> str:
    """Render a schedule's per-epoch timeline as CSV text."""
    if not schedule.records:
        raise SimulationError("cannot export an empty schedule")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_SCHEDULE_COLUMNS)
    for record in schedule.records:
        config = record.config
        result = record.result
        counters = result.counters
        phase = ""
        if trace is not None and record.index < trace.n_epochs:
            phase = trace.epochs[record.index].phase
        writer.writerow(
            [
                record.index,
                phase,
                config.l1_type,
                config.l1_sharing,
                config.l2_sharing,
                config.l1_kb,
                config.l2_kb,
                f"{config.clock_mhz:g}",
                config.prefetch,
                f"{result.time_s * 1e6:.6f}",
                f"{result.energy_j * 1e6:.6f}",
                f"{result.gflops:.6f}",
                f"{result.gflops_per_watt:.6f}",
                f"{(record.reconfig.time_s if record.reconfig else 0.0) * 1e6:.6f}",
                f"{(record.reconfig.energy_j if record.reconfig else 0.0) * 1e6:.6f}",
                f"{counters.l1_miss_rate:.6f}",
                f"{counters.l2_miss_rate:.6f}",
                f"{counters.dram_read_utilization:.6f}",
                f"{counters.dram_write_utilization:.6f}",
            ]
        )
    return buffer.getvalue()


def gains_to_csv(
    per_input: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    input_column: str = "input",
) -> str:
    """Render an inputs x schemes gain table as CSV text."""
    if not per_input:
        raise SimulationError("cannot export an empty gain table")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([input_column, *schemes])
    for input_name, row in per_input.items():
        writer.writerow(
            [input_name]
            + [f"{row[s]:.6f}" if s in row else "" for s in schemes]
        )
    return buffer.getvalue()


def write_csv(text: str, path: Union[str, Path]) -> Path:
    """Write CSV text produced by the helpers above to a file."""
    path = Path(path)
    path.write_text(text)
    return path
