"""Experiment drivers: one function per paper table/figure.

Each driver returns plain dictionaries (inputs x schemes x metrics) so
benchmarks can both assert on the shape and print the same rows/series
the paper reports. ``scale`` arguments shrink the input matrices (the
per-row density is preserved, see :mod:`repro.sparse.suite`) so the
full grid stays tractable in pure Python; drivers default to moderate
scales and accept 1.0 for full-size runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import BASELINE, BEST_AVG_CACHE, EpochTable, ideal_static, oracle
from repro.core.controller import SparseAdaptController
from repro.core.modes import OptimizationMode
from repro.core.policies import (
    AggressivePolicy,
    ConservativePolicy,
    HybridPolicy,
)
from repro.core.schedule import ScheduleResult
from repro.core.training import train_default_model
from repro.experiments.harness import (
    STANDARD_SCHEMES,
    UPPER_BOUND_SCHEMES,
    EvaluationContext,
    build_trace,
    default_policy_for,
    evaluate_schemes,
    gains_over,
)
from repro.kernels import trace_conv, trace_gemm
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.sparse import suite
from repro.transmuter.machine import TransmuterModel

__all__ = [
    "figure1_motivation",
    "figure5_spmspv_synthetic",
    "figure6_spmspm_real",
    "figure7_spmspv_real",
    "table6_graph_algorithms",
    "figure8_upper_bounds",
    "figure9_model_complexity",
    "figure9_per_parameter_depth",
    "figure10_feature_importance",
    "figure11_policy_sweep",
    "figure11_bandwidth_sweep",
    "figure12_system_size",
    "section64_profileadapt",
    "section7_regular_kernels",
]

EE = OptimizationMode.ENERGY_EFFICIENT
PP = OptimizationMode.POWER_PERFORMANCE


def _evaluate_many(
    kernel: str,
    matrix_ids: Sequence[str],
    mode: OptimizationMode,
    scale: float,
    l1_type: str = "cache",
    schemes: Sequence[str] = STANDARD_SCHEMES,
    machine: Optional[TransmuterModel] = None,
    n_samples: int = 64,
    model=None,
    policy=None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Gains over Baseline per matrix for one kernel/mode."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for matrix_id in matrix_ids:
        trace = build_trace(kernel, matrix_id, scale=scale)
        context = EvaluationContext(
            trace=trace,
            machine=machine or TransmuterModel(),
            mode=mode,
            l1_type=l1_type,
            model=model
            or train_default_model(mode, kernel=kernel, l1_type=l1_type),
            policy=policy or default_policy_for(kernel),
            n_samples=n_samples,
        )
        out[matrix_id] = gains_over(evaluate_schemes(context, schemes))
    return out


# ---------------------------------------------------------------------------
# Figure 1 — motivation timeline
# ---------------------------------------------------------------------------
def figure1_motivation(
    n: int = 128, density: float = 0.20, n_samples: int = 64
) -> Dict[str, object]:
    """OP-SpMSpM on the strip matrix: dynamic vs. best static.

    Returns the summary gains (the paper reports ~1.5x less energy and
    ~22.6% faster) and the per-epoch timeline (efficiency, clock, L2
    capacity, bandwidth utilization) of both schemes.
    """
    from repro.kernels import trace_spmspm
    from repro.sparse.generators import strip_matrix

    from repro.baselines import run_static

    matrix = strip_matrix(n=n, density=density, seed=1)
    trace = trace_spmspm(matrix.to_csc(), matrix.transpose().to_csr())
    machine = TransmuterModel()
    table = EpochTable(
        machine, trace, n_samples=n_samples, seed=0, include=[BASELINE]
    )
    static = ideal_static(table, PP)
    dynamic = oracle(table, PP)
    best_avg = run_static(machine, trace, BEST_AVG_CACHE)

    def timeline(schedule: ScheduleResult) -> Dict[str, List[float]]:
        return {
            "time_ms": list(
                np.cumsum([r.time_s for r in schedule.records]) * 1e3
            ),
            "gflops_per_watt": [
                r.result.gflops_per_watt for r in schedule.records
            ],
            "clock_mhz": [r.config.clock_mhz for r in schedule.records],
            "l2_kb": [float(r.config.l2_kb) for r in schedule.records],
            "dram_utilization": [
                r.result.counters.dram_read_utilization
                + r.result.counters.dram_write_utilization
                for r in schedule.records
            ],
            "phase": [trace.epochs[r.index].phase for r in schedule.records],
        }

    return {
        # Against the with-hindsight ideal static (our conservative
        # reading of the figure's "Best Static Cfg").
        "energy_gain": static.total_energy_j / dynamic.total_energy_j,
        "speedup_percent": (
            static.total_time_s / dynamic.total_time_s - 1.0
        )
        * 100.0,
        # Against the Table-4 Best-Avg compromise (upper bound of the
        # claim: a realistic static point, not a per-input oracle).
        "energy_gain_vs_best_avg": (
            best_avg.total_energy_j / dynamic.total_energy_j
        ),
        "speedup_percent_vs_best_avg": (
            best_avg.total_time_s / dynamic.total_time_s - 1.0
        )
        * 100.0,
        "static_timeline": timeline(static),
        "dynamic_timeline": timeline(dynamic),
        "n_epochs": trace.n_epochs,
    }


# ---------------------------------------------------------------------------
# Figures 5-7 — standard comparisons
# ---------------------------------------------------------------------------
def figure5_spmspv_synthetic(
    scale: float = 0.25, n_samples: int = 64
) -> Dict[str, object]:
    """SpMSpV on U1-U3/P1-P3, L1 cache: PP GFLOPS + GFLOPS/W, EE GFLOPS/W."""
    ids = suite.SYNTHETIC_IDS
    pp = _evaluate_many("spmspv", ids, PP, scale, n_samples=n_samples)
    ee = _evaluate_many("spmspv", ids, EE, scale, n_samples=n_samples)
    return {
        "pp_perf": {m: {s: pp[m][s]["perf_gain"] for s in pp[m]} for m in pp},
        "pp_eff": {
            m: {s: pp[m][s]["efficiency_gain"] for s in pp[m]} for m in pp
        },
        "ee_eff": {
            m: {s: ee[m][s]["efficiency_gain"] for s in ee[m]} for m in ee
        },
    }


def figure6_spmspm_real(
    scale: float = 0.5, n_samples: int = 64
) -> Dict[str, object]:
    """SpMSpM (C = A A^T) on R01-R08, L1 cache."""
    ids = suite.SPMSPM_IDS
    pp = _evaluate_many("spmspm", ids, PP, scale, n_samples=n_samples)
    ee = _evaluate_many("spmspm", ids, EE, scale, n_samples=n_samples)
    return {
        "pp_perf": {m: {s: pp[m][s]["perf_gain"] for s in pp[m]} for m in pp},
        "pp_eff": {
            m: {s: pp[m][s]["efficiency_gain"] for s in pp[m]} for m in pp
        },
        "ee_eff": {
            m: {s: ee[m][s]["efficiency_gain"] for s in ee[m]} for m in ee
        },
    }


def figure7_spmspv_real(
    scale: float = 0.35, n_samples: int = 64
) -> Dict[str, object]:
    """SpMSpV on R09-R16 in PP mode, L1 as cache and as scratchpad."""
    ids = suite.SPMSPV_IDS
    out: Dict[str, object] = {}
    for l1_type in ("cache", "spm"):
        gains = _evaluate_many(
            "spmspv", ids, PP, scale, l1_type=l1_type, n_samples=n_samples
        )
        out[l1_type] = {
            "perf": {
                m: {s: gains[m][s]["perf_gain"] for s in gains[m]}
                for m in gains
            },
            "eff": {
                m: {s: gains[m][s]["efficiency_gain"] for s in gains[m]}
                for m in gains
            },
        }
    return out


# ---------------------------------------------------------------------------
# Table 6 — graph algorithms
# ---------------------------------------------------------------------------
def table6_graph_algorithms(
    scale: float = 0.25, n_samples: int = 48
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """BFS/SSSP TEPS-per-watt gains over Baseline, EE mode, L1 cache.

    TEPS/W = edges / energy with edges fixed per input, so the gain over
    Baseline equals the energy ratio.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for algorithm in ("bfs", "sssp"):
        rows: Dict[str, Dict[str, float]] = {}
        for matrix_id in suite.SPMSPV_IDS:
            trace = build_trace(algorithm, matrix_id, scale=scale)
            context = EvaluationContext(
                trace=trace,
                machine=TransmuterModel(),
                mode=EE,
                model=train_default_model(EE, kernel="spmspv"),
                policy=HybridPolicy(0.40),
                n_samples=n_samples,
            )
            results = evaluate_schemes(
                context, ("Baseline", "Best Avg", "SparseAdapt")
            )
            base_energy = results["Baseline"].total_energy_j
            rows[matrix_id] = {
                "Best Avg": base_energy / results["Best Avg"].total_energy_j,
                "SparseAdapt": base_energy
                / results["SparseAdapt"].total_energy_j,
            }
        out[algorithm] = rows
    return out


# ---------------------------------------------------------------------------
# Figure 8 — upper bounds
# ---------------------------------------------------------------------------
def figure8_upper_bounds(
    scale: float = 0.5, n_samples: int = 64
) -> Dict[str, object]:
    """SpMSpM R01-R08 vs Ideal Static / Ideal Greedy / Oracle."""
    ids = suite.SPMSPM_IDS
    out: Dict[str, object] = {}
    for mode, key in ((PP, "pp"), (EE, "ee")):
        gains = _evaluate_many(
            "spmspm",
            ids,
            mode,
            scale,
            schemes=UPPER_BOUND_SCHEMES,
            n_samples=n_samples,
        )
        out[f"{key}_perf"] = {
            m: {s: gains[m][s]["perf_gain"] for s in gains[m]} for m in gains
        }
        out[f"{key}_eff"] = {
            m: {s: gains[m][s]["efficiency_gain"] for s in gains[m]}
            for m in gains
        }
    return out


# ---------------------------------------------------------------------------
# Figure 9 — model-complexity sweep
# ---------------------------------------------------------------------------
def figure9_model_complexity(
    depths: Sequence[int] = (2, 6, 10, 14, 22),
    matrix_ids: Sequence[str] = ("P1", "P3"),
    scale: float = 0.25,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Gains vs. decision-tree depth for SpMSpV in PP mode.

    The trees for every parameter are retrained at each depth (the
    paper varies one parameter's tree at a time; sweeping them jointly
    exposes the same over/under-fitting trend).
    """
    from repro.core.dataset import build_training_set, table3_phases
    from repro.core.training import train_model

    phases = table3_phases("spmspv")
    training_set = build_training_set(phases, PP, k_samples=24, seed=0)
    machine = TransmuterModel()
    out: Dict[str, Dict[int, Dict[str, float]]] = {m: {} for m in matrix_ids}
    for depth in depths:
        model = train_model(
            training_set,
            param_grid={
                "criterion": ("gini",),
                "max_depth": (depth,),
                "min_samples_leaf": (1,),
            },
        )
        for matrix_id in matrix_ids:
            trace = build_trace("spmspv", matrix_id, scale=scale)
            context = EvaluationContext(
                trace=trace,
                machine=machine,
                mode=PP,
                model=model,
                policy=HybridPolicy(0.40),
            )
            results = evaluate_schemes(context, ("Baseline", "SparseAdapt"))
            gains = gains_over(results)["SparseAdapt"]
            out[matrix_id][depth] = {
                "perf_gain": gains["perf_gain"],
                "efficiency_gain": gains["efficiency_gain"],
            }
    return out


def figure9_per_parameter_depth(
    depths: Sequence[int] = (2, 6, 14),
    matrix_id: str = "P3",
    scale: float = 0.2,
) -> Dict[str, Dict[int, float]]:
    """The paper's exact Figure-9 protocol: vary ONE parameter's tree
    depth at a time, keeping the original trees for the rest, and
    report the efficiency gain of the resulting controller.
    """
    from repro.core.dataset import build_training_set, table3_phases
    from repro.core.model import SparseAdaptModel
    from repro.core.training import train_model
    from repro.ml.decision_tree import DecisionTreeClassifier

    phases = table3_phases("spmspv")
    training_set = build_training_set(phases, PP, k_samples=24, seed=0)
    original = train_model(
        training_set,
        param_grid={
            "criterion": ("gini",),
            "max_depth": (10,),
            "min_samples_leaf": (1,),
        },
    )
    machine = TransmuterModel()
    trace = build_trace("spmspv", matrix_id, scale=scale)

    def evaluate(model) -> float:
        context = EvaluationContext(
            trace=trace,
            machine=machine,
            mode=PP,
            model=model,
            policy=HybridPolicy(0.40),
        )
        results = evaluate_schemes(context, ("Baseline", "SparseAdapt"))
        return gains_over(results)["SparseAdapt"]["efficiency_gain"]

    out: Dict[str, Dict[int, float]] = {}
    for parameter in original.predicted_parameters():
        labels = training_set.labels[parameter]
        per_depth: Dict[int, float] = {}
        for depth in depths:
            replacement = DecisionTreeClassifier(
                max_depth=depth, random_state=0
            )
            replacement.fit(training_set.features, labels)
            trees = dict(original.trees)
            trees[parameter] = replacement
            variant = SparseAdaptModel(trees=trees, l1_type="cache")
            per_depth[depth] = evaluate(variant)
        out[parameter] = per_depth
    return out


# ---------------------------------------------------------------------------
# Figure 10 — feature importance
# ---------------------------------------------------------------------------
def figure10_feature_importance(
    quick: bool = True,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Grouped Gini importances per trained model, both modes."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for mode, key in ((PP, "pp"), (EE, "ee")):
        model = train_default_model(mode, kernel="spmspv", quick=quick)
        out[key] = model.importance_table()
    return out


# ---------------------------------------------------------------------------
# Figure 11 — policy and bandwidth sweeps
# ---------------------------------------------------------------------------
def figure11_policy_sweep(
    matrix_ids: Sequence[str] = ("P3", "R12"),
    tolerances: Sequence[float] = (0.1, 0.2, 0.4, 0.7, 0.9),
    scale: float = 0.25,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Conservative / aggressive / hybrid-tolerance sweep (PP mode)."""
    model = train_default_model(PP, kernel="spmspv")
    machine = TransmuterModel()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    policies = {"conservative": ConservativePolicy(), "aggressive": AggressivePolicy()}
    for tolerance in tolerances:
        policies[f"hybrid-{int(tolerance * 100)}%"] = HybridPolicy(tolerance)
    for matrix_id in matrix_ids:
        trace = build_trace("spmspv", matrix_id, scale=scale)
        rows: Dict[str, Dict[str, float]] = {}
        for name, policy in policies.items():
            context = EvaluationContext(
                trace=trace,
                machine=machine,
                mode=PP,
                model=model,
                policy=policy,
            )
            results = evaluate_schemes(context, ("Baseline", "SparseAdapt"))
            gains = gains_over(results)["SparseAdapt"]
            rows[name] = {
                "perf_gain": gains["perf_gain"],
                "efficiency_gain": gains["efficiency_gain"],
            }
        out[matrix_id] = rows
    return out


def figure11_bandwidth_sweep(
    matrix_id: str = "P3",
    bandwidths_gbps: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    scale: float = 0.25,
) -> Dict[float, Dict[str, float]]:
    """EE-mode efficiency gains vs. external bandwidth (no retraining)."""
    model = train_default_model(EE, kernel="spmspv")
    trace = build_trace("spmspv", matrix_id, scale=scale)
    out: Dict[float, Dict[str, float]] = {}
    for bandwidth in bandwidths_gbps:
        context = EvaluationContext(
            trace=trace,
            machine=TransmuterModel(bandwidth_gbps=bandwidth),
            mode=EE,
            model=model,
            policy=HybridPolicy(0.40),
        )
        results = evaluate_schemes(
            context, ("Baseline", "Best Avg", "SparseAdapt")
        )
        gains = gains_over(results)
        out[bandwidth] = {
            "over_baseline": gains["SparseAdapt"]["efficiency_gain"],
            "over_best_avg": (
                gains["SparseAdapt"]["efficiency_gain"]
                / gains["Best Avg"]["efficiency_gain"]
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 12 — system-size scaling
# ---------------------------------------------------------------------------
def figure12_system_size(
    geometries: Sequence[Tuple[int, int]] = ((1, 8), (2, 8), (2, 16), (4, 16)),
    scale: float = 0.4,
    matrix_ids: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """EE GFLOPS/W gains while scaling tiles x GPEs (model not retrained)."""
    matrix_ids = matrix_ids or suite.SPMSPM_IDS
    model = train_default_model(EE, kernel="spmspm")
    out: Dict[str, Dict[str, float]] = {}
    for n_tiles, gpes in geometries:
        machine = TransmuterModel(n_tiles=n_tiles, gpes_per_tile=gpes)
        rows: Dict[str, float] = {}
        for matrix_id in matrix_ids:
            trace = build_trace("spmspm", matrix_id, scale=scale)
            context = EvaluationContext(
                trace=trace,
                machine=machine,
                mode=EE,
                model=model,
                policy=ConservativePolicy(),
            )
            results = evaluate_schemes(context, ("Baseline", "SparseAdapt"))
            rows[matrix_id] = gains_over(results)["SparseAdapt"][
                "efficiency_gain"
            ]
        out[f"{n_tiles}x{gpes}"] = rows
    return out


# ---------------------------------------------------------------------------
# Section 6.4 — ProfileAdapt comparison
# ---------------------------------------------------------------------------
def section64_profileadapt(
    matrix_ids: Optional[Sequence[str]] = None,
    scale: float = 0.35,
    pa_epoch_fp_ops: Sequence[float] = (2000.0, 4000.0, 6000.0),
    n_samples: int = 48,
) -> Dict[str, Dict[str, float]]:
    """SparseAdapt vs ProfileAdapt (naive/ideal) for SpMSpV, L1 cache.

    ProfileAdapt runs at its own best epoch size: each candidate size in
    ``pa_epoch_fp_ops`` is evaluated and the best one per variant kept
    (paper Section 6.4 does the same sweep).
    """
    matrix_ids = matrix_ids or suite.SPMSPV_IDS[:4]
    out: Dict[str, Dict[str, float]] = {}
    for mode, key in ((PP, "pp"), (EE, "ee")):
        model = train_default_model(mode, kernel="spmspv")
        ratios: Dict[str, List[float]] = {
            "perf_vs_naive": [],
            "eff_vs_naive": [],
            "perf_vs_ideal": [],
            "eff_vs_ideal": [],
        }
        for matrix_id in matrix_ids:
            trace = build_trace("spmspv", matrix_id, scale=scale)
            machine = TransmuterModel()
            context = EvaluationContext(
                trace=trace,
                machine=machine,
                mode=mode,
                model=model,
                policy=HybridPolicy(0.40),
                n_samples=n_samples,
            )
            sparse_adapt = evaluate_schemes(context, ("SparseAdapt",))[
                "SparseAdapt"
            ]
            best: Dict[str, ScheduleResult] = {}
            for epoch_size in pa_epoch_fp_ops:
                pa_trace = build_trace(
                    "spmspv", matrix_id, scale=scale, epoch_fp_ops=epoch_size
                )
                pa_context = EvaluationContext(
                    trace=pa_trace,
                    machine=machine,
                    mode=mode,
                    n_samples=n_samples,
                    profiling_epoch_trace=pa_trace,
                )
                candidates = evaluate_schemes(
                    pa_context, ("ProfileAdapt Naive", "ProfileAdapt Ideal")
                )
                for name, schedule in candidates.items():
                    if name not in best or schedule.metric(mode) > best[
                        name
                    ].metric(mode):
                        best[name] = schedule
            naive = best["ProfileAdapt Naive"]
            ideal = best["ProfileAdapt Ideal"]
            ratios["perf_vs_naive"].append(sparse_adapt.gflops / naive.gflops)
            ratios["eff_vs_naive"].append(
                sparse_adapt.gflops_per_watt / naive.gflops_per_watt
            )
            ratios["perf_vs_ideal"].append(sparse_adapt.gflops / ideal.gflops)
            ratios["eff_vs_ideal"].append(
                sparse_adapt.gflops_per_watt / ideal.gflops_per_watt
            )
        out[key] = {
            name: float(np.exp(np.mean(np.log(values))))
            for name, values in ratios.items()
        }
    return out


# ---------------------------------------------------------------------------
# Section 7 — regular kernels
# ---------------------------------------------------------------------------
def section7_regular_kernels(n_samples: int = 64) -> Dict[str, float]:
    """Ideal Static vs Oracle gap for GeMM and Conv (paper: < 5%)."""
    machine = TransmuterModel()
    out: Dict[str, float] = {}
    traces = {
        "gemm": trace_gemm(96, 96, 96),
        "conv": trace_conv(96, 96, kernel=3),
    }
    for name, trace in traces.items():
        table = EpochTable(
            machine, trace, n_samples=n_samples, seed=0, include=[BASELINE]
        )
        static = ideal_static(table, EE)
        best_dynamic = oracle(table, EE)
        out[name] = (
            best_dynamic.gflops_per_watt / static.gflops_per_watt - 1.0
        )
    return out
