"""Experiment harness: build traces, evaluate schemes, compute gains.

Every figure/table driver composes the same three steps:

1. :func:`build_trace` — generate (or load) the input, execute the
   kernel, get a :class:`~repro.kernels.base.KernelTrace`;
2. :func:`evaluate_schemes` — run the requested control schemes over
   the trace on one machine configuration, sharing a single
   :class:`~repro.baselines.table.EpochTable`;
3. :func:`gains_over` — normalize metrics to a reference scheme, the
   way every figure in the paper reports "gains over Baseline".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.obs import profile as obs_profile
from repro.baselines import (
    BASELINE,
    BEST_AVG_CACHE,
    BEST_AVG_SPM,
    MAX_CFG,
    EpochTable,
    epoch_cost_proxy,
    ideal_greedy,
    ideal_static,
    oracle,
    per_epoch_costs,
    profile_adapt,
    run_static,
    spm_variant,
)
from repro.core.controller import SparseAdaptController
from repro.core.hardening import HardeningConfig
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.core.policies import (
    ConservativePolicy,
    HybridPolicy,
    ReconfigurationPolicy,
)
from repro.core.schedule import ScheduleResult
from repro.core.training import train_default_model
from repro.errors import ConfigError
from repro.faults.spec import FaultSchedule
from repro.graph.bfs import bfs
from repro.graph.sssp import sssp
from repro.kernels import (
    SPMSPM_EPOCH_FP_OPS,
    SPMSPV_EPOCH_FP_OPS,
    KernelTrace,
    trace_spmspm,
    trace_spmspv,
)
from repro.sparse import generators, suite
from repro.transmuter.config import HardwareConfig
from repro.transmuter.machine import TransmuterModel

__all__ = [
    "KNOWN_SCHEMES",
    "STANDARD_SCHEMES",
    "UPPER_BOUND_SCHEMES",
    "build_trace",
    "evaluate_schemes",
    "gains_over",
    "default_policy_for",
    "oracle_regret",
]

#: The comparison set of Figures 5-7.
STANDARD_SCHEMES = ("Baseline", "Best Avg", "Max Cfg", "SparseAdapt")

#: The upper-bound set of Figure 8.
UPPER_BOUND_SCHEMES = (
    "Baseline",
    "SparseAdapt",
    "Ideal Static",
    "Ideal Greedy",
    "Oracle",
)

#: Every scheme name :func:`evaluate_schemes` accepts (plan validation
#: in :mod:`repro.runner.plan` fails fast against this set).
KNOWN_SCHEMES = (
    "Baseline",
    "Best Avg",
    "Max Cfg",
    "SparseAdapt",
    "Ideal Static",
    "Ideal Greedy",
    "Oracle",
    "ProfileAdapt Naive",
    "ProfileAdapt Ideal",
)

_TRACE_CACHE: Dict[tuple, KernelTrace] = {}
#: The cache is shared with watchdog worker threads (the suite runner
#: executes deadline-supervised jobs off-thread), so guard it.
_TRACE_CACHE_LOCK = threading.Lock()


def default_policy_for(kernel: str) -> ReconfigurationPolicy:
    """Paper Section 5.4: conservative for SpMSpM, hybrid 40% for SpMSpV."""
    if kernel == "spmspm":
        return ConservativePolicy()
    return HybridPolicy(tolerance=0.40)


def build_trace(
    kernel: str,
    matrix_id: str,
    scale: float = 1.0,
    epoch_fp_ops: Optional[float] = None,
    vector_density: float = 0.5,
    seed: int = 0,
    use_cache: bool = True,
) -> KernelTrace:
    """Trace one kernel over one suite matrix.

    ``kernel`` is one of ``spmspm`` (C = A A^T, the paper's setting),
    ``spmspv`` (y = A x against a ``vector_density``-dense vector),
    ``bfs`` or ``sssp``.
    """
    key = (kernel, matrix_id, scale, epoch_fp_ops, vector_density, seed)
    if use_cache:
        with _TRACE_CACHE_LOCK:
            if key in _TRACE_CACHE:
                return _TRACE_CACHE[key]
    recorder = obs.get_recorder()
    with recorder.span(
        "harness.build_trace", kernel=kernel, matrix=matrix_id, scale=scale
    ) as span:
        with obs_profile.span("build_trace"):
            trace = _build_trace_uncached(
                kernel, matrix_id, scale, epoch_fp_ops, vector_density, seed
            )
        span.set(n_epochs=trace.n_epochs)
    if use_cache:
        with _TRACE_CACHE_LOCK:
            _TRACE_CACHE[key] = trace
    return trace


def _build_trace_uncached(
    kernel: str,
    matrix_id: str,
    scale: float,
    epoch_fp_ops: Optional[float],
    vector_density: float,
    seed: int,
) -> KernelTrace:
    matrix = suite.load(matrix_id, scale=scale)
    if kernel == "spmspm":
        trace = trace_spmspm(
            matrix.to_csc(),
            matrix.transpose().to_csr(),
            epoch_fp_ops or SPMSPM_EPOCH_FP_OPS,
            name=f"spmspm-{matrix_id}",
        )
    elif kernel == "spmspv":
        vector = generators.random_vector(
            matrix.shape[1], vector_density, seed=seed + 1
        )
        trace = trace_spmspv(
            matrix.to_csc(),
            vector,
            epoch_fp_ops or SPMSPV_EPOCH_FP_OPS,
            name=f"spmspv-{matrix_id}",
        )
    elif kernel in ("bfs", "sssp"):
        import numpy as np

        csc = matrix.to_csc()
        source = int(np.argmax(csc.col_lengths()))  # hub with out-edges
        algorithm = bfs if kernel == "bfs" else sssp
        trace = algorithm(csc, source, epoch_fp_ops or SPMSPV_EPOCH_FP_OPS).trace
    else:
        raise ConfigError(f"unknown kernel {kernel!r}")
    return trace


@dataclass
class EvaluationContext:
    """Everything needed to evaluate schemes over one trace."""

    trace: KernelTrace
    machine: TransmuterModel
    mode: OptimizationMode
    l1_type: str = "cache"
    model: Optional[SparseAdaptModel] = None
    policy: Optional[ReconfigurationPolicy] = None
    n_samples: int = 64
    seed: int = 0
    profiling_epoch_trace: Optional[KernelTrace] = None
    #: Fault injection for the SparseAdapt scheme (static baselines and
    #: table-driven upper bounds model the fault-free machine; faults
    #: only exist on the closed control loop).
    faults: Optional[FaultSchedule] = None
    hardening: Optional[HardeningConfig] = None

    def static_points(self) -> Dict[str, HardwareConfig]:
        if self.l1_type == "cache":
            return {
                "Baseline": BASELINE,
                "Best Avg": BEST_AVG_CACHE,
                "Max Cfg": MAX_CFG,
            }
        return {
            "Baseline": spm_variant(BASELINE),
            "Best Avg": BEST_AVG_SPM,
            "Max Cfg": spm_variant(MAX_CFG),
        }


def evaluate_schemes(
    context: EvaluationContext,
    schemes: Sequence[str] = STANDARD_SCHEMES,
) -> Dict[str, ScheduleResult]:
    """Run the requested schemes over one trace on one machine.

    Recognized scheme names: the Table-4 statics (``Baseline``,
    ``Best Avg``, ``Max Cfg``), ``SparseAdapt``, the upper bounds
    (``Ideal Static``, ``Ideal Greedy``, ``Oracle``), and the
    state-of-the-art comparison (``ProfileAdapt Naive``,
    ``ProfileAdapt Ideal`` — these use ``profiling_epoch_trace`` when
    given, since ProfileAdapt operates at its own best epoch size).
    """
    if context.trace.n_epochs == 0:
        raise ConfigError(
            f"cannot evaluate schemes over the empty trace "
            f"{context.trace.name!r} (0 epochs)"
        )
    statics = context.static_points()
    needs_table = any(
        name
        in ("Ideal Static", "Ideal Greedy", "Oracle")
        for name in schemes
    )
    table: Optional[EpochTable] = None
    if needs_table:
        with obs_profile.span("epoch_table"):
            table = EpochTable(
                context.machine,
                context.trace,
                n_samples=context.n_samples,
                l1_type=context.l1_type,
                seed=context.seed,
                include=list(statics.values()),
            )
    pa_table: Optional[EpochTable] = None
    if any(name.startswith("ProfileAdapt") for name in schemes):
        pa_trace = context.profiling_epoch_trace or context.trace
        with obs_profile.span("epoch_table"):
            pa_table = EpochTable(
                context.machine,
                pa_trace,
                n_samples=context.n_samples,
                l1_type=context.l1_type,
                seed=context.seed,
                include=list(statics.values()),
            )

    def run_scheme(name: str) -> ScheduleResult:
        if name in statics:
            return run_static(
                context.machine, context.trace, statics[name], name
            )
        if name == "SparseAdapt":
            model = context.model or train_default_model(
                context.mode,
                kernel="spmspm" if "spmspm" in context.trace.name else "spmspv",
                l1_type=context.l1_type,
            )
            controller = SparseAdaptController(
                model=model,
                machine=context.machine,
                mode=context.mode,
                policy=context.policy,
                initial_config=statics["Baseline"],
                faults=context.faults,
                hardening=context.hardening,
            )
            result = controller.run(context.trace)
            result.scheme = name
            if context.faults is not None:
                result.fault_stats = dict(controller.last_run_stats)
            return result
        if name == "Ideal Static":
            return ideal_static(table, context.mode)
        if name == "Ideal Greedy":
            return ideal_greedy(table, context.mode)
        if name == "Oracle":
            return oracle(table, context.mode)
        if name == "ProfileAdapt Naive":
            return profile_adapt(pa_table, context.mode, "naive")
        if name == "ProfileAdapt Ideal":
            return profile_adapt(pa_table, context.mode, "ideal")
        raise ConfigError(f"unknown scheme {name!r}")

    recorder = obs.get_recorder()
    results: Dict[str, ScheduleResult] = {}
    for name in schemes:
        with recorder.span(
            "harness.scheme", scheme=name, trace=context.trace.name
        ) as span:
            with obs_profile.span(f"scheme:{name.replace(' ', '_')}"):
                results[name] = run_scheme(name)
            span.set(
                gflops=results[name].gflops,
                gflops_per_watt=results[name].gflops_per_watt,
                reconfigurations=results[name].n_reconfigurations,
            )
    return results


def oracle_regret(
    schedule: ScheduleResult,
    table: EpochTable,
    mode: OptimizationMode,
    records: Optional[Sequence[Dict]] = None,
    top: int = 5,
) -> Dict:
    """Per-epoch regret of a schedule against the Oracle upper bound.

    Answers "how far from optimal was this run, and where" in the
    mode's additive cost proxy (energy for Energy-Efficient, time for
    Power-Performance — see :func:`repro.baselines.epoch_cost_proxy`).
    ``records``, when given, is a loaded trace of the *same* run: each
    worst-regret epoch is joined with the ``decision`` event of the
    preceding epoch (the decision that chose its configuration), so a
    rejected proposal that would have moved toward the Oracle's choice
    shows up next to the cost it incurred.

    The Oracle is optimal only over the table's sampled configuration
    set, so total regret can come out negative when the controller
    visits configurations outside the sample — that reads as "beat the
    sampled upper bound", not an error.
    """
    reference = oracle(table, mode)
    costs = per_epoch_costs(schedule, mode)
    ref_costs = per_epoch_costs(reference, mode)
    n = min(len(costs), len(ref_costs))
    if n == 0:
        raise ConfigError("cannot compute regret over an empty schedule")
    regret = costs[:n] - ref_costs[:n]

    decisions_by_epoch: Dict[int, Dict] = {}
    if records is not None:
        for record in records:
            if record.get("type") == "event" and record.get("name") == "decision":
                attrs = record.get("attrs", {}) or {}
                if attrs.get("epoch") is not None:
                    decisions_by_epoch[attrs["epoch"]] = attrs

    worst = []
    for epoch in sorted(
        range(n), key=lambda e: float(regret[e]), reverse=True
    )[:top]:
        entry = {
            "epoch": epoch,
            "regret": float(regret[epoch]),
            "cost": float(costs[epoch]),
            "oracle_cost": float(ref_costs[epoch]),
            "config": schedule.records[epoch].config.describe(),
            "oracle_config": reference.records[epoch].config.describe(),
        }
        # The decision at epoch e-1 picked epoch e's configuration.
        decision = decisions_by_epoch.get(epoch - 1)
        if decision is not None:
            rejected = decision.get("rejected", [])
            entry["rejected_proposals"] = {
                parameter: decision.get("proposed", {}).get(parameter)
                for parameter in rejected
            }
        worst.append(entry)

    total_cost = float(costs[:n].sum())
    oracle_cost = float(ref_costs[:n].sum())
    return {
        "mode": mode.value,
        "proxy": epoch_cost_proxy(mode),
        "n_epochs": n,
        "total_cost": total_cost,
        "oracle_cost": oracle_cost,
        "total_regret": total_cost - oracle_cost,
        "regret_pct": (
            (total_cost - oracle_cost) / oracle_cost * 100.0
            if oracle_cost > 0
            else 0.0
        ),
        "per_epoch": [float(r) for r in regret],
        "worst_epochs": worst,
    }


def gains_over(
    results: Dict[str, ScheduleResult],
    reference: str = "Baseline",
) -> Dict[str, Dict[str, float]]:
    """Per-scheme performance and efficiency gains over a reference."""
    if reference not in results:
        raise ConfigError(f"reference scheme {reference!r} not evaluated")
    ref = results[reference]
    out: Dict[str, Dict[str, float]] = {}
    for name, schedule in results.items():
        out[name] = {
            "gflops": schedule.gflops,
            "gflops_per_watt": schedule.gflops_per_watt,
            "perf_gain": schedule.gflops / ref.gflops,
            "efficiency_gain": schedule.gflops_per_watt / ref.gflops_per_watt,
        }
    return out
