"""Experiment harness and per-figure drivers.

Public API::

    from repro.experiments import harness, figures, reporting
    from repro.experiments.harness import build_trace, evaluate_schemes
"""

from repro.experiments import (
    characterize,
    export,
    figures,
    harness,
    reporting,
    spec,
)
from repro.experiments.spec import ExperimentSpec, compile_plan, load_spec
from repro.experiments.characterize import (
    PhaseProfile,
    characterize as characterize_trace,
    format_characterization,
)
from repro.experiments.export import gains_to_csv, schedule_to_csv, write_csv
from repro.experiments.harness import (
    STANDARD_SCHEMES,
    UPPER_BOUND_SCHEMES,
    EvaluationContext,
    build_trace,
    default_policy_for,
    evaluate_schemes,
    gains_over,
)

__all__ = [
    "figures",
    "harness",
    "reporting",
    "characterize",
    "export",
    "spec",
    "ExperimentSpec",
    "compile_plan",
    "load_spec",
    "PhaseProfile",
    "characterize_trace",
    "format_characterization",
    "schedule_to_csv",
    "gains_to_csv",
    "write_csv",
    "STANDARD_SCHEMES",
    "UPPER_BOUND_SCHEMES",
    "EvaluationContext",
    "build_trace",
    "default_policy_for",
    "evaluate_schemes",
    "gains_over",
]
