"""Workload characterization: summarize a trace's phases.

A library utility for understanding *why* the controller behaves the
way it does on a workload: per explicit phase, the epoch count and the
distributions of the implicit-phase signals (stride, reuse locality,
sharing, skew, live working set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError
from repro.kernels.base import KernelTrace

__all__ = ["PhaseProfile", "characterize", "format_characterization"]


@dataclass(frozen=True)
class PhaseProfile:
    """Summary statistics of one explicit phase."""

    phase: str
    n_epochs: int
    total_fp_ops: float
    total_flops: float
    arithmetic_intensity: float  # flops per compulsory DRAM byte
    mean_stride: float
    mean_reuse_locality: float
    mean_shared_fraction: float
    mean_work_skew: float
    resident_kb_p50: float
    resident_kb_p95: float
    implicit_variability: float  # CV of per-epoch live working sets


def characterize(trace: KernelTrace) -> List[PhaseProfile]:
    """Per-phase profiles, in first-appearance order."""
    if not trace.epochs:
        raise SimulationError("cannot characterize an empty trace")
    order: List[str] = []
    groups: Dict[str, list] = {}
    for epoch in trace.epochs:
        if epoch.phase not in groups:
            groups[epoch.phase] = []
            order.append(epoch.phase)
        groups[epoch.phase].append(epoch)

    profiles = []
    for phase in order:
        epochs = groups[phase]
        live = np.array([e.live_set_bytes for e in epochs])
        read_bytes = sum(e.read_bytes_compulsory for e in epochs)
        flops = sum(e.flops for e in epochs)
        profiles.append(
            PhaseProfile(
                phase=phase,
                n_epochs=len(epochs),
                total_fp_ops=sum(e.fp_ops for e in epochs),
                total_flops=flops,
                arithmetic_intensity=flops / max(read_bytes, 1.0),
                mean_stride=float(
                    np.mean([e.stride_fraction for e in epochs])
                ),
                mean_reuse_locality=float(
                    np.mean([e.reuse_locality for e in epochs])
                ),
                mean_shared_fraction=float(
                    np.mean([e.shared_fraction for e in epochs])
                ),
                mean_work_skew=float(
                    np.mean([e.work_skew for e in epochs])
                ),
                resident_kb_p50=float(np.percentile(live, 50)) / 1024.0,
                resident_kb_p95=float(np.percentile(live, 95)) / 1024.0,
                implicit_variability=float(
                    live.std() / live.mean() if live.mean() > 0 else 0.0
                ),
            )
        )
    return profiles


def format_characterization(trace: KernelTrace) -> str:
    """Readable text table of :func:`characterize`."""
    profiles = characterize(trace)
    header = (
        f"{'phase':>10} {'epochs':>7} {'flops':>12} {'AI':>6} "
        f"{'stride':>7} {'reuse':>6} {'shared':>7} {'skew':>6} "
        f"{'ws p50':>8} {'ws p95':>8} {'var':>6}"
    )
    lines = [f"workload: {trace.name}", header, "-" * len(header)]
    for p in profiles:
        lines.append(
            f"{p.phase:>10} {p.n_epochs:>7} {p.total_flops:>12.3g} "
            f"{p.arithmetic_intensity:>6.2f} {p.mean_stride:>7.2f} "
            f"{p.mean_reuse_locality:>6.2f} {p.mean_shared_fraction:>7.2f} "
            f"{p.mean_work_skew:>6.2f} {p.resident_kb_p50:>7.1f}k "
            f"{p.resident_kb_p95:>7.1f}k {p.implicit_variability:>6.2f}"
        )
    return "\n".join(lines)
