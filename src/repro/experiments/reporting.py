"""Plain-text reporting of experiment results.

Every figure driver returns nested dictionaries; these helpers render
them as aligned tables of "gains over Baseline", the same rows/series
the paper plots, so benchmark logs double as the reproduction record.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.ml.metrics import geometric_mean

__all__ = [
    "format_gain_table",
    "append_geomean",
    "format_scalar_table",
    "sparkline",
    "format_timeline",
]


def append_geomean(
    per_input: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Add the paper's ``GM`` column: geometric mean across inputs."""
    if not per_input:
        return per_input
    schemes = next(iter(per_input.values())).keys()
    geomean_row = {
        scheme: geometric_mean(
            [row[scheme] for row in per_input.values()]
        )
        for scheme in schemes
    }
    out = dict(per_input)
    out["GM"] = geomean_row
    return out


def format_gain_table(
    title: str,
    per_input: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    value_format: str = "{:6.2f}",
) -> str:
    """Render inputs x schemes gains as an aligned text table."""
    lines: List[str] = [title]
    name_width = max(len("input"), *(len(k) for k in per_input))
    header = "  ".join(
        ["input".ljust(name_width)] + [f"{s:>12s}" for s in schemes]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for input_name, row in per_input.items():
        cells = [
            value_format.format(row[s]).rjust(12) if s in row else " " * 12
            for s in schemes
        ]
        lines.append("  ".join([input_name.ljust(name_width)] + cells))
    return "\n".join(lines)


def format_scalar_table(
    title: str, rows: Dict[str, float], value_format: str = "{:8.3f}"
) -> str:
    """Render a flat name -> value mapping."""
    lines = [title]
    width = max(len(k) for k in rows)
    for name, value in rows.items():
        lines.append(f"{name.ljust(width)}  {value_format.format(value)}")
    return "\n".join(lines)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Render a series as a unicode sparkline (terminal-friendly plot).

    Long series are bucket-averaged down to ``width`` glyphs; constant
    series render at mid height.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(1, len(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)]))
            for i in range(width)
        ]
    low, high = min(values), max(values)
    if high - low < 1e-15:
        return _SPARK_LEVELS[3] * len(values)
    span = high - low
    out = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def format_timeline(
    title: str, series: Dict[str, Sequence[float]], width: int = 64
) -> str:
    """Render named series as labelled sparklines (e.g. the Figure-1
    clock / L2-capacity / bandwidth panels)."""
    lines = [title]
    label_width = max(len(k) for k in series)
    for name, values in series.items():
        values = list(values)
        low = min(values) if values else 0.0
        high = max(values) if values else 0.0
        lines.append(
            f"{name.ljust(label_width)}  {sparkline(values, width)}"
            f"  [{low:g} .. {high:g}]"
        )
    return "\n".join(lines)
