"""Epoch-level Transmuter machine model.

:class:`TransmuterModel` predicts, for one :class:`EpochWorkload` under
one :class:`HardwareConfig`, the epoch duration, the full energy
breakdown, and the Table-2 performance counters. It composes the
analytic cache model, the crossbar contention model, the DVFS model,
the memory system, and the power estimator.

The model is deliberately *analytic*: evaluating one (epoch, config)
pair costs microseconds, which is what makes the paper's methodology
(simulate every epoch under hundreds of sampled configurations, then
stitch dynamic schemes together — Appendix A.7) feasible in pure
Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.obs import get_recorder
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.transmuter import params
from repro.transmuter.cache_model import LevelBehaviour, LevelInputs, model_level
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import PerformanceCounters
from repro.transmuter.crossbar import model_crossbar
from repro.transmuter.config import CLOCKS_MHZ
from repro.transmuter.dvfs import OperatingPoint, clamp_frequency, operating_point
from repro.transmuter.memory import MemorySystem
from repro.transmuter.power import EnergyBreakdown, PowerModel
from repro.transmuter.workload import EpochWorkload

__all__ = ["EpochEnvironment", "EpochResult", "TransmuterModel"]


@dataclass(frozen=True)
class EpochEnvironment:
    """Transient machine-level conditions for one epoch.

    A healthy epoch runs without an environment (``None``); fault
    injection supplies one to model events the controller did not
    command: HBM bandwidth throttling (``bandwidth_scale < 1``) and a
    thermal DVFS clamp window (``clock_cap_mhz``). The performance
    counters of a degraded epoch echo the *effective* clock, which is
    how a hardened controller can notice the clamp.
    """

    bandwidth_scale: float = 1.0
    clock_cap_mhz: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise SimulationError(
                f"bandwidth_scale must be in (0, 1], got {self.bandwidth_scale}"
            )
        if self.clock_cap_mhz is not None and self.clock_cap_mhz not in CLOCKS_MHZ:
            raise SimulationError(
                f"clock_cap_mhz must be a Table-1 clock step, "
                f"got {self.clock_cap_mhz!r}"
            )

    @property
    def is_nominal(self) -> bool:
        return self.bandwidth_scale == 1.0 and self.clock_cap_mhz is None

    def constrain(self, config: HardwareConfig) -> HardwareConfig:
        """The configuration the hardware effectively runs under."""
        if self.clock_cap_mhz is None:
            return config
        effective = clamp_frequency(config.clock_mhz, self.clock_cap_mhz)
        if effective == config.clock_mhz:
            return config
        return config.with_value("clock_mhz", effective)


@dataclass(frozen=True)
class EpochResult:
    """Predicted outcome of executing one epoch on one configuration."""

    time_s: float
    energy: EnergyBreakdown
    counters: PerformanceCounters
    core_time_s: float
    memory_time_s: float
    dram_read_bytes: float
    dram_write_bytes: float
    flops: float
    fp_ops: float

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def power_w(self) -> float:
        return self.energy.total / max(self.time_s, 1e-15)

    @property
    def gflops(self) -> float:
        """Performance metric: arithmetic GFLOP/s."""
        return self.flops / max(self.time_s, 1e-15) / 1e9

    @property
    def gflops_per_watt(self) -> float:
        """Energy-efficiency metric (= flops / energy / 1e9)."""
        return self.flops / max(self.energy.total, 1e-18) / 1e9


def _soft_roofline(core_time: float, memory_time: float) -> float:
    """Smooth maximum of compute time and memory-transfer time."""
    p = params.ROOFLINE_SMOOTHNESS
    return (core_time**p + memory_time**p) ** (1.0 / p)


class TransmuterModel:
    """Analytic model of an M x N Transmuter system."""

    def __init__(
        self,
        n_tiles: int = params.DEFAULT_TILES,
        gpes_per_tile: int = params.DEFAULT_GPES_PER_TILE,
        bandwidth_gbps: float = params.DEFAULT_BANDWIDTH_GBPS,
        memory: Optional[MemorySystem] = None,
    ) -> None:
        if n_tiles < 1 or gpes_per_tile < 1:
            raise SimulationError("system geometry must be positive")
        self.n_tiles = n_tiles
        self.gpes_per_tile = gpes_per_tile
        self.memory = memory or MemorySystem(bandwidth_gbps)
        self.power = PowerModel(n_tiles, gpes_per_tile)

    # ------------------------------------------------------------------
    @property
    def n_gpes(self) -> int:
        return self.n_tiles * self.gpes_per_tile

    def describe(self) -> str:
        """Geometry summary, e.g. ``2x8 @ 1.0 GB/s``."""
        gbps = self.memory.bandwidth_bytes_per_s / 1e9
        return f"{self.n_tiles}x{self.gpes_per_tile} @ {gbps:g} GB/s"

    # ------------------------------------------------------------------
    # L1 model
    # ------------------------------------------------------------------
    def _l1_geometry(
        self, workload: EpochWorkload, config: HardwareConfig
    ):
        """Working set, capacity, and compulsory inflation at L1."""
        shared_frac = workload.shared_fraction
        total_ws = workload.live_set_bytes
        tiles = self.n_tiles
        gpes = self.gpes_per_tile
        if config.l1_sharing == "shared":
            # One logical cache per tile: shared data held once per tile.
            working_set = total_ws * ((1.0 - shared_frac) / tiles + shared_frac)
            capacity = config.l1_kb * 1024.0 * gpes
            inflation = (1.0 - shared_frac) + shared_frac * min(tiles, 2.0)
        else:
            # Private per GPE: shared data replicated into each L1.
            working_set = total_ws * (
                (1.0 - shared_frac) / (tiles * gpes) + shared_frac
            )
            capacity = config.l1_kb * 1024.0
            inflation = (1.0 - shared_frac) + shared_frac * min(
                gpes, params.REPLICATION_CAP_L1
            )
        return working_set, capacity, inflation

    def _model_l1(
        self, workload: EpochWorkload, config: HardwareConfig
    ) -> LevelBehaviour:
        working_set, capacity, inflation = self._l1_geometry(workload, config)
        if config.l1_type == "spm":
            return self._model_l1_spm(workload, working_set, capacity)
        inputs = LevelInputs(
            accesses=workload.accesses,
            unique_words=min(workload.unique_words * inflation, workload.accesses),
            unique_lines=min(
                workload.unique_lines * inflation,
                workload.unique_words * inflation,
            ),
            working_set_bytes=working_set,
            capacity_bytes=capacity,
            stride_fraction=workload.stride_fraction,
            prefetch=config.prefetch,
            sharers=self.gpes_per_tile if config.l1_sharing == "shared" else 1,
            reuse_locality=workload.reuse_locality,
        )
        return model_level(inputs)

    def _model_l1_spm(
        self,
        workload: EpochWorkload,
        working_set: float,
        capacity: float,
    ) -> LevelBehaviour:
        """Scratchpad L1: software maps the hot region; mapped accesses
        always hit, the rest bypass to L2. No hardware prefetch at L1
        (DMA orchestration is charged as extra int ops by the caller)."""
        mappable = working_set * params.SPM_MAPPABLE_FRACTION
        mapped_fraction = params.SPM_MAPPABLE_FRACTION * min(
            1.0, capacity / max(mappable, 1.0)
        )
        access_hit_fraction = min(
            0.98, mapped_fraction * params.SPM_HOT_ACCESS_BOOST
        )
        accesses = max(workload.accesses, 1e-9)
        hits = accesses * access_hit_fraction
        return LevelBehaviour(
            hits=hits,
            misses=accesses - hits,
            hit_rate=access_hit_fraction,
            residency=access_hit_fraction,
            occupancy=min(1.0, working_set / max(capacity, 1e-9)),
            prefetches_issued=0.0,
            prefetch_covered_lines=0.0,
            overfetch_lines=0.0,
        )

    # ------------------------------------------------------------------
    # L2 model
    # ------------------------------------------------------------------
    def _model_l2(
        self,
        workload: EpochWorkload,
        config: HardwareConfig,
        l1_misses: float,
    ) -> LevelBehaviour:
        shared_frac = workload.shared_fraction * params.TILE_SHARING_FACTOR
        total_ws = workload.live_set_bytes
        tiles = self.n_tiles
        if config.l2_sharing == "shared":
            working_set = total_ws
            capacity = config.l2_kb * 1024.0 * tiles
            inflation = 1.0
        else:
            working_set = total_ws * ((1.0 - shared_frac) / tiles + shared_frac)
            capacity = config.l2_kb * 1024.0
            inflation = (1.0 - shared_frac) + shared_frac * min(
                tiles, params.REPLICATION_CAP_L2
            )
        unique = min(workload.unique_lines * inflation, max(l1_misses, 1e-9))
        inputs = LevelInputs(
            accesses=max(l1_misses, 1e-9),
            unique_words=unique,
            unique_lines=unique,
            working_set_bytes=working_set,
            capacity_bytes=capacity,
            stride_fraction=workload.stride_fraction,
            prefetch=config.prefetch,
            sharers=self.n_tiles if config.l2_sharing == "shared" else 1,
            reuse_locality=workload.reuse_locality,
        )
        return model_level(inputs)

    # ------------------------------------------------------------------
    # Epoch simulation
    # ------------------------------------------------------------------
    def simulate_epoch(
        self,
        workload: EpochWorkload,
        config: HardwareConfig,
        environment: Optional[EpochEnvironment] = None,
    ) -> EpochResult:
        """Predict time, energy, and counters for one epoch.

        ``environment`` models transient machine events (bandwidth
        throttling, thermal clock clamps) the controller did not
        command; the epoch then runs under the *effective* conditions
        and its counters echo them. ``None`` (the default) is the
        healthy fast path and leaves the modeled numbers untouched.
        """
        with obs_profile.span("kernel_sim"):
            return self._simulate_epoch(workload, config, environment)

    def _simulate_epoch(
        self,
        workload: EpochWorkload,
        config: HardwareConfig,
        environment: Optional[EpochEnvironment] = None,
    ) -> EpochResult:
        memory = self.memory
        if environment is not None:
            config = environment.constrain(config)
            if environment.bandwidth_scale != 1.0:
                memory = memory.scaled(environment.bandwidth_scale)
        point = operating_point(config.clock_mhz)
        frequency_hz = config.clock_mhz * 1e6

        int_ops = workload.int_ops
        if config.l1_type == "spm":
            int_ops *= 1.0 + params.SPM_ORCHESTRATION_OVERHEAD
        instructions = workload.flops + int_ops + workload.accesses

        imbalance = 1.0 + min(
            params.IMBALANCE_CAP - 1.0,
            params.IMBALANCE_COEFF * workload.work_skew,
        )
        instructions_per_gpe = instructions / self.n_gpes * imbalance

        with obs_profile.span("cache_model"):
            l1 = self._model_l1(workload, config)
            l2 = self._model_l2(workload, config, l1.misses)

        # Crossbar layers: GPE->L1 within a tile, tile->L2 across tiles.
        xbar1 = model_crossbar(
            accesses=workload.accesses / self.n_tiles,
            busy_cycles=instructions_per_gpe,
            n_requesters=self.gpes_per_tile,
            n_banks=self.gpes_per_tile,
            shared=config.l1_sharing == "shared",
        )
        xbar2 = model_crossbar(
            accesses=l1.misses / max(self.n_tiles, 1),
            busy_cycles=instructions_per_gpe,
            n_requesters=self.n_tiles,
            n_banks=self.n_tiles,
            shared=config.l2_sharing == "shared",
        )

        # Stall cycles (global, then distributed over GPEs).
        dram_latency = memory.latency_cycles(config.clock_mhz)
        l2_hit_latency = params.L2_LATENCY + xbar2.extra_latency_cycles
        l2_hits = l1.misses * l2.hit_rate
        l2_misses = l1.misses - l2_hits
        covered = min(l2.prefetch_covered_lines, l2_misses)
        uncovered = l2_misses - covered
        stalls = (
            workload.accesses * xbar1.extra_latency_cycles
            + l2_hits * l2_hit_latency
            + covered * l2_hit_latency
            + uncovered * dram_latency
        )
        mlp = params.MLP * (
            params.MLP_STRIDE_FLOOR
            + params.MLP_STRIDE_SLOPE * workload.stride_fraction
        )
        stalls_per_gpe = stalls / self.n_gpes * imbalance / mlp

        cycles_per_gpe = instructions_per_gpe + stalls_per_gpe
        core_time = cycles_per_gpe / frequency_hz

        # DRAM traffic.
        line = params.CACHE_LINE_BYTES
        read_bytes = line * (
            l2.misses * params.REFETCH_LINE_FACTOR + l2.overfetch_lines
        )
        read_bytes = max(read_bytes, workload.read_bytes_compulsory)
        store_fraction = workload.stores / max(workload.accesses, 1e-9)
        evict_bytes = line * l2.misses * store_fraction * 0.5
        write_bytes = workload.write_bytes + evict_bytes

        memory_time = (read_bytes + write_bytes) / memory.bandwidth_bytes_per_s
        elapsed = _soft_roofline(core_time, memory_time)
        memory_io = memory.transfer(read_bytes, write_bytes, elapsed)

        with obs_profile.span("power_model"):
            energy = self.power.epoch_energy(
                config=config,
                point=point,
                elapsed_s=elapsed,
                core_ops=instructions,
                l1_accesses=workload.accesses + l1.prefetches_issued,
                l2_accesses=l1.misses + l2.prefetches_issued,
                xbar_transfers=xbar1.transfers * self.n_tiles
                + xbar2.transfers * self.n_tiles,
                dram_bytes=read_bytes + write_bytes,
            )

        counters = self._build_counters(
            workload=workload,
            config=config,
            point=point,
            l1=l1,
            l2=l2,
            xbar_contention=max(xbar1.contention_ratio, xbar2.contention_ratio),
            cycles_per_gpe=cycles_per_gpe,
            instructions_per_gpe=instructions_per_gpe,
            elapsed=elapsed,
            memory_io=memory_io,
        )
        recorder = get_recorder()
        if recorder.enabled:
            bandwidth_utilization = (
                memory_io.read_utilization + memory_io.write_utilization
            )
            recorder.event(
                "machine.epoch",
                phase=workload.phase,
                config=config.describe(),
                time_s=elapsed,
                core_time_s=core_time,
                memory_time_s=memory_time,
                l1_hit_rate=l1.hit_rate,
                l2_hit_rate=l2.hit_rate,
                dram_read_utilization=memory_io.read_utilization,
                dram_write_utilization=memory_io.write_utilization,
                bandwidth_saturated=bool(
                    bandwidth_utilization >= params.BANDWIDTH_SATURATION_THRESHOLD
                ),
            )
            obs_metrics.counter(
                "machine.epochs_simulated", "simulate_epoch invocations"
            ).inc()
            obs_metrics.gauge(
                "machine.l1_hit_rate", "L1 hit rate of the last simulated epoch"
            ).set(l1.hit_rate)
            obs_metrics.gauge(
                "machine.l2_hit_rate", "L2 hit rate of the last simulated epoch"
            ).set(l2.hit_rate)
            if bandwidth_utilization >= params.BANDWIDTH_SATURATION_THRESHOLD:
                obs_metrics.counter(
                    "machine.bandwidth_saturated_epochs",
                    "epochs whose DRAM read+write utilization crossed the "
                    "saturation threshold",
                ).inc()
        return EpochResult(
            time_s=elapsed,
            energy=energy,
            counters=counters,
            core_time_s=core_time,
            memory_time_s=memory_time,
            dram_read_bytes=read_bytes,
            dram_write_bytes=write_bytes,
            flops=workload.flops,
            fp_ops=workload.fp_ops,
        )

    # ------------------------------------------------------------------
    def _build_counters(
        self,
        workload: EpochWorkload,
        config: HardwareConfig,
        point: OperatingPoint,
        l1: LevelBehaviour,
        l2: LevelBehaviour,
        xbar_contention: float,
        cycles_per_gpe: float,
        instructions_per_gpe: float,
        elapsed: float,
        memory_io,
    ) -> PerformanceCounters:
        cycles = max(cycles_per_gpe, 1e-9)
        n_l1_banks = self.n_gpes
        n_l2_banks = self.n_tiles
        accesses = workload.accesses
        gpe_ipc = min(1.0, instructions_per_gpe / cycles)
        fp_per_gpe = workload.fp_ops / self.n_gpes
        gpe_fp_ipc = min(gpe_ipc, fp_per_gpe / cycles)
        lcp_instr = (
            workload.instructions
            * params.LCP_WORK_FRACTION
            * (1.0 + workload.work_skew)
            / self.n_tiles
        )
        lcp_ipc = min(1.0, lcp_instr / cycles)
        return PerformanceCounters(
            l1_access_rate=accesses / cycles / n_l1_banks,
            l1_occupancy=l1.occupancy,
            l1_miss_rate=1.0 - l1.hit_rate,
            l1_prefetch_ratio=l1.prefetches_issued / max(accesses, 1e-9),
            l1_capacity_kb=float(config.l1_kb),
            l2_access_rate=l1.misses / cycles / n_l2_banks,
            l2_occupancy=l2.occupancy,
            l2_miss_rate=1.0 - l2.hit_rate,
            l2_prefetch_ratio=l2.prefetches_issued / max(l1.misses, 1e-9),
            l2_capacity_kb=float(config.l2_kb),
            xbar_contention_ratio=xbar_contention,
            gpe_ipc=gpe_ipc,
            gpe_fp_ipc=gpe_fp_ipc,
            lcp_ipc=lcp_ipc,
            lcp_fp_ipc=lcp_ipc * 0.4,
            clock_mhz=config.clock_mhz,
            dram_read_utilization=memory_io.read_utilization,
            dram_write_utilization=memory_io.write_utilization,
        )
