"""Dynamic voltage-frequency scaling model (paper Section 3.2.1).

The clock divider produces frequencies ``f/2 .. f/2^N`` from the nominal
clock ``f``. The target voltage follows the alpha-power law the paper
states::

    f / f_target = [(VDD - Vt)^2 / VDD] / [(V_target - Vt)^2 / V_target]

with ``V_target`` clamped to ``1.3 * Vt`` for functional correctness.
Total power is scaled by ``(V_target / VDD)^2``; we additionally scale
leakage linearly with voltage (leakage reduces roughly proportionally
with supply in the near-threshold region this model covers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.transmuter import params

__all__ = [
    "OperatingPoint",
    "voltage_for_frequency",
    "operating_point",
    "clamp_frequency",
]


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved DVFS state."""

    frequency_mhz: float
    voltage: float
    dynamic_scale: float  # multiply dynamic energy/event by this
    leakage_scale: float  # multiply leakage power by this


def voltage_for_frequency(
    frequency_mhz: float,
    nominal_mhz: float = params.F_NOMINAL_MHZ,
    vdd: float = params.VDD_NOMINAL,
    v_threshold: float = params.V_THRESHOLD,
) -> float:
    """Supply voltage needed for ``frequency_mhz``, volts.

    Solves the paper's equation for the target voltage. Writing
    ``k = (f_target / f) * (VDD - Vt)^2 / VDD`` the equation becomes
    ``(V - Vt)^2 / V = k``, i.e. ``V^2 - (2 Vt + k) V + Vt^2 = 0``; the
    physical (larger) root is taken and clamped to ``1.3 Vt``.
    """
    if frequency_mhz <= 0:
        raise ConfigError("frequency must be positive")
    if frequency_mhz > nominal_mhz:
        raise ConfigError(
            f"frequency {frequency_mhz} MHz exceeds nominal {nominal_mhz} MHz"
        )
    k = (frequency_mhz / nominal_mhz) * (vdd - v_threshold) ** 2 / vdd
    half_b = (2.0 * v_threshold + k) / 2.0
    root = half_b + math.sqrt(max(half_b * half_b - v_threshold**2, 0.0))
    return max(root, params.V_MIN_RATIO * v_threshold)


def clamp_frequency(frequency_mhz: float, cap_mhz: float) -> float:
    """The frequency actually delivered under a thermal DVFS clamp.

    A clamp window caps the clock divider: the machine runs at the
    commanded frequency when it is at or below the cap, otherwise at
    the cap itself (the clamp hardware selects the fastest allowed
    divider setting, and every cap used by the fault model is itself a
    Table-1 clock step).
    """
    if cap_mhz <= 0:
        raise ConfigError(f"clamp frequency must be positive, got {cap_mhz}")
    return min(frequency_mhz, cap_mhz)


def operating_point(frequency_mhz: float) -> OperatingPoint:
    """Resolve frequency into voltage and power scale factors."""
    voltage = voltage_for_frequency(frequency_mhz)
    ratio = voltage / params.VDD_NOMINAL
    return OperatingPoint(
        frequency_mhz=frequency_mhz,
        voltage=voltage,
        dynamic_scale=ratio * ratio,
        leakage_scale=ratio,
    )
