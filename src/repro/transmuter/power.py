"""Power and energy estimator.

Mirrors the paper's estimator built from RTL synthesis reports
(crossbars), Arm specifications (cores), and CACTI (SRAM), scaled to
14 nm (Section 5.2). Dynamic energy is per-event and scales with
``(V/VDD)^2`` under DVFS; leakage is proportional to provisioned
hardware and scales with ``V/VDD``, paid over wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.transmuter import params
from repro.transmuter.config import HardwareConfig
from repro.transmuter.dvfs import OperatingPoint

__all__ = ["EnergyBreakdown", "PowerModel"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy of one epoch, joules."""

    core_dynamic: float
    l1_dynamic: float
    l2_dynamic: float
    xbar_dynamic: float
    dram: float
    leakage: float

    @property
    def total(self) -> float:
        return (
            self.core_dynamic
            + self.l1_dynamic
            + self.l2_dynamic
            + self.xbar_dynamic
            + self.dram
            + self.leakage
        )

    @property
    def on_chip(self) -> float:
        return self.total - self.dram


def _sram_access_energy(base: float, capacity_kb: float) -> float:
    """CACTI-like access-energy scaling with bank capacity."""
    return base * (capacity_kb / 4.0) ** params.SRAM_ENERGY_EXPONENT


class PowerModel:
    """Energy accounting for a Transmuter system of a given geometry."""

    def __init__(
        self,
        n_tiles: int = params.DEFAULT_TILES,
        gpes_per_tile: int = params.DEFAULT_GPES_PER_TILE,
    ) -> None:
        if n_tiles < 1 or gpes_per_tile < 1:
            raise SimulationError("system geometry must be positive")
        self.n_tiles = n_tiles
        self.gpes_per_tile = gpes_per_tile

    # ------------------------------------------------------------------
    @property
    def n_gpes(self) -> int:
        return self.n_tiles * self.gpes_per_tile

    @property
    def n_cores(self) -> int:
        """GPEs plus one LCP per tile."""
        return self.n_gpes + self.n_tiles

    def provisioned_l1_kb(self, config: HardwareConfig) -> float:
        """Total L1 SRAM: one bank per GPE."""
        return config.l1_kb * self.n_gpes

    def provisioned_l2_kb(self, config: HardwareConfig) -> float:
        """Total L2 SRAM: one bank per tile."""
        return config.l2_kb * self.n_tiles

    # ------------------------------------------------------------------
    def leakage_power(
        self, config: HardwareConfig, point: OperatingPoint
    ) -> float:
        """Static power of the configured system, watts."""
        l1_factor = (
            params.SPM_LEAK_FACTOR if config.l1_type == "spm" else 1.0
        )
        sram_leak = params.P_LEAK_SRAM_PER_KB * (
            self.provisioned_l1_kb(config) * l1_factor
            + self.provisioned_l2_kb(config)
        )
        core_leak = params.P_LEAK_CORE * self.n_cores
        return (
            core_leak + sram_leak + params.P_LEAK_PLATFORM
        ) * point.leakage_scale

    def epoch_energy(
        self,
        config: HardwareConfig,
        point: OperatingPoint,
        elapsed_s: float,
        core_ops: float,
        l1_accesses: float,
        l2_accesses: float,
        xbar_transfers: float,
        dram_bytes: float,
    ) -> EnergyBreakdown:
        """Total energy of one epoch from event counts and duration."""
        if elapsed_s < 0:
            raise SimulationError("negative epoch duration")
        scale = point.dynamic_scale
        l1_energy = _sram_access_energy(params.E_L1_BASE, config.l1_kb)
        if config.l1_type == "spm":
            l1_energy *= params.SPM_ENERGY_FACTOR
        l2_energy = _sram_access_energy(params.E_L2_BASE, config.l2_kb)
        return EnergyBreakdown(
            core_dynamic=core_ops * params.E_CORE_OP * scale,
            l1_dynamic=l1_accesses * l1_energy * scale,
            l2_dynamic=l2_accesses * l2_energy * scale,
            xbar_dynamic=xbar_transfers * params.E_XBAR_TRANSFER * scale,
            dram=dram_bytes * params.E_DRAM_BYTE,
            leakage=self.leakage_power(config, point) * elapsed_s,
        )
