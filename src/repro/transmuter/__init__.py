"""Analytical model of the Transmuter reconfigurable accelerator.

Public API::

    from repro.transmuter import (
        HardwareConfig, TransmuterModel, EpochWorkload, EpochResult,
        PerformanceCounters, reconfiguration_cost,
    )
"""

from repro.transmuter import params
from repro.transmuter.cache import SetAssociativeCache, StridePrefetcher
from repro.transmuter.config import (
    CAPACITIES_KB,
    CLOCKS_MHZ,
    PREFETCH_LEVELS,
    RUNTIME_PARAMETERS,
    HardwareConfig,
    full_space,
    neighbors,
    runtime_space,
    sample_configs,
    space_size,
)
from repro.transmuter.counters import (
    COUNTER_GROUPS,
    ECHO_COUNTERS,
    PLAUSIBLE_BOUNDS,
    PerformanceCounters,
)
from repro.transmuter.detailed import (
    DetailedResult,
    simulate_epoch_detailed,
    synthesize_trace,
)
from repro.transmuter.dvfs import (
    OperatingPoint,
    clamp_frequency,
    operating_point,
    voltage_for_frequency,
)
from repro.transmuter.machine import (
    EpochEnvironment,
    EpochResult,
    TransmuterModel,
)
from repro.transmuter.memory import MemorySystem
from repro.transmuter.power import EnergyBreakdown, PowerModel
from repro.transmuter.reconfig import (
    AppliedTransition,
    ReconfigCost,
    apply_transition,
    change_granularity,
    changed_parameters,
    parameter_change_cost,
    reconfiguration_cost,
)
from repro.transmuter.workload import (
    PHASE_CONV,
    PHASE_GEMM,
    PHASE_MERGE,
    PHASE_MULTIPLY,
    PHASE_SPMSPV,
    EpochWorkload,
)

__all__ = [
    "params",
    "EpochEnvironment",
    "ECHO_COUNTERS",
    "PLAUSIBLE_BOUNDS",
    "AppliedTransition",
    "apply_transition",
    "clamp_frequency",
    "HardwareConfig",
    "full_space",
    "runtime_space",
    "sample_configs",
    "space_size",
    "neighbors",
    "RUNTIME_PARAMETERS",
    "CAPACITIES_KB",
    "CLOCKS_MHZ",
    "PREFETCH_LEVELS",
    "PerformanceCounters",
    "COUNTER_GROUPS",
    "OperatingPoint",
    "operating_point",
    "voltage_for_frequency",
    "TransmuterModel",
    "EpochResult",
    "EpochWorkload",
    "MemorySystem",
    "PowerModel",
    "EnergyBreakdown",
    "SetAssociativeCache",
    "StridePrefetcher",
    "DetailedResult",
    "simulate_epoch_detailed",
    "synthesize_trace",
    "ReconfigCost",
    "reconfiguration_cost",
    "parameter_change_cost",
    "changed_parameters",
    "change_granularity",
    "PHASE_MULTIPLY",
    "PHASE_MERGE",
    "PHASE_SPMSPV",
    "PHASE_GEMM",
    "PHASE_CONV",
]
