"""Hardware configuration space (paper Table 1).

Seven parameters describe a Transmuter configuration:

=====================  ==========================  =====
Parameter              Values                      Count
=====================  ==========================  =====
L1 R-DCache type       cache, spm (compile-time)       2
L1 sharing mode        shared, private                 2
L2 sharing mode        shared, private                 2
L1 bank capacity       4..64 kB, x2 steps              5
L2 bank capacity       4..64 kB, x2 steps              5
System clock           31.25..1000 MHz, x2 steps       6
Prefetcher aggr.       0 (off), 4, 8                   3
=====================  ==========================  =====

Total: 3600 configurations. The L1 type is fixed at compile time
(Section 3.4), and the L1 capacity is not varied in SPM mode (Table 1
footnote), so the *runtime* space predicted by SparseAdapt has six
dimensions for cache mode and five for SPM mode.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "L1_TYPES",
    "SHARING_MODES",
    "CAPACITIES_KB",
    "CLOCKS_MHZ",
    "PREFETCH_LEVELS",
    "RUNTIME_PARAMETERS",
    "SPM_FIXED_L1_KB",
    "HardwareConfig",
    "full_space",
    "runtime_space",
    "space_size",
    "sample_configs",
    "neighbors",
]

L1_TYPES: Tuple[str, ...] = ("cache", "spm")
SHARING_MODES: Tuple[str, ...] = ("shared", "private")
CAPACITIES_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)
CLOCKS_MHZ: Tuple[float, ...] = (31.25, 62.5, 125.0, 250.0, 500.0, 1000.0)
PREFETCH_LEVELS: Tuple[int, ...] = (0, 4, 8)

#: The six parameters SparseAdapt predicts at runtime (Section 3.4: the
#: L1 memory type is selected by the compiler).
RUNTIME_PARAMETERS: Tuple[str, ...] = (
    "l1_sharing",
    "l2_sharing",
    "l1_kb",
    "l2_kb",
    "clock_mhz",
    "prefetch",
)

#: L1 bank capacity used when the L1 is a scratchpad (Table 1 footnote:
#: not varied in SPM mode; Table 4's Best-Avg SPM row uses 4 kB banks).
SPM_FIXED_L1_KB = 4

_ORDINAL_VALUES: Dict[str, Sequence] = {
    "l1_kb": CAPACITIES_KB,
    "l2_kb": CAPACITIES_KB,
    "clock_mhz": CLOCKS_MHZ,
    "prefetch": PREFETCH_LEVELS,
}
_CATEGORICAL_VALUES: Dict[str, Sequence] = {
    "l1_sharing": SHARING_MODES,
    "l2_sharing": SHARING_MODES,
}


@dataclass(frozen=True)
class HardwareConfig:
    """One point of the Table-1 configuration space.

    Instances are immutable and hashable so they can key oracle DP tables
    and training-set dictionaries.
    """

    l1_type: str = "cache"
    l1_sharing: str = "shared"
    l2_sharing: str = "shared"
    l1_kb: int = 4
    l2_kb: int = 4
    clock_mhz: float = 1000.0
    prefetch: int = 4

    def __post_init__(self) -> None:
        if self.l1_type not in L1_TYPES:
            raise ConfigError(f"bad l1_type {self.l1_type!r}")
        if self.l1_sharing not in SHARING_MODES:
            raise ConfigError(f"bad l1_sharing {self.l1_sharing!r}")
        if self.l2_sharing not in SHARING_MODES:
            raise ConfigError(f"bad l2_sharing {self.l2_sharing!r}")
        if self.l1_kb not in CAPACITIES_KB:
            raise ConfigError(f"bad l1_kb {self.l1_kb!r}")
        if self.l2_kb not in CAPACITIES_KB:
            raise ConfigError(f"bad l2_kb {self.l2_kb!r}")
        if self.clock_mhz not in CLOCKS_MHZ:
            raise ConfigError(f"bad clock_mhz {self.clock_mhz!r}")
        if self.prefetch not in PREFETCH_LEVELS:
            raise ConfigError(f"bad prefetch {self.prefetch!r}")

    # ------------------------------------------------------------------
    def get(self, parameter: str):
        """Value of one named parameter."""
        if not hasattr(self, parameter):
            raise ConfigError(f"unknown parameter {parameter!r}")
        return getattr(self, parameter)

    def with_value(self, parameter: str, value) -> "HardwareConfig":
        """Copy with one parameter replaced (validated)."""
        if not hasattr(self, parameter):
            raise ConfigError(f"unknown parameter {parameter!r}")
        return replace(self, **{parameter: value})

    def as_features(self) -> np.ndarray:
        """Numeric encoding of the runtime parameters for the predictor.

        Sharing modes encode as 0/1; capacities and clocks as log2 of
        the value so steps are uniform; the prefetch level stays raw.
        """
        return np.array(
            [
                float(SHARING_MODES.index(self.l1_sharing)),
                float(SHARING_MODES.index(self.l2_sharing)),
                float(np.log2(self.l1_kb)),
                float(np.log2(self.l2_kb)),
                float(np.log2(self.clock_mhz)),
                float(self.prefetch),
            ]
        )

    @staticmethod
    def feature_names() -> List[str]:
        """Names parallel to :meth:`as_features`."""
        return [f"cfg_{name}" for name in RUNTIME_PARAMETERS]

    def describe(self) -> str:
        """Short human-readable summary."""
        return (
            f"L1={self.l1_kb}kB/{self.l1_sharing}/{self.l1_type} "
            f"L2={self.l2_kb}kB/{self.l2_sharing} "
            f"f={self.clock_mhz:g}MHz pf={self.prefetch}"
        )


def full_space() -> Iterator[HardwareConfig]:
    """Iterate over all 3600 configurations of Table 1."""
    for values in itertools.product(
        L1_TYPES,
        SHARING_MODES,
        SHARING_MODES,
        CAPACITIES_KB,
        CAPACITIES_KB,
        CLOCKS_MHZ,
        PREFETCH_LEVELS,
    ):
        yield HardwareConfig(*values)


def space_size() -> int:
    """Size of the full Table-1 space (3600)."""
    return (
        len(L1_TYPES)
        * len(SHARING_MODES) ** 2
        * len(CAPACITIES_KB) ** 2
        * len(CLOCKS_MHZ)
        * len(PREFETCH_LEVELS)
    )


def runtime_space(l1_type: str = "cache") -> List[HardwareConfig]:
    """All configurations reachable at runtime for a compiled L1 type.

    Cache mode varies all six runtime parameters (1800 points); SPM mode
    pins the L1 capacity (360 points).
    """
    if l1_type not in L1_TYPES:
        raise ConfigError(f"bad l1_type {l1_type!r}")
    l1_choices = CAPACITIES_KB if l1_type == "cache" else (SPM_FIXED_L1_KB,)
    return [
        HardwareConfig(l1_type, l1s, l2s, l1_kb, l2_kb, clk, pf)
        for l1s in SHARING_MODES
        for l2s in SHARING_MODES
        for l1_kb in l1_choices
        for l2_kb in CAPACITIES_KB
        for clk in CLOCKS_MHZ
        for pf in PREFETCH_LEVELS
    ]


#: Fast-path memo for seeded samples (the sample is a pure function of
#: its arguments when a seed is given).
_SAMPLE_MEMO: Dict[tuple, tuple] = {}


def sample_configs(
    count: int,
    l1_type: str = "cache",
    seed: Optional[int] = None,
    include: Sequence[HardwareConfig] = (),
) -> List[HardwareConfig]:
    """Sample ``count`` distinct runtime configurations.

    ``include`` forces specific configurations (e.g. the static baselines)
    into the sample so comparisons share the same evaluated set, matching
    the paper's S=256 sampled space (Appendix A.7).
    """
    from repro import fastpath

    memo_key = None
    if seed is not None and fastpath.enabled():
        memo_key = (count, l1_type, seed, tuple(include))
        cached = _SAMPLE_MEMO.get(memo_key)
        if cached is not None:
            return list(cached)
    space = runtime_space(l1_type)
    forced = [cfg for cfg in include if cfg in set(space)]
    rng = np.random.default_rng(seed)
    remaining = [cfg for cfg in space if cfg not in set(forced)]
    count = min(count, len(space))
    extra = max(0, count - len(forced))
    picked_idx = rng.choice(len(remaining), size=extra, replace=False)
    sample = forced + [remaining[i] for i in picked_idx]
    sample = sample[:count] if len(sample) > count else sample
    if memo_key is not None:
        if len(_SAMPLE_MEMO) >= 256:
            _SAMPLE_MEMO.clear()
        _SAMPLE_MEMO[memo_key] = tuple(sample)
    return sample


def neighbors(config: HardwareConfig, runtime_only: bool = True) -> List[HardwareConfig]:
    """Single-step neighborhood of a configuration.

    Ordinal parameters move one step up/down their value ladder;
    categorical parameters flip. This is the "m-dimensional hyper-sphere"
    explored during training-set construction (Figure 4a, step 2).
    """
    out: List[HardwareConfig] = []
    for name, values in _ORDINAL_VALUES.items():
        if runtime_only and config.l1_type == "spm" and name == "l1_kb":
            continue
        current = config.get(name)
        position = list(values).index(current)
        for step in (-1, 1):
            neighbor_pos = position + step
            if 0 <= neighbor_pos < len(values):
                out.append(config.with_value(name, values[neighbor_pos]))
    for name, values in _CATEGORICAL_VALUES.items():
        current = config.get(name)
        for value in values:
            if value != current:
                out.append(config.with_value(name, value))
    return out
