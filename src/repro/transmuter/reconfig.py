"""Reconfiguration cost model (paper Sections 3.4 and 5.2).

Configuration changes fall into the paper's taxonomy:

* **Super fine-grained** — clock frequency, prefetcher aggressiveness,
  and *increases* of a cache capacity: a small fixed cost (100 cycles),
  since the sub-banked R-DCache can grow without invalidation.
* **Fine-grained** — capacity *decreases* and sharing-mode changes:
  require flushing the affected layer, pessimistically assuming every
  line is dirty. L1 banks flush to L2 through the tile crossbars; L2
  banks flush to main memory at the off-chip bandwidth (the paper's
  100-961k cycles / up to 157 uJ for L1 and 100-122k cycles / up to
  22 uJ for L2 at 1 GB/s fall out of the same arithmetic). Cores,
  ICaches, queues and the synchronization SPM are power-gated while
  flushing.
* **Coarse-grained** — the L1 memory type (cache vs. SPM) changes the
  compiled code and is never reconfigured at runtime in the baseline
  design. The Section-7 extension (Stash-like dynamic memory-mode
  switching) is supported behind ``allow_memory_mode=True``, priced as
  a checkpoint + code switch + full L1 re-orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs import profile as obs_profile
from repro.transmuter import params
from repro.transmuter.config import RUNTIME_PARAMETERS, HardwareConfig
from repro.transmuter.dvfs import operating_point
from repro.transmuter.power import PowerModel

__all__ = [
    "GRANULARITY_SUPER_FINE",
    "GRANULARITY_FINE",
    "GRANULARITY_COARSE",
    "AppliedTransition",
    "ReconfigCost",
    "changed_parameters",
    "change_granularity",
    "reconfiguration_cost",
    "apply_transition",
    "parameter_change_cost",
]

GRANULARITY_SUPER_FINE = "super-fine"
GRANULARITY_FINE = "fine"
GRANULARITY_COARSE = "coarse"

#: Effective internal flush throughput, bytes per cycle, for draining the
#: L1 layer into L2 (single drain path through the tile crossbars).
L1_FLUSH_BYTES_PER_CYCLE = 1.0

#: Flush energy per byte moved. L1 -> L2 stays on chip (SRAM read +
#: crossbar + SRAM write); L2 -> memory pays the off-chip byte cost.
#: Gated leakage during the flush window is charged separately.
E_FLUSH_L1_BYTE = 15e-12
E_FLUSH_L2_BYTE = 50e-12

#: Coarse-grained memory-mode (cache <-> SPM) switch: checkpointing the
#: kernel state, swapping the code version on the GPEs/LCPs, and
#: re-orchestrating SPM contents (a Stash-like mechanism, paper
#: Section 7). Charged on top of a full L1 flush, cycles at nominal.
MEMORY_MODE_SWITCH_CYCLES = 50_000


@dataclass(frozen=True)
class ReconfigCost:
    """Time and energy cost of one configuration transition."""

    time_s: float
    energy_j: float
    flushed_l1: bool
    flushed_l2: bool
    changed: Tuple[str, ...]

    @property
    def is_free(self) -> bool:
        return not self.changed


def changed_parameters(
    old: HardwareConfig,
    new: HardwareConfig,
    allow_memory_mode: bool = False,
) -> List[str]:
    """Runtime parameters that differ between two configurations.

    The L1 memory type is compile-time only in the baseline SparseAdapt
    design (Section 3.4); pass ``allow_memory_mode=True`` to permit the
    Section-7 extension (dynamic cache <-> SPM switching via a
    Stash-like mechanism), in which case ``l1_type`` is reported as a
    changed parameter.
    """
    changed = []
    if old.l1_type != new.l1_type:
        if not allow_memory_mode:
            raise ConfigError(
                "the L1 memory type is compile-time only and cannot be "
                "reconfigured at runtime (coarse-grained parameter)"
            )
        changed.append("l1_type")
    changed += [
        name
        for name in RUNTIME_PARAMETERS
        if old.get(name) != new.get(name)
    ]
    return changed


def change_granularity(
    old: HardwareConfig, new: HardwareConfig, parameter: str
) -> str:
    """Taxonomy class of changing one parameter between two configs."""
    if parameter == "l1_type":
        return GRANULARITY_COARSE
    if parameter in ("clock_mhz", "prefetch"):
        return GRANULARITY_SUPER_FINE
    if parameter in ("l1_kb", "l2_kb"):
        # Growing a sub-banked cache costs only the fixed latch update;
        # shrinking evicts (flushes) the disabled sub-banks.
        if new.get(parameter) >= old.get(parameter):
            return GRANULARITY_SUPER_FINE
        return GRANULARITY_FINE
    if parameter in ("l1_sharing", "l2_sharing"):
        return GRANULARITY_FINE
    raise ConfigError(f"unknown parameter {parameter!r}")


def _flush_requirements(
    old: HardwareConfig, new: HardwareConfig, changed: List[str]
) -> Tuple[bool, bool]:
    """Which layers must be flushed for this transition."""
    flush_l1 = False
    flush_l2 = False
    for name in changed:
        if change_granularity(old, new, name) != GRANULARITY_FINE:
            continue
        if name in ("l1_kb", "l1_sharing"):
            flush_l1 = True
        else:
            flush_l2 = True
    # A scratchpad L1 holds software-managed data; privatization changes
    # still require re-orchestration, treated as an L1 flush as well.
    return flush_l1, flush_l2


#: Process-wide transition-cost memo (fast path only). Bounded: cleared
#: wholesale if it ever grows past the cap (a campaign's working set —
#: config pairs x a handful of dirty-byte hints — stays far below it).
_COST_MEMO: Dict[tuple, "ReconfigCost"] = {}
_COST_MEMO_MAX = 1 << 17


def reconfiguration_cost(
    old: HardwareConfig,
    new: HardwareConfig,
    power: PowerModel,
    bandwidth_gbps: float = params.DEFAULT_BANDWIDTH_GBPS,
    dirty_bytes_hint: Optional[float] = None,
    allow_memory_mode: bool = False,
) -> ReconfigCost:
    """Total cost of switching from ``old`` to ``new``.

    Flushes run at the flush operating point the host looks up
    (Section 5.2) — the nominal clock, since draining caches as fast as
    possible minimizes the gated-leakage window. ``dirty_bytes_hint``
    bounds the dirty data per layer (e.g. the bytes actually written
    since the last flush); without it the paper's pessimistic
    everything-is-dirty assumption applies to the full provisioned
    capacity.
    """
    from repro import fastpath

    if fastpath.enabled():
        # The cost is a pure function of its (hashable) inputs, and
        # campaigns re-evaluate the same transitions thousands of times
        # (transition matrices, per-epoch policy checks) — memoize
        # process-wide. ReconfigCost is frozen, so sharing is safe.
        key = (
            old,
            new,
            power.n_tiles,
            power.gpes_per_tile,
            bandwidth_gbps,
            dirty_bytes_hint,
            allow_memory_mode,
        )
        cached = _COST_MEMO.get(key)
        if cached is not None:
            return cached
        with obs_profile.span("reconfig"):
            cost = _reconfiguration_cost(
                old, new, power, bandwidth_gbps, dirty_bytes_hint,
                allow_memory_mode,
            )
        if len(_COST_MEMO) >= _COST_MEMO_MAX:
            _COST_MEMO.clear()
        _COST_MEMO[key] = cost
        return cost
    with obs_profile.span("reconfig"):
        return _reconfiguration_cost(
            old, new, power, bandwidth_gbps, dirty_bytes_hint,
            allow_memory_mode,
        )


def _reconfiguration_cost(
    old: HardwareConfig,
    new: HardwareConfig,
    power: PowerModel,
    bandwidth_gbps: float,
    dirty_bytes_hint: Optional[float],
    allow_memory_mode: bool,
) -> ReconfigCost:
    changed = changed_parameters(old, new, allow_memory_mode)
    if not changed:
        return ReconfigCost(0.0, 0.0, False, False, ())
    point = operating_point(new.clock_mhz)
    frequency_hz = new.clock_mhz * 1e6
    flush_hz = params.F_NOMINAL_MHZ * 1e6

    time_s = params.RECONFIG_FIXED_CYCLES / frequency_hz
    energy_j = (
        params.RECONFIG_FIXED_CYCLES
        * params.E_CORE_OP
        * point.dynamic_scale
    )

    memory_mode_switch = "l1_type" in changed
    if memory_mode_switch:
        switch_time = MEMORY_MODE_SWITCH_CYCLES / flush_hz
        time_s += switch_time
        energy_j += (
            MEMORY_MODE_SWITCH_CYCLES
            * params.E_CORE_OP
            * power.n_cores
            * point.dynamic_scale
        )

    flush_l1, flush_l2 = _flush_requirements(
        old, new, [name for name in changed if name != "l1_type"]
    )
    if memory_mode_switch:
        flush_l1 = True  # re-orchestrating the L1 contents
    leak_w = (
        power.leakage_power(old, point) * params.FLUSH_GATED_LEAK_FRACTION
    )
    if flush_l1:
        dirty_bytes = (
            power.provisioned_l1_kb(old) * 1024.0 * params.FLUSH_DIRTY_FRACTION
        )
        if dirty_bytes_hint is not None:
            dirty_bytes = min(dirty_bytes, dirty_bytes_hint)
        flush_cycles = dirty_bytes / L1_FLUSH_BYTES_PER_CYCLE
        flush_time = flush_cycles / flush_hz
        time_s += flush_time
        energy_j += dirty_bytes * E_FLUSH_L1_BYTE + leak_w * flush_time
    if flush_l2:
        dirty_bytes = (
            power.provisioned_l2_kb(old) * 1024.0 * params.FLUSH_DIRTY_FRACTION
        )
        if dirty_bytes_hint is not None:
            dirty_bytes = min(dirty_bytes, dirty_bytes_hint)
        flush_time = dirty_bytes / (bandwidth_gbps * 1e9)
        time_s += flush_time
        energy_j += dirty_bytes * E_FLUSH_L2_BYTE + leak_w * flush_time
    return ReconfigCost(
        time_s=time_s,
        energy_j=energy_j,
        flushed_l1=flush_l1,
        flushed_l2=flush_l2,
        changed=tuple(changed),
    )


@dataclass(frozen=True)
class AppliedTransition:
    """Outcome of commanding a configuration transition.

    ``actual`` is the configuration the hardware ends up in — equal to
    ``requested`` on a healthy machine, but under fault injection some
    commanded parameter changes can silently fail to land (``dropped``),
    in which case those parameters keep their old values. The cost is
    computed on the *actual* transition: a change that never happened
    is not paid for.
    """

    requested: HardwareConfig
    actual: HardwareConfig
    cost: ReconfigCost
    dropped: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every commanded change landed."""
        return not self.dropped


def apply_transition(
    old: HardwareConfig,
    requested: HardwareConfig,
    power: PowerModel,
    bandwidth_gbps: float = params.DEFAULT_BANDWIDTH_GBPS,
    dirty_bytes_hint: Optional[float] = None,
    drop_parameters: Tuple[str, ...] = (),
    allow_memory_mode: bool = False,
) -> AppliedTransition:
    """Command a transition and report what the hardware actually did.

    ``drop_parameters`` names runtime parameters whose commanded change
    silently fails (supplied by a fault injector); they revert to their
    ``old`` values in the resulting configuration. Without drops this
    is :func:`reconfiguration_cost` wrapped in an
    :class:`AppliedTransition`.
    """
    actual = requested
    dropped = tuple(
        name
        for name in drop_parameters
        if old.get(name) != requested.get(name)
    )
    for name in dropped:
        actual = actual.with_value(name, old.get(name))
    cost = reconfiguration_cost(
        old,
        actual,
        power,
        bandwidth_gbps,
        dirty_bytes_hint=dirty_bytes_hint,
        allow_memory_mode=allow_memory_mode,
    )
    return AppliedTransition(
        requested=requested, actual=actual, cost=cost, dropped=dropped
    )


def parameter_change_cost(
    old: HardwareConfig,
    new: HardwareConfig,
    parameter: str,
    power: PowerModel,
    bandwidth_gbps: float = params.DEFAULT_BANDWIDTH_GBPS,
    dirty_bytes_hint: Optional[float] = None,
) -> ReconfigCost:
    """Cost of changing a *single* parameter (for per-knob policies)."""
    if old.get(parameter) == new.get(parameter):
        return ReconfigCost(0.0, 0.0, False, False, ())
    isolated = old.with_value(parameter, new.get(parameter))
    return reconfiguration_cost(
        old, isolated, power, bandwidth_gbps, dirty_bytes_hint
    )


def host_decision_overhead_s() -> float:
    """Telemetry + inference + command time on the host per epoch."""
    return params.HOST_DECISION_CYCLES / (params.HOST_CLOCK_MHZ * 1e6)


def cost_summary(cost: ReconfigCost) -> Dict[str, float]:
    """Loggable summary of a transition cost."""
    return {
        "time_us": cost.time_s * 1e6,
        "energy_uj": cost.energy_j * 1e6,
        "flushed_l1": float(cost.flushed_l1),
        "flushed_l2": float(cost.flushed_l2),
        "n_changed": float(len(cost.changed)),
    }
