"""Trace-driven detailed cache-hierarchy simulation.

The analytic machine model predicts hit rates from per-epoch
aggregates; this module provides the independent check: it *expands*
an :class:`~repro.transmuter.workload.EpochWorkload` back into a
synthetic word-granular address trace with the same aggregate
statistics (distinct words/lines, reuse mix, stride/scatter split,
streaming output) and replays it through the line-accurate
:class:`~repro.transmuter.cache.SetAssociativeCache` hierarchy.

It is the gem5-fidelity escape hatch for small workloads: slow
(every access simulated) but assumption-free past the trace synthesis.
`tests/test_detailed_sim.py` uses it to validate the analytic model's
per-level hit rates on real kernel epochs, closing the loop the
paper's gem5 infrastructure closed with RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.transmuter import params
from repro.transmuter.cache import SetAssociativeCache, StridePrefetcher
from repro.transmuter.config import HardwareConfig
from repro.transmuter.workload import EpochWorkload

__all__ = ["DetailedResult", "synthesize_trace", "simulate_epoch_detailed"]

#: Address-space regions (byte offsets) for the synthetic trace.
_STREAM_REGION = 0
_RESIDENT_REGION = 1 << 30


@dataclass(frozen=True)
class DetailedResult:
    """Hit rates measured by replaying the synthetic trace."""

    l1_hit_rate: float
    l2_hit_rate: float
    accesses: int
    l1_misses: int
    l2_misses: int
    dram_line_fetches: int


def synthesize_trace(
    workload: EpochWorkload,
    seed: int = 0,
    max_accesses: int = 200_000,
) -> np.ndarray:
    """Expand an epoch's aggregates into a plausible address trace.

    The trace interleaves two streams matching the workload's measured
    statistics:

    * a **streaming** component covering the epoch's distinct lines in
      ascending order (``stride_fraction`` of accesses), with the
      spatial first touches walking each line's words;
    * a **reuse** component re-referencing the live resident region
      (the remaining accesses), drawn sequentially when
      ``reuse_locality`` is high and uniformly at random when low.

    Traces longer than ``max_accesses`` are subsampled uniformly (the
    hit-rate statistics are intensive, so subsampling preserves them).
    """
    total = int(workload.accesses)
    if total <= 0:
        raise SimulationError("workload has no accesses to synthesize")
    scale = 1.0
    if total > max_accesses:
        scale = max_accesses / total
        workload = workload.scaled(scale)
        total = int(workload.accesses)

    rng = np.random.default_rng(seed)
    word = params.WORD_BYTES
    line_words = params.CACHE_LINE_BYTES // word

    unique_words = max(1, int(workload.unique_words))
    stream_fraction = workload.stride_fraction
    n_stream = int(total * stream_fraction)
    n_reuse = total - n_stream

    # Streaming component: sequential walk over the epoch's fresh data.
    stream_words = np.arange(min(unique_words, max(n_stream, 1)))
    if n_stream > stream_words.size:
        # Streams re-scan (e.g. the B row swept once per A element).
        repeats = int(np.ceil(n_stream / stream_words.size))
        stream_words = np.tile(stream_words, repeats)[:n_stream]
    else:
        stream_words = stream_words[:n_stream]
    stream_addresses = _STREAM_REGION + stream_words * word

    # Reuse component: revisits into the live resident region.
    resident_words = max(
        line_words,
        int(workload.live_set_bytes / word),
    )
    if n_reuse > 0:
        if workload.reuse_locality >= 0.5:
            # Clustered revisit: sequential sweep over the resident set.
            base = rng.integers(0, resident_words)
            offsets = (base + np.arange(n_reuse)) % resident_words
        else:
            offsets = rng.integers(0, resident_words, size=n_reuse)
        reuse_addresses = _RESIDENT_REGION + offsets * word
    else:
        reuse_addresses = np.zeros(0, dtype=np.int64)

    # Interleave the two components proportionally.
    trace = np.concatenate([stream_addresses, reuse_addresses])
    order = rng.permutation(trace.size)
    return trace[order].astype(np.int64)


def simulate_epoch_detailed(
    workload: EpochWorkload,
    config: HardwareConfig,
    n_tiles: int = params.DEFAULT_TILES,
    gpes_per_tile: int = params.DEFAULT_GPES_PER_TILE,
    seed: int = 0,
    max_accesses: int = 200_000,
) -> DetailedResult:
    """Replay one epoch through line-accurate L1 + L2 caches.

    The hierarchy is collapsed to one representative L1 (with the
    capacity one requester effectively owns under the configured
    sharing mode) in front of one representative L2, matching how the
    analytic model reasons per requester.
    """
    if config.l1_type != "cache":
        raise SimulationError(
            "detailed simulation models the cache mode only"
        )
    trace = synthesize_trace(workload, seed=seed, max_accesses=max_accesses)

    if config.l1_sharing == "shared":
        l1_capacity = config.l1_kb * 1024 * gpes_per_tile
    else:
        l1_capacity = config.l1_kb * 1024
    if config.l2_sharing == "shared":
        l2_capacity = config.l2_kb * 1024 * n_tiles
    else:
        l2_capacity = config.l2_kb * 1024

    l1 = SetAssociativeCache(l1_capacity, associativity=4)
    l2 = SetAssociativeCache(l2_capacity, associativity=8)
    prefetcher: Optional[StridePrefetcher] = (
        StridePrefetcher(config.prefetch) if config.prefetch else None
    )

    dram_fetches = 0
    for address in trace:
        address = int(address)
        if l1.access(address):
            continue
        if not l2.access(address):
            dram_fetches += 1
        if prefetcher is not None:
            for target in prefetcher.observe(address):
                if not l2.contains(target):
                    dram_fetches += 1
                l2.prefetch(target)
                l1.prefetch(target)
    return DetailedResult(
        l1_hit_rate=l1.stats.hit_rate,
        l2_hit_rate=l2.stats.hit_rate,
        accesses=l1.stats.accesses,
        l1_misses=l1.stats.misses,
        l2_misses=l2.stats.misses,
        dram_line_fetches=dram_fetches,
    )
