"""Analytic cache-hierarchy model.

The epoch-level machine model cannot afford to replay every memory
access, so cache behaviour is predicted from per-epoch aggregates:

* ``accesses``       — word-granular demand accesses,
* ``unique_words``   — distinct words touched in the epoch,
* ``unique_lines``   — distinct cache lines touched,
* ``reuse references`` = accesses - unique_words (revisits),
* ``stride_fraction``— fraction of the stream that is sequential/strided,
* ``shared_fraction``— fraction of the data shared between processing
  elements.

A level's hit rate combines three populations:

1. *Reuse references* hit if the line is still resident; residency is the
   ratio of effective capacity to the working set, discounted for
   conflict misses (worse for irregular streams) and prefetch pollution.
2. *Spatial first touches* (first access to a word on an already-fetched
   line) hit with the greater of the residency and a floor, since the
   line was fetched moments earlier.
3. *Line first touches* (compulsory) miss unless covered by the
   prefetcher.

This mirrors the classic working-set/StatCache style of analytic
modelling and is validated qualitatively against the reference
simulator in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.transmuter import params

__all__ = ["LevelInputs", "LevelBehaviour", "residency", "model_level"]


@dataclass(frozen=True)
class LevelInputs:
    """Aggregate access-stream description entering one cache level."""

    accesses: float  # word-granular demand accesses
    unique_words: float
    unique_lines: float
    working_set_bytes: float  # deduplicated bytes this level must hold
    capacity_bytes: float  # effective capacity backing that working set
    stride_fraction: float
    prefetch: int  # 0, 4, or 8
    sharers: int = 1  # requesters interleaving streams in one bank
    reuse_locality: float = 0.5  # spatial locality of re-references


@dataclass(frozen=True)
class LevelBehaviour:
    """Predicted behaviour of one cache level for one epoch."""

    hits: float
    misses: float
    hit_rate: float
    residency: float
    occupancy: float
    prefetches_issued: float
    prefetch_covered_lines: float  # compulsory lines whose latency is hidden
    overfetch_lines: float  # useless prefetched lines (traffic only)


def residency(
    working_set_bytes: float,
    capacity_bytes: float,
    stride_fraction: float,
    pollution: float = 0.0,
    sharers: int = 1,
) -> float:
    """Probability that a previously touched line is still resident.

    Capacity over working set, with the effective capacity reduced by
    prefetch pollution and a conflict-miss discount that grows for
    irregular streams and for shared banks where multiple requesters
    interleave their streams.
    """
    if capacity_bytes <= 0:
        raise SimulationError("capacity must be positive")
    if working_set_bytes <= 0:
        return 1.0
    effective = capacity_bytes * (1.0 - pollution)
    conflict = params.CONFLICT_BASE + params.CONFLICT_IRREGULAR * (
        1.0 - stride_fraction
    )
    if sharers > 1:
        conflict += params.CONFLICT_SHARING * (1.0 - 1.0 / sharers)
    raw = min(1.0, effective / working_set_bytes)
    return max(0.0, raw * (1.0 - conflict))


def model_level(inputs: LevelInputs) -> LevelBehaviour:
    """Predict hit/miss/prefetch behaviour of one level."""
    if inputs.accesses < 0 or inputs.unique_words < 0:
        raise SimulationError("negative access counts")
    accesses = max(inputs.accesses, 1e-9)
    unique_words = min(inputs.unique_words, accesses)
    unique_lines = min(inputs.unique_lines, unique_words) or 1e-9

    coverage = params.PREFETCH_COVERAGE[inputs.prefetch]
    pollution = params.PREFETCH_POLLUTION[inputs.prefetch] * (
        1.0 - inputs.stride_fraction
    )
    overfetch_rate = params.PREFETCH_OVERFETCH[inputs.prefetch] * (
        1.0 - inputs.stride_fraction
    )

    p_resident = residency(
        inputs.working_set_bytes,
        inputs.capacity_bytes,
        inputs.stride_fraction,
        pollution,
        inputs.sharers,
    )

    reuse_refs = max(0.0, accesses - unique_words)
    spatial_refs = max(0.0, unique_words - unique_lines)
    compulsory = unique_lines

    covered_lines = compulsory * inputs.stride_fraction * coverage
    prefetches_issued = covered_lines + compulsory * overfetch_rate
    overfetch_lines = compulsory * overfetch_rate

    spatial_hit_prob = max(p_resident, 0.8)
    # A re-reference that misses refetches its whole line; when the
    # stream is clustered (high stride fraction), the line's sibling
    # words re-hit right after the refill — cyclic over-capacity loops
    # therefore still see the spatial hit rate, as the reference
    # simulator confirms.
    spatial_density = max(0.0, 1.0 - unique_lines / max(unique_words, 1e-9))
    refill_hit_prob = spatial_density * inputs.reuse_locality
    reuse_hit_prob = p_resident + (1.0 - p_resident) * refill_hit_prob
    hits = (
        reuse_refs * reuse_hit_prob
        + spatial_refs * spatial_hit_prob
        + covered_lines  # first touches arriving early via prefetch
    )
    hits = min(hits, accesses)
    misses = accesses - hits
    occupancy = min(
        1.0, inputs.working_set_bytes / max(inputs.capacity_bytes, 1e-9)
    )
    return LevelBehaviour(
        hits=hits,
        misses=misses,
        hit_rate=hits / accesses,
        residency=p_resident,
        occupancy=occupancy,
        prefetches_issued=prefetches_issued,
        prefetch_covered_lines=covered_lines,
        overfetch_lines=overfetch_lines,
    )
