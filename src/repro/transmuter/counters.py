"""Hardware performance counters (paper Table 2).

The counters are reset after every query and are averaged spatially
(across replicated hardware blocks) and temporally (normalized to the
elapsed cycles of the epoch) by the runtime. The fields below are the
post-normalization values the predictive model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List

import numpy as np

__all__ = [
    "PerformanceCounters",
    "COUNTER_GROUPS",
    "ECHO_COUNTERS",
    "PLAUSIBLE_BOUNDS",
]


@dataclass(frozen=True)
class PerformanceCounters:
    """Telemetry of one epoch, spatially and temporally averaged."""

    # R-DCache counters (per level).
    l1_access_rate: float  # accesses per cycle per bank
    l1_occupancy: float  # fraction of valid tags in the bank
    l1_miss_rate: float
    l1_prefetch_ratio: float  # prefetches issued per access
    l1_capacity_kb: float
    l2_access_rate: float
    l2_occupancy: float
    l2_miss_rate: float
    l2_prefetch_ratio: float
    l2_capacity_kb: float
    # R-XBar counters.
    xbar_contention_ratio: float  # contentions / accesses through the xbar
    # Core counters.
    gpe_ipc: float
    gpe_fp_ipc: float
    lcp_ipc: float
    lcp_fp_ipc: float
    clock_mhz: float
    # Memory-controller counters.
    dram_read_utilization: float  # used / available bandwidth
    dram_write_utilization: float

    def as_features(self) -> np.ndarray:
        """Flat numeric vector in declaration order."""
        return np.array(
            [float(getattr(self, f.name)) for f in fields(self)]
        )

    @staticmethod
    def feature_names() -> List[str]:
        """Names parallel to :meth:`as_features`."""
        return [f.name for f in fields(PerformanceCounters)]

    def as_dict(self) -> Dict[str, float]:
        """Counter values keyed by name."""
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}


#: Counters that merely echo the commanded configuration back to the
#: host. They are exact in a healthy machine, which is what makes an
#: echo/requested mismatch a cheap hardware-fault detector.
ECHO_COUNTERS: tuple = ("l1_capacity_kb", "l2_capacity_kb", "clock_mhz")

#: Physically plausible ``(low, high)`` range per counter. Rates are
#: per-cycle-per-bank and cannot exceed one issue slot by much even
#: with prefetch traffic folded in; ratios and utilizations live in
#: [0, 1]; capacities and clocks are bounded by the Table-1 space. The
#: counter sanitizer treats values outside these ranges (and values
#: pinned exactly at full scale, for counters that cannot legitimately
#: sit there) as fault evidence.
PLAUSIBLE_BOUNDS: Dict[str, tuple] = {
    "l1_access_rate": (0.0, 4.0),
    "l1_occupancy": (0.0, 1.0),
    "l1_miss_rate": (0.0, 1.0),
    "l1_prefetch_ratio": (0.0, 8.0),
    "l1_capacity_kb": (4.0, 64.0),
    "l2_access_rate": (0.0, 4.0),
    "l2_occupancy": (0.0, 1.0),
    "l2_miss_rate": (0.0, 1.0),
    "l2_prefetch_ratio": (0.0, 8.0),
    "l2_capacity_kb": (4.0, 64.0),
    "xbar_contention_ratio": (0.0, 1.0),
    "gpe_ipc": (0.0, 1.0),
    "gpe_fp_ipc": (0.0, 1.0),
    "lcp_ipc": (0.0, 1.0),
    "lcp_fp_ipc": (0.0, 1.0),
    "clock_mhz": (31.25, 1000.0),
    "dram_read_utilization": (0.0, 1.0),
    "dram_write_utilization": (0.0, 1.0),
}

#: Counter-class grouping used by the Figure-10 feature-importance study.
COUNTER_GROUPS: Dict[str, str] = {
    "l1_access_rate": "L1 R-DCache",
    "l1_occupancy": "L1 R-DCache",
    "l1_miss_rate": "L1 R-DCache",
    "l1_prefetch_ratio": "L1 R-DCache",
    "l1_capacity_kb": "L1 R-DCache",
    "l2_access_rate": "L2 R-DCache",
    "l2_occupancy": "L2 R-DCache",
    "l2_miss_rate": "L2 R-DCache",
    "l2_prefetch_ratio": "L2 R-DCache",
    "l2_capacity_kb": "L2 R-DCache",
    "xbar_contention_ratio": "R-XBar",
    "gpe_ipc": "GPE",
    "gpe_fp_ipc": "GPE",
    "lcp_ipc": "LCP",
    "lcp_fp_ipc": "LCP",
    "clock_mhz": "Clock",
    "dram_read_utilization": "Memory Ctrl",
    "dram_write_utilization": "Memory Ctrl",
}
