"""Technology and micro-architecture constants for the Transmuter model.

The paper models a 14 nm Transmuter implementation using gem5 for timing
and a power estimator combining RTL synthesis reports, Arm core
specifications, and CACTI for SRAM (Section 5.2). This module holds the
equivalent constants for the analytical model. Values are representative
of a 14 nm low-power process; absolute numbers are calibrated so the
*relationships* the paper relies on hold (large caches leak, DRAM energy
per byte dwarfs SRAM energy, DVFS trades frequency for quadratic dynamic
power).

Every constant is module-level so experiments can monkeypatch a scenario
without editing the library.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------

#: Cache line size in bytes for both R-DCache levels.
CACHE_LINE_BYTES = 64

#: Word size of the FP data path in bytes (double precision).
WORD_BYTES = 8

#: Default system: M tiles x N GPEs per tile (paper evaluates 2 x 8).
DEFAULT_TILES = 2
DEFAULT_GPES_PER_TILE = 8

#: Reduced off-chip bandwidth matching the scaled-down system (Section 5.2).
DEFAULT_BANDWIDTH_GBPS = 1.0

# ---------------------------------------------------------------------------
# Voltage / frequency (paper Section 3.2.1)
# ---------------------------------------------------------------------------

#: Nominal supply voltage at the nominal frequency, volts.
VDD_NOMINAL = 0.90

#: Threshold voltage, volts.
V_THRESHOLD = 0.30

#: Minimum functional voltage is 1.3x the threshold voltage.
V_MIN_RATIO = 1.3

#: Nominal system clock, MHz; the divider produces f/2 .. f/32.
F_NOMINAL_MHZ = 1000.0

# ---------------------------------------------------------------------------
# Latencies (cycles at the configured core clock unless stated otherwise)
# ---------------------------------------------------------------------------

#: Private L1 access (fixed 1-cycle per Section 3.2.3); extra cost of the
#: shared crossbar path is computed by the contention model.
L1_PRIVATE_LATENCY = 1
L1_SHARED_BASE_LATENCY = 2

#: L1-miss-to-L2 latency (crossbar + bank access).
L2_LATENCY = 10

#: Main-memory access latency, seconds (converted to cycles at runtime).
DRAM_LATENCY_S = 100e-9

#: Memory-level parallelism of the simple in-order GPEs: how many misses
#: overlap on average, discounting stall cycles.
MLP = 2.0

#: Arbitration penalty per contended crossbar crossing, cycles.
XBAR_CONTENTION_PENALTY = 2.0

# ---------------------------------------------------------------------------
# Dynamic energy per event at VDD_NOMINAL (joules)
# ---------------------------------------------------------------------------

#: Energy per instruction on a GPE/LCP in-order core (including fetch).
E_CORE_OP = 9.0e-12

#: L1 SRAM access energy for a 4 kB bank; scales ~ (capacity/4kB)**0.35.
E_L1_BASE = 3.0e-12
SRAM_ENERGY_EXPONENT = 0.35

#: L2 banks are larger structures behind a crossbar.
E_L2_BASE = 6.0e-12

#: Scratchpad access saves the tag lookup relative to a cache access.
SPM_ENERGY_FACTOR = 0.6

#: Energy per word crossing a swizzle-switch crossbar.
E_XBAR_TRANSFER = 2.0e-12

#: Off-chip (HBM + controller + PHY) energy per byte.
E_DRAM_BYTE = 25.0e-12

# ---------------------------------------------------------------------------
# Leakage power at VDD_NOMINAL (watts); scales linearly with voltage
# ---------------------------------------------------------------------------

#: Per-core leakage (GPE or LCP), includes its ICache and queues.
P_LEAK_CORE = 0.8e-3

#: SRAM leakage per kB provisioned (tag + data array).
P_LEAK_SRAM_PER_KB = 0.28e-3

#: Scratchpad mode power-gates the tag array and spare logic.
SPM_LEAK_FACTOR = 0.7

#: Fixed platform leakage: crossbars, memory controller, clocking.
P_LEAK_PLATFORM = 2.0e-3

#: Fraction of core+SRAM leakage that remains while power-gated during a
#: cache flush (Section 5.2: cores, ICaches, queues gated while flushing).
FLUSH_GATED_LEAK_FRACTION = 0.25

# ---------------------------------------------------------------------------
# Prefetcher (stride, PC-indexed; Section 3.2.5)
# ---------------------------------------------------------------------------

#: Coverage of strided compulsory misses at each aggressiveness level.
PREFETCH_COVERAGE = {0: 0.0, 4: 0.70, 8: 0.85}

#: Useless-prefetch traffic factor applied to the irregular fraction of
#: the access stream at each aggressiveness level.
PREFETCH_OVERFETCH = {0: 0.0, 4: 0.15, 8: 0.35}

#: Cache pollution: effective capacity lost to useless prefetches.
PREFETCH_POLLUTION = {0: 0.0, 4: 0.08, 8: 0.18}

# ---------------------------------------------------------------------------
# Reconfiguration costs (Section 3.4 / 5.2)
# ---------------------------------------------------------------------------

#: Fixed cost of a super-fine-grained change (clock, prefetcher, capacity
#: increase), cycles at the *new* clock.
RECONFIG_FIXED_CYCLES = 100

#: Host-side telemetry + decision latency per epoch, host cycles.
HOST_DECISION_CYCLES = 75

#: Host clock used to convert decision cycles to time, MHz.
HOST_CLOCK_MHZ = 2000.0

#: Pessimistic dirty fraction assumed when flushing (paper assumes all
#: lines dirty; measured systems see fewer).
FLUSH_DIRTY_FRACTION = 1.0

# ---------------------------------------------------------------------------
# Workload interpretation
# ---------------------------------------------------------------------------

#: Imbalance sensitivity: epoch time inflation per unit of row skew
#: (coefficient of variation of per-task work).
IMBALANCE_COEFF = 0.35
IMBALANCE_CAP = 2.0

#: Conflict-miss discount applied to residency for irregular streams.
CONFLICT_BASE = 0.03
CONFLICT_IRREGULAR = 0.10

#: Additional conflict/pollution when multiple requesters interleave
#: their streams in a shared bank (scaled by 1 - 1/sharers).
CONFLICT_SHARING = 0.15

#: Memory-level parallelism range: irregular (gather) streams overlap
#: fewer outstanding misses than strided ones.
MLP_STRIDE_FLOOR = 0.4
MLP_STRIDE_SLOPE = 0.8

#: Fraction of a refetched line that is useful on a capacity re-miss.
REFETCH_LINE_FACTOR = 0.6

#: SPM maps the structured portion of the working set; fraction of the
#: working set the software can tile into the scratchpad.
SPM_MAPPABLE_FRACTION = 0.6

#: Extra bookkeeping instructions (index arithmetic, DMA orchestration)
#: when the L1 is configured as a scratchpad.
SPM_ORCHESTRATION_OVERHEAD = 0.10

#: Exponent of the soft-max roofline combining core time and memory time.
ROOFLINE_SMOOTHNESS = 4.0

#: Replication of shared lines when a level is privatized: how many
#: private copies of a shared line are fetched, capped per level.
REPLICATION_CAP_L1 = 4.0
REPLICATION_CAP_L2 = 2.0

#: Fraction of intra-tile sharing that persists across tiles (the L2
#: privatization penalty is milder than the L1 one).
TILE_SHARING_FACTOR = 0.7

#: Access skew towards the SPM-mapped (hot) region of the working set.
SPM_HOT_ACCESS_BOOST = 1.5

#: LCP work (scheduling, load balancing) as a fraction of total GPE
#: instructions, split across tiles.
LCP_WORK_FRACTION = 0.05

#: Combined DRAM read+write utilization above which an epoch is flagged
#: as bandwidth-saturated in the observability event stream (the two
#: directions each normalize to 1.0, so 0.95 means the channel spent
#: nearly all of the epoch at its provisioned bandwidth).
BANDWIDTH_SATURATION_THRESHOLD = 0.95
