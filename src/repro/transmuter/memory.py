"""Off-chip (HBM) memory model.

The evaluated system attaches the L2 layer to high-bandwidth memory
through a memory controller; the paper reduces the available bandwidth
to 1 GB/s to keep the scaled-down 2x8 system's compute-to-memory ratio
representative (Section 5.2) and sweeps it for Figure 11 (right).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.transmuter import params

__all__ = ["MemoryBehaviour", "MemorySystem"]


@dataclass(frozen=True)
class MemoryBehaviour:
    """Off-chip traffic and cost summary for one epoch."""

    read_bytes: float
    write_bytes: float
    transfer_time_s: float
    energy_j: float
    read_utilization: float
    write_utilization: float


class MemorySystem:
    """Bandwidth-limited DRAM channel with per-byte energy."""

    def __init__(
        self,
        bandwidth_gbps: float = params.DEFAULT_BANDWIDTH_GBPS,
        latency_s: float = params.DRAM_LATENCY_S,
        energy_per_byte: float = params.E_DRAM_BYTE,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise SimulationError("bandwidth must be positive")
        if latency_s < 0 or energy_per_byte < 0:
            raise SimulationError("latency/energy must be non-negative")
        self.bandwidth_bytes_per_s = bandwidth_gbps * 1e9
        self.latency_s = latency_s
        self.energy_per_byte = energy_per_byte

    def scaled(self, factor: float) -> "MemorySystem":
        """A copy with the bandwidth scaled by ``factor`` (same latency
        and per-byte energy). Used to model transient bandwidth
        throttling events without mutating the shared memory system."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError(
                f"bandwidth scale factor must be in (0, 1], got {factor}"
            )
        return MemorySystem(
            bandwidth_gbps=self.bandwidth_bytes_per_s * factor / 1e9,
            latency_s=self.latency_s,
            energy_per_byte=self.energy_per_byte,
        )

    def transfer(
        self, read_bytes: float, write_bytes: float, elapsed_s: float
    ) -> MemoryBehaviour:
        """Cost of moving the epoch's traffic; utilizations use
        ``elapsed_s`` (the final epoch duration) as the denominator."""
        if read_bytes < 0 or write_bytes < 0:
            raise SimulationError("negative traffic")
        total = read_bytes + write_bytes
        transfer_time = total / self.bandwidth_bytes_per_s
        window = max(elapsed_s, 1e-15)
        capacity = self.bandwidth_bytes_per_s * window
        return MemoryBehaviour(
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            transfer_time_s=transfer_time,
            energy_j=total * self.energy_per_byte,
            read_utilization=min(1.0, read_bytes / capacity),
            write_utilization=min(1.0, write_bytes / capacity),
        )

    def latency_cycles(self, clock_mhz: float) -> float:
        """DRAM access latency expressed in core cycles."""
        if clock_mhz <= 0:
            raise SimulationError("clock must be positive")
        return self.latency_s * clock_mhz * 1e6
