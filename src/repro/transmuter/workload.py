"""Epoch workload descriptor: the kernel -> machine-model interface.

The kernels in :mod:`repro.kernels` execute real algorithms on real
sparse data and summarize each epoch (a fixed budget of floating-point
operations, Section 4 of the paper) into an :class:`EpochWorkload`.
The machine model consumes only this summary, which is what makes
whole-program simulation across hundreds of hardware configurations
tractable: epoch behaviour under a configuration is recomputed
analytically rather than replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError
from repro.transmuter import params

__all__ = ["EpochWorkload", "PHASE_MULTIPLY", "PHASE_MERGE", "PHASE_SPMSPV",
           "PHASE_GEMM", "PHASE_CONV"]

PHASE_MULTIPLY = "multiply"
PHASE_MERGE = "merge"
PHASE_SPMSPV = "spmspv"
PHASE_GEMM = "gemm"
PHASE_CONV = "conv"


@dataclass(frozen=True)
class EpochWorkload:
    """Aggregate description of one epoch of kernel execution.

    Attributes
    ----------
    phase:
        Explicit-phase label (``multiply``, ``merge``, ``spmspv``, ...).
    fp_ops:
        Floating-point operations *including FP loads and stores* — the
        quantity the paper uses to delimit epochs.
    flops:
        Arithmetic floating-point operations only (multiplies/adds),
        the numerator of GFLOPS.
    int_ops:
        Bookkeeping (integer/control) instructions.
    loads / stores:
        Word-granular memory accesses issued by the GPEs.
    unique_words / unique_lines:
        Distinct words and distinct cache lines touched in the epoch.
    stride_fraction:
        Fraction of the access stream that is sequential or strided
        (prefetchable).
    shared_fraction:
        Fraction of the touched data shared between GPEs (benefits the
        shared cache modes).
    read_bytes_compulsory:
        Bytes that must be fetched from DRAM at least once this epoch.
    write_bytes:
        Bytes of results streamed out towards DRAM this epoch.
    work_skew:
        Coefficient of variation of per-work-item cost within the epoch
        — drives the load-imbalance penalty (power-law rows hurt).
    reuse_locality:
        Spatial locality of the *re-referenced* data specifically (0 =
        scattered gather like a power-law accumulator, 1 = sequential
        re-scan). The epoch-wide ``stride_fraction`` is dominated by
        streaming first touches and must not vouch for the reuse
        stream.
    resident_bytes:
        Live working set the kernel benefits from keeping cached while
        this epoch runs (e.g. the SpMSpV accumulator built up over
        *previous* epochs, or the operand buffers of the outer products
        in flight). Short epochs touch few bytes themselves, but their
        reuse references still land in this resident structure, so
        capacity decisions must be judged against it.
    """

    phase: str
    fp_ops: float
    flops: float
    int_ops: float
    loads: float
    stores: float
    unique_words: float
    unique_lines: float
    stride_fraction: float
    shared_fraction: float
    read_bytes_compulsory: float
    write_bytes: float
    work_skew: float = 0.0
    resident_bytes: float = 0.0
    reuse_locality: float = 0.5

    def __post_init__(self) -> None:
        numeric = (
            self.fp_ops,
            self.flops,
            self.int_ops,
            self.loads,
            self.stores,
            self.unique_words,
            self.unique_lines,
            self.read_bytes_compulsory,
            self.write_bytes,
            self.work_skew,
            self.resident_bytes,
        )
        if any(value < 0 for value in numeric):
            raise SimulationError(f"negative workload field in {self!r}")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise SimulationError("stride_fraction must be in [0, 1]")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise SimulationError("shared_fraction must be in [0, 1]")
        if not 0.0 <= self.reuse_locality <= 1.0:
            raise SimulationError("reuse_locality must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> float:
        """Total word-granular demand accesses."""
        return self.loads + self.stores

    @property
    def instructions(self) -> float:
        """Total instructions issued by the GPEs."""
        return self.flops + self.int_ops + self.accesses

    @property
    def working_set_bytes(self) -> float:
        """Deduplicated bytes touched this epoch."""
        return self.unique_lines * params.CACHE_LINE_BYTES

    @property
    def live_set_bytes(self) -> float:
        """Working set the caches are judged against: the larger of the
        epoch footprint and the live (cross-epoch) resident structure."""
        return max(self.working_set_bytes, self.resident_bytes)

    def scaled(self, factor: float) -> "EpochWorkload":
        """Uniformly scale all extensive quantities (for splitting an
        epoch, e.g. when ProfileAdapt runs part of it in the profiling
        configuration)."""
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        return replace(
            self,
            fp_ops=self.fp_ops * factor,
            flops=self.flops * factor,
            int_ops=self.int_ops * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            unique_words=self.unique_words * factor,
            unique_lines=self.unique_lines * factor,
            read_bytes_compulsory=self.read_bytes_compulsory * factor,
            write_bytes=self.write_bytes * factor,
        )
