"""Line-accurate set-associative cache simulator.

The epoch-level machine model (:mod:`repro.transmuter.machine`) uses an
analytic cache model for speed, but the analytic model's qualitative
behaviour (hit rate monotone in capacity, reuse sensitivity, pollution
from useless prefetches) is validated against this reference simulator
in the test suite. It is also usable directly for small custom studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import ConfigError, SimulationError
from repro.transmuter import params

__all__ = ["CacheStats", "SetAssociativeCache", "StridePrefetcher"]


@dataclass
class CacheStats:
    """Counters accumulated by the reference cache simulator."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0  # demand hits on prefetched lines

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Write-back, write-allocate LRU cache.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Line size (default from :mod:`repro.transmuter.params`).
    associativity:
        Ways per set; the default of 4 matches a small R-DCache bank.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = params.CACHE_LINE_BYTES,
        associativity: int = 4,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ConfigError("cache geometry must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines == 0:
            raise ConfigError("capacity smaller than one line")
        if n_lines % associativity:
            raise ConfigError(
                f"{n_lines} lines not divisible by associativity "
                f"{associativity}"
            )
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = n_lines // associativity
        # Each set is an LRU-ordered list of (tag, dirty, was_prefetch).
        self._sets: List[List[list]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def _touch(self, cache_set: List[list], position: int) -> list:
        entry = cache_set.pop(position)
        cache_set.append(entry)  # most-recent at the tail
        return entry

    def _insert(self, cache_set: List[list], entry: list) -> None:
        if len(cache_set) >= self.associativity:
            victim = cache_set.pop(0)
            self.stats.evictions += 1
            if victim[1]:
                self.stats.writebacks += 1
        cache_set.append(entry)

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> bool:
        """Demand access; returns True on hit."""
        if address < 0:
            raise SimulationError("negative address")
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        self.stats.accesses += 1
        for position, entry in enumerate(cache_set):
            if entry[0] == tag:
                entry = self._touch(cache_set, position)
                if entry[2]:
                    self.stats.prefetch_hits += 1
                    entry[2] = False
                if is_write:
                    entry[1] = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        self._insert(cache_set, [tag, is_write, False])
        return False

    def prefetch(self, address: int) -> None:
        """Install a line without a demand access (no hit/miss counted)."""
        if address < 0:
            raise SimulationError("negative address")
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        for entry in cache_set:
            if entry[0] == tag:
                return
        self.stats.prefetches_issued += 1
        self._insert(cache_set, [tag, False, True])

    def contains(self, address: int) -> bool:
        """Presence check without LRU/stat side effects."""
        set_index, tag = self._locate(address)
        return any(entry[0] == tag for entry in self._sets[set_index])

    def occupancy(self) -> float:
        """Fraction of ways holding valid lines."""
        filled = sum(len(s) for s in self._sets)
        return filled / (self.n_sets * self.associativity)

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for entry in cache_set if entry[1])
            cache_set.clear()
        return dirty

    # ------------------------------------------------------------------
    def run_trace(
        self,
        addresses: Iterable[int],
        writes: Optional[Iterable[bool]] = None,
        prefetcher: Optional["StridePrefetcher"] = None,
    ) -> CacheStats:
        """Drive a full address trace, optionally with a prefetcher."""
        if writes is None:
            for address in addresses:
                self.access(address)
                if prefetcher is not None:
                    for target in prefetcher.observe(address):
                        self.prefetch(target)
        else:
            for address, is_write in zip(addresses, writes):
                self.access(address, is_write)
                if prefetcher is not None:
                    for target in prefetcher.observe(address):
                        self.prefetch(target)
        return self.stats


class StridePrefetcher:
    """PC-less stride prefetcher over a line-address stream.

    Tracks the last observed line and issues ``degree`` line prefetches
    ahead whenever two consecutive accesses repeat the same stride —
    the table-based behaviour of Transmuter's PC-indexed prefetcher
    collapsed to a single stream (adequate for single-kernel traces).
    A degree of 0 disables prefetching.
    """

    def __init__(
        self, degree: int, line_bytes: int = params.CACHE_LINE_BYTES
    ) -> None:
        if degree < 0:
            raise ConfigError("prefetch degree must be >= 0")
        self.degree = degree
        self.line_bytes = line_bytes
        self._last_line: Optional[int] = None
        self._last_stride: Optional[int] = None

    def observe(self, address: int) -> List[int]:
        """Feed one demand address; returns prefetch target addresses.

        Accesses that stay on the current line are ignored (a real
        stride table trains on line transitions, not word accesses), so
        word-granular streaming over a line still trains a +1 stride.
        """
        if self.degree == 0:
            return []
        line = address // self.line_bytes
        if line == self._last_line:
            return []
        targets: List[int] = []
        if self._last_line is not None:
            stride = line - self._last_line
            if stride == self._last_stride:
                targets = [
                    (line + k * stride) * self.line_bytes
                    for k in range(1, self.degree + 1)
                    if (line + k * stride) >= 0
                ]
            self._last_stride = stride
        self._last_line = line
        return targets
