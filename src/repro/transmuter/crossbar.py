"""Swizzle-switch crossbar contention model (paper Section 3.2.3).

Transmuter's R-XBars connect GPEs to L1 banks within a tile and tiles to
L2 banks. In *private* mode the crosspoint control units pin each
requester to its own bank: access latency is a fixed single cycle and no
arbitration occurs. In *shared* mode any requester can reach any bank,
enabling reuse but adding arbitration latency when requests collide.

The analytic model treats each of the ``n_requesters`` as issuing
requests uniformly over ``n_banks`` ports at a given per-cycle intensity.
The collision probability for a request is ``1 - (1 - rho/n_banks) **
(n_requesters - 1)`` where ``rho`` is the per-requester offered rate —
a standard random-interleaving approximation; the paper's
contention-to-access-ratio counter reports exactly this quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.transmuter import params

__all__ = ["CrossbarBehaviour", "model_crossbar"]


@dataclass(frozen=True)
class CrossbarBehaviour:
    """Predicted crossbar behaviour for one epoch."""

    contention_ratio: float  # contentions per access (Table-2 counter)
    extra_latency_cycles: float  # added to every access through the xbar
    transfers: float  # word transfers crossing the crossbar


def model_crossbar(
    accesses: float,
    busy_cycles: float,
    n_requesters: int,
    n_banks: int,
    shared: bool,
) -> CrossbarBehaviour:
    """Predict contention for one crossbar layer over one epoch.

    Parameters
    ----------
    accesses:
        Total accesses through this crossbar during the epoch.
    busy_cycles:
        Cycles the requesters were active (bounds the offered rate).
    n_requesters / n_banks:
        Crossbar geometry.
    shared:
        Whether the crossbar is in the arbitrated (shared) mode.
    """
    if n_requesters < 1 or n_banks < 1:
        raise SimulationError("crossbar geometry must be positive")
    if accesses < 0 or busy_cycles < 0:
        raise SimulationError("negative crossbar load")
    if not shared or accesses == 0:
        return CrossbarBehaviour(0.0, 0.0, accesses)
    cycles = max(busy_cycles, 1.0)
    per_requester_rate = min(1.0, accesses / (n_requesters * cycles))
    other = n_requesters - 1
    collision = 1.0 - (1.0 - per_requester_rate / n_banks) ** other
    extra = (
        params.L1_SHARED_BASE_LATENCY
        - 1.0
        + collision * params.XBAR_CONTENTION_PENALTY
    )
    return CrossbarBehaviour(
        contention_ratio=collision,
        extra_latency_cycles=extra,
        transfers=accesses,
    )
