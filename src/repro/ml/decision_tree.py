"""CART decision trees (classification and regression), from scratch.

The paper's predictive model is "an ensemble of decision trees, one per
configuration parameter", trained with Scikit-learn's
``DecisionTreeClassifier`` while sweeping ``criterion``, ``max_depth``,
and ``min_samples_leaf`` with 3-fold cross-validation (Section 5.1).
Scikit-learn is not available offline, so this module implements the
same estimator: binary axis-aligned splits chosen by impurity decrease
(Gini or entropy), depth and leaf-size limits, minimal cost-complexity
pruning, and Gini feature importance (used for Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["TreeNode", "DecisionTreeClassifier", "DecisionTreeRegressor"]

_CRITERIA = ("gini", "entropy")


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Leaves have ``feature == -1``; internal nodes route samples with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: np.ndarray = field(default_factory=lambda: np.zeros(0))
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log2(p)))


def _variance(y: np.ndarray) -> float:
    if y.size == 0:
        return 0.0
    return float(np.var(y))


class _BaseTree:
    """Shared fitting machinery for classifier and regressor trees."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        ccp_alpha: float = 0.0,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ModelError("max_depth must be >= 1 when given")
        if min_samples_split < 2:
            raise ModelError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be >= 1")
        if ccp_alpha < 0:
            raise ModelError("ccp_alpha must be non-negative")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.ccp_alpha = ccp_alpha
        self.random_state = random_state
        self.root_: Optional[TreeNode] = None
        self.n_features_: int = 0
        self.feature_importances_: Optional[np.ndarray] = None

    # -- subclass hooks -------------------------------------------------
    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _best_split(self, x_col, y, order):
        raise NotImplementedError

    # -- fitting ---------------------------------------------------------
    def _check_fitted(self) -> TreeNode:
        if self.root_ is None:
            raise ModelError("estimator is not fitted; call fit() first")
        return self.root_

    def _validate_xy(self, features, targets):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ModelError("X must be a 2-D array")
        if features.shape[0] == 0:
            raise ModelError("cannot fit on an empty dataset")
        targets = np.asarray(targets)
        if targets.shape[0] != features.shape[0]:
            raise ModelError("X and y must have the same number of rows")
        return features, targets

    def _fit_tree(self, features: np.ndarray, encoded: np.ndarray) -> None:
        self.n_features_ = features.shape[1]
        self._importance_raw = np.zeros(self.n_features_)
        rng = np.random.default_rng(self.random_state)
        indices = np.arange(features.shape[0])
        self.root_ = self._build(features, encoded, indices, depth=0, rng=rng)
        if self.ccp_alpha > 0.0:
            self._prune(self.root_)
        total = self._importance_raw.sum()
        if total > 0:
            self.feature_importances_ = self._importance_raw / total
        else:
            self.feature_importances_ = np.zeros(self.n_features_)

    def _build(
        self,
        features: np.ndarray,
        encoded: np.ndarray,
        indices: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> TreeNode:
        y_node = encoded[indices]
        impurity = self._node_impurity(y_node)
        node = TreeNode(
            value=self._node_value(y_node),
            n_samples=indices.size,
            impurity=impurity,
        )
        if (
            impurity <= 1e-12
            or indices.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        candidate_features = np.arange(self.n_features_)
        if self.max_features is not None and self.max_features < self.n_features_:
            candidate_features = rng.choice(
                self.n_features_, size=self.max_features, replace=False
            )

        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0
        for feat in candidate_features:
            x_col = features[indices, feat]
            order = np.argsort(x_col, kind="stable")
            gain, threshold = self._best_split(x_col, y_node, order)
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_feature = int(feat)
                best_threshold = threshold

        if best_feature < 0:
            return node

        go_left = features[indices, best_feature] <= best_threshold
        left_idx = indices[go_left]
        right_idx = indices[~go_left]
        if (
            left_idx.size < self.min_samples_leaf
            or right_idx.size < self.min_samples_leaf
        ):
            return node

        node.feature = best_feature
        node.threshold = best_threshold
        self._importance_raw[best_feature] += best_gain * indices.size
        node.left = self._build(features, encoded, left_idx, depth + 1, rng)
        node.right = self._build(features, encoded, right_idx, depth + 1, rng)
        return node

    # -- pruning ----------------------------------------------------------
    def _prune(self, node: TreeNode) -> None:
        """Minimal cost-complexity pruning with parameter ``ccp_alpha``.

        Repeatedly collapses the internal node whose effective alpha
        (impurity increase per removed leaf) is below the configured
        threshold, weakest link first.
        """
        while True:
            weakest = self._weakest_link(node, node.n_samples)
            if weakest is None:
                return
            alpha, target = weakest
            if alpha > self.ccp_alpha:
                return
            target.feature = -1
            target.left = None
            target.right = None

    def _weakest_link(self, root: TreeNode, total: int):
        best = None

        def visit(node: TreeNode):
            nonlocal best
            if node.is_leaf:
                return node.impurity * node.n_samples / total, 1
            left_cost, left_leaves = visit(node.left)
            right_cost, right_leaves = visit(node.right)
            subtree_cost = left_cost + right_cost
            leaves = left_leaves + right_leaves
            node_cost = node.impurity * node.n_samples / total
            if leaves > 1:
                alpha = (node_cost - subtree_cost) / (leaves - 1)
                if best is None or alpha < best[0]:
                    best = (alpha, node)
            return subtree_cost, leaves

        visit(root)
        return best

    # -- inference ---------------------------------------------------------
    def _decision_values(self, features: np.ndarray) -> np.ndarray:
        root = self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {features.shape[1]}"
            )
        out = np.empty((features.shape[0], root.value.size))
        stack = [(root, np.arange(features.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            go_left = features[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return out

    def decision_path(self, features) -> dict:
        """Root-to-leaf trace explaining the prediction for ONE sample.

        Returns ``{"steps": [...], "leaf": {...}}``. Each step records
        the comparison made at one internal node::

            {"depth": 0, "feature": 4, "threshold": 0.24,
             "value": 0.31, "direction": "gt"}

        ``direction`` is ``"le"`` when the sample went left
        (``value <= threshold``) and ``"gt"`` otherwise. The leaf entry
        carries its depth, training-sample count, and raw node value
        (class probabilities for classifiers, mean target for
        regressors). Subclasses extend the leaf with the decoded
        ``prediction`` (and a vote ``margin`` for classifiers).
        """
        root = self._check_fitted()
        sample = np.asarray(features, dtype=np.float64).reshape(-1)
        if sample.size != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {sample.size}"
            )
        steps = []
        node = root
        depth = 0
        while not node.is_leaf:
            observed = float(sample[node.feature])
            go_left = observed <= node.threshold
            steps.append(
                {
                    "depth": depth,
                    "feature": int(node.feature),
                    "threshold": float(node.threshold),
                    "value": observed,
                    "direction": "le" if go_left else "gt",
                }
            )
            node = node.left if go_left else node.right
            depth += 1
        leaf = {
            "depth": depth,
            "n_samples": int(node.n_samples),
            "value": [float(v) for v in node.value],
        }
        return {"steps": steps, "leaf": leaf}

    # -- introspection -------------------------------------------------------
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        return self._check_fitted().depth()

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        return self._check_fitted().count_leaves()

    def get_params(self) -> dict:
        """Constructor parameters, for model-selection clones."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "ccp_alpha": self.ccp_alpha,
            "random_state": self.random_state,
        }


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree with Gini or entropy splitting."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        ccp_alpha: float = 0.0,
        random_state: Optional[int] = None,
    ) -> None:
        if criterion not in _CRITERIA:
            raise ModelError(f"criterion must be one of {_CRITERIA}")
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            ccp_alpha=ccp_alpha,
            random_state=random_state,
        )
        self.criterion = criterion
        self.classes_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        params = super().get_params()
        params["criterion"] = self.criterion
        return params

    # -- criterion ---------------------------------------------------------
    def _impurity_from_counts(self, counts: np.ndarray) -> float:
        if self.criterion == "gini":
            return _gini(counts)
        return _entropy(counts)

    def _node_impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self._n_classes)
        return self._impurity_from_counts(counts)

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self._n_classes)
        total = counts.sum()
        if total == 0:
            return np.full(self._n_classes, 1.0 / self._n_classes)
        return counts / total

    def _best_split(self, x_col, y, order):
        """Best threshold on one feature via class-count prefix sums."""
        x_sorted = x_col[order]
        y_sorted = y[order]
        n = y_sorted.size
        one_hot = np.zeros((n, self._n_classes))
        one_hot[np.arange(n), y_sorted] = 1.0
        prefix = np.cumsum(one_hot, axis=0)
        total = prefix[-1]
        parent_impurity = self._impurity_from_counts(total)

        # Candidate split positions: between distinct consecutive x values,
        # honoring min_samples_leaf on both sides.
        lo = self.min_samples_leaf
        hi = n - self.min_samples_leaf
        if hi < lo:
            return 0.0, 0.0
        positions = np.arange(lo, hi + 1)
        distinct = x_sorted[positions] > x_sorted[positions - 1] + 1e-15
        positions = positions[distinct]
        if positions.size == 0:
            return 0.0, 0.0

        left_counts = prefix[positions - 1]
        right_counts = total - left_counts
        n_left = positions.astype(np.float64)
        n_right = n - n_left

        def batch_impurity(counts, sizes):
            p = counts / sizes[:, None]
            if self.criterion == "gini":
                return 1.0 - np.sum(p * p, axis=1)
            logs = np.zeros_like(p)
            np.log2(p, where=p > 0, out=logs)
            return -np.sum(p * logs, axis=1)

        weighted = (
            n_left * batch_impurity(left_counts, n_left)
            + n_right * batch_impurity(right_counts, n_right)
        ) / n
        gains = parent_impurity - weighted
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return 0.0, 0.0
        pos = positions[best]
        threshold = 0.5 * (x_sorted[pos - 1] + x_sorted[pos])
        return float(gains[best]), float(threshold)

    # -- public API -----------------------------------------------------------
    def fit(self, features, labels) -> "DecisionTreeClassifier":
        """Fit the tree; labels may be any hashable values."""
        features, labels = self._validate_xy(features, labels)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._n_classes = self.classes_.size
        self._fit_tree(features, encoded.astype(np.int64))
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Class-probability estimates, one row per sample."""
        return self._decision_values(features)

    def predict(self, features) -> np.ndarray:
        """Predicted class labels."""
        if self.classes_ is None:
            raise ModelError("estimator is not fitted; call fit() first")
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, features, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))

    def decision_path(self, features) -> dict:
        """Path trace plus the decoded class and its vote margin.

        The leaf gains ``prediction`` (the class label, decoded exactly
        like :meth:`predict`) and ``margin`` — the probability gap
        between the winning class and the runner-up at the leaf (1.0
        for a pure or single-class leaf).
        """
        if self.classes_ is None:
            raise ModelError("estimator is not fitted; call fit() first")
        path = super().decision_path(features)
        probabilities = np.asarray(path["leaf"]["value"])
        best = int(np.argmax(probabilities))
        prediction = self.classes_[best]
        item = getattr(prediction, "item", None)
        path["leaf"]["prediction"] = item() if callable(item) else prediction
        if probabilities.size > 1:
            others = np.delete(probabilities, best)
            margin = float(probabilities[best] - others.max())
        else:
            margin = 1.0
        path["leaf"]["margin"] = margin
        return path


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree with variance-reduction splitting."""

    def _node_impurity(self, y: np.ndarray) -> float:
        return _variance(y)

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(np.mean(y))]) if y.size else np.zeros(1)

    def _best_split(self, x_col, y, order):
        x_sorted = x_col[order]
        y_sorted = y[order].astype(np.float64)
        n = y_sorted.size
        prefix = np.cumsum(y_sorted)
        prefix_sq = np.cumsum(y_sorted * y_sorted)
        total, total_sq = prefix[-1], prefix_sq[-1]
        parent = total_sq / n - (total / n) ** 2

        lo = self.min_samples_leaf
        hi = n - self.min_samples_leaf
        if hi < lo:
            return 0.0, 0.0
        positions = np.arange(lo, hi + 1)
        distinct = x_sorted[positions] > x_sorted[positions - 1] + 1e-15
        positions = positions[distinct]
        if positions.size == 0:
            return 0.0, 0.0

        n_left = positions.astype(np.float64)
        n_right = n - n_left
        sum_left = prefix[positions - 1]
        sq_left = prefix_sq[positions - 1]
        var_left = sq_left / n_left - (sum_left / n_left) ** 2
        sum_right = total - sum_left
        sq_right = total_sq - sq_left
        var_right = sq_right / n_right - (sum_right / n_right) ** 2
        weighted = (n_left * var_left + n_right * var_right) / n
        gains = parent - weighted
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return 0.0, 0.0
        pos = positions[best]
        threshold = 0.5 * (x_sorted[pos - 1] + x_sorted[pos])
        return float(gains[best]), float(threshold)

    def fit(self, features, targets) -> "DecisionTreeRegressor":
        """Fit the tree on continuous targets."""
        features, targets = self._validate_xy(features, targets)
        self._fit_tree(features, targets.astype(np.float64))
        return self

    def predict(self, features) -> np.ndarray:
        """Predicted targets."""
        return self._decision_values(features)[:, 0]

    def decision_path(self, features) -> dict:
        """Path trace plus the predicted target at the leaf."""
        path = super().decision_path(features)
        path["leaf"]["prediction"] = path["leaf"]["value"][0]
        return path

    def score(self, features, targets) -> float:
        """Coefficient of determination R^2."""
        targets = np.asarray(targets, dtype=np.float64)
        predictions = self.predict(features)
        ss_res = float(np.sum((targets - predictions) ** 2))
        ss_tot = float(np.sum((targets - targets.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot


def clone_estimator(estimator, **overrides):
    """Return an unfitted copy of ``estimator`` with parameter overrides."""
    params = estimator.get_params()
    params.update(overrides)
    return type(estimator)(**params)


def _as_feature_names(names: Optional[Sequence[str]], count: int) -> List[str]:
    if names is None:
        return [f"x{i}" for i in range(count)]
    return list(names)
