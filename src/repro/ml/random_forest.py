"""Random forest classifier (bagged CART ensemble).

The paper compared decision trees against random forests and found
"similar inference accuracies" (Section 4.3) before choosing plain trees
for their lower inference overhead and explainability. This module
provides the forest so that comparison can be reproduced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.ml.decision_tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 10,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: str = "sqrt",
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ModelError("n_estimators must be >= 1")
        if max_features not in ("sqrt", "all"):
            raise ModelError("max_features must be 'sqrt' or 'all'")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: list = []
        self.classes_: Optional[np.ndarray] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        """Constructor parameters, for model-selection clones."""
        return {
            "n_estimators": self.n_estimators,
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
        }

    def fit(self, features, labels) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ModelError("X must be a non-empty 2-D array")
        if labels.shape[0] != features.shape[0]:
            raise ModelError("X and y must have the same number of rows")
        self.classes_ = np.unique(labels)
        n_samples, n_features = features.shape
        if self.max_features == "sqrt":
            feature_budget = max(1, int(np.sqrt(n_features)))
        else:
            feature_budget = n_features
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        importances = np.zeros(n_features)
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=feature_budget,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[sample], labels[sample])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        if total > 0:
            self.feature_importances_ = importances / total
        else:
            self.feature_importances_ = importances
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Class probabilities averaged across trees."""
        if not self.trees_:
            raise ModelError("estimator is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        accumulated = np.zeros((features.shape[0], self.classes_.size))
        for tree in self.trees_:
            probs = tree.predict_proba(features)
            # Align each tree's class set to the forest-wide class set.
            col_map = np.searchsorted(self.classes_, tree.classes_)
            accumulated[:, col_map] += probs
        return accumulated / len(self.trees_)

    def predict(self, features) -> np.ndarray:
        """Majority-vote class labels."""
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]

    def decision_path(self, features) -> dict:
        """Per-tree root-to-leaf traces plus the ensemble vote tally.

        Returns a dict with the decoded ensemble ``prediction`` (exactly
        :meth:`predict` on the same sample), the averaged ``votes`` per
        class label, the ensemble ``margin`` (winner minus runner-up
        vote share), and ``trees`` — one
        :meth:`~repro.ml.decision_tree.DecisionTreeClassifier.decision_path`
        result per member tree, each carrying its own leaf margin.
        """
        if not self.trees_:
            raise ModelError("estimator is not fitted; call fit() first")
        sample = np.asarray(features, dtype=np.float64).reshape(1, -1)
        votes = self.predict_proba(sample)[0]
        best = int(np.argmax(votes))
        prediction = self.classes_[best]
        item = getattr(prediction, "item", None)
        if votes.size > 1:
            others = np.delete(votes, best)
            margin = float(votes[best] - others.max())
        else:
            margin = 1.0
        return {
            "prediction": item() if callable(item) else prediction,
            "votes": {
                str(label): float(share)
                for label, share in zip(self.classes_, votes)
            },
            "margin": margin,
            "trees": [tree.decision_path(sample[0]) for tree in self.trees_],
        }

    def score(self, features, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
