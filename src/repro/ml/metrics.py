"""Evaluation metrics for the ML substrate."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = [
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "geometric_mean",
    "grouped_importance",
]


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ModelError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ModelError("cannot score empty predictions")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Square confusion matrix over the union of observed labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


def macro_f1(y_true, y_pred) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred)
    f1_scores = []
    for i in range(matrix.shape[0]):
        tp = matrix[i, i]
        fp = matrix[:, i].sum() - tp
        fn = matrix[i, :].sum() - tp
        denominator = 2 * tp + fp + fn
        f1_scores.append(2 * tp / denominator if denominator else 0.0)
    return float(np.mean(f1_scores))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (paper's GM aggregation)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ModelError("geometric mean of empty sequence")
    if np.any(values <= 0):
        raise ModelError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def grouped_importance(
    importances: np.ndarray, groups: Sequence[str]
) -> Dict[str, float]:
    """Sum per-feature importances into named groups (Figure 10).

    Parameters
    ----------
    importances:
        Per-feature importance vector (sums to 1 for a fitted tree).
    groups:
        Group name of each feature, parallel to ``importances``.
    """
    importances = np.asarray(importances, dtype=np.float64)
    if importances.size != len(groups):
        raise ModelError("importances and groups must be parallel")
    out: Dict[str, float] = {}
    for value, group in zip(importances, groups):
        out[group] = out.get(group, 0.0) + float(value)
    return out
