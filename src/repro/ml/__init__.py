"""Machine-learning substrate: trees, forests, linear models, CV.

Public API::

    from repro.ml import (
        DecisionTreeClassifier, DecisionTreeRegressor,
        RandomForestClassifier, LinearRegression, LogisticRegression,
        KFold, GridSearchCV, cross_val_score, train_test_split,
    )
"""

from repro.ml import metrics
from repro.ml.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    TreeNode,
    clone_estimator,
)
from repro.ml.linear import LinearRegression, LogisticRegression
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.random_forest import RandomForestClassifier

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
    "clone_estimator",
    "RandomForestClassifier",
    "LinearRegression",
    "LogisticRegression",
    "KFold",
    "GridSearchCV",
    "cross_val_score",
    "train_test_split",
    "metrics",
]
