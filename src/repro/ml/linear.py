"""Linear and logistic regression baselines.

Section 4.3 of the paper: "We experimented with four machine learning
models, namely decision trees, random forests, linear regression, and
logistic regression ... the linear and logistic regression models gave
us poor accuracies." These two estimators reproduce that comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError

__all__ = ["LinearRegression", "LogisticRegression"]


def _with_bias(features: np.ndarray) -> np.ndarray:
    return np.hstack([features, np.ones((features.shape[0], 1))])


def _validate(features, targets):
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ModelError("X must be a non-empty 2-D array")
    if targets.shape[0] != features.shape[0]:
        raise ModelError("X and y must have the same number of rows")
    return features, targets


class LinearRegression:
    """Ordinary least squares with a small ridge term for stability.

    Used as a classifier baseline by regressing the encoded label and
    rounding to the nearest class (the paper used it the same way and
    found it inaccurate for the configuration-prediction task).
    """

    def __init__(self, l2: float = 1e-8) -> None:
        if l2 < 0:
            raise ModelError("l2 must be non-negative")
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        """Constructor parameters, for model-selection clones."""
        return {"l2": self.l2}

    def fit(self, features, targets) -> "LinearRegression":
        """Fit with the normal equations (ridge-regularized)."""
        features, targets = _validate(features, targets)
        self.classes_, encoded = np.unique(targets, return_inverse=True)
        design = _with_bias(features)
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        self.coef_ = np.linalg.solve(gram, design.T @ encoded.astype(float))
        return self

    def decision_function(self, features) -> np.ndarray:
        """Raw regression output (encoded-class scale)."""
        if self.coef_ is None:
            raise ModelError("estimator is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return _with_bias(features) @ self.coef_

    def predict(self, features) -> np.ndarray:
        """Nearest-class prediction by rounding the regression output."""
        raw = self.decision_function(features)
        idx = np.clip(np.round(raw), 0, self.classes_.size - 1).astype(int)
        return self.classes_[idx]

    def score(self, features, labels) -> float:
        """Mean accuracy (classification usage)."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))


class LogisticRegression:
    """Multinomial logistic regression fit by full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 500,
        l2: float = 1e-4,
    ) -> None:
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if n_iterations < 1:
            raise ModelError("n_iterations must be >= 1")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        """Constructor parameters, for model-selection clones."""
        return {
            "learning_rate": self.learning_rate,
            "n_iterations": self.n_iterations,
            "l2": self.l2,
        }

    def fit(self, features, labels) -> "LogisticRegression":
        """Fit with softmax cross-entropy gradient descent."""
        features, labels = _validate(features, labels)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std == 0] = 1.0
        design = _with_bias((features - self._mean) / self._std)
        n, d = design.shape
        k = self.classes_.size
        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), encoded] = 1.0
        weights = np.zeros((d, k))
        for _ in range(self.n_iterations):
            logits = design @ weights
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probs = exp / exp.sum(axis=1, keepdims=True)
            gradient = design.T @ (probs - one_hot) / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights_ = weights
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Softmax class probabilities."""
        if self.weights_ is None:
            raise ModelError("estimator is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        design = _with_bias((features - self._mean) / self._std)
        logits = design @ self.weights_
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features) -> np.ndarray:
        """Most probable class labels."""
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, features, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
