"""Cross-validation and hyperparameter search.

The paper trains its decision trees "using k-fold cross-validation with
k = 3, while sweeping the hyperparameters of criterion, max_depth, and
min_samples_leaf" (Section 5.1). :class:`GridSearchCV` reproduces that
procedure for any estimator exposing ``fit``/``score``/``get_params``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = ["KFold", "cross_val_score", "GridSearchCV", "train_test_split"]


class KFold:
    """Deterministic k-fold splitter with optional shuffling."""

    def __init__(
        self,
        n_splits: int = 3,
        shuffle: bool = True,
        random_state: Optional[int] = 0,
    ) -> None:
        if n_splits < 2:
            raise ModelError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        if n_samples < self.n_splits:
            raise ModelError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train, test


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    random_state: Optional[int] = 0,
):
    """Shuffle and split into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    n = features.shape[0]
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n)
    cut = max(1, int(round(n * (1.0 - test_fraction))))
    train, test = order[:cut], order[cut:]
    return features[train], features[test], labels[train], labels[test]


def cross_val_score(
    estimator,
    features: np.ndarray,
    labels: np.ndarray,
    kfold: Optional[KFold] = None,
) -> np.ndarray:
    """Per-fold scores of an unfitted estimator under k-fold CV."""
    from repro.ml.decision_tree import clone_estimator

    kfold = kfold or KFold()
    features = np.asarray(features)
    labels = np.asarray(labels)
    scores = []
    for train_idx, test_idx in kfold.split(features.shape[0]):
        fold_model = clone_estimator(estimator)
        fold_model.fit(features[train_idx], labels[train_idx])
        scores.append(fold_model.score(features[test_idx], labels[test_idx]))
    return np.array(scores)


@dataclass
class GridSearchCV:
    """Exhaustive hyperparameter search with k-fold cross-validation.

    Parameters
    ----------
    estimator:
        Prototype estimator (unfitted) providing ``get_params``.
    param_grid:
        Mapping from parameter name to the sequence of values to sweep.
    kfold:
        Fold splitter; defaults to the paper's 3-fold CV.
    """

    estimator: object
    param_grid: Dict[str, Sequence]
    kfold: KFold = field(default_factory=KFold)
    best_params_: Optional[dict] = None
    best_score_: float = -np.inf
    best_estimator_: Optional[object] = None
    results_: List[dict] = field(default_factory=list)

    def _candidates(self) -> Iterator[dict]:
        names = sorted(self.param_grid)
        for values in itertools.product(*(self.param_grid[n] for n in names)):
            yield dict(zip(names, values))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GridSearchCV":
        """Evaluate every grid point, refit the best on all data."""
        from repro.ml.decision_tree import clone_estimator

        features = np.asarray(features)
        labels = np.asarray(labels)
        self.results_ = []
        self.best_score_ = -np.inf
        self.best_params_ = None
        for params in self._candidates():
            candidate = clone_estimator(self.estimator, **params)
            scores = cross_val_score(candidate, features, labels, self.kfold)
            mean_score = float(scores.mean())
            self.results_.append({"params": params, "mean_score": mean_score})
            if mean_score > self.best_score_:
                self.best_score_ = mean_score
                self.best_params_ = params
        if self.best_params_ is None:
            raise ModelError("param_grid produced no candidates")
        self.best_estimator_ = clone_estimator(
            self.estimator, **self.best_params_
        )
        self.best_estimator_.fit(features, labels)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict with the refitted best estimator."""
        if self.best_estimator_ is None:
            raise ModelError("search has not been fit")
        return self.best_estimator_.predict(features)
