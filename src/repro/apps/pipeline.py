"""Multi-kernel application pipelines under one controller.

Real deployments (the paper's cloud/edge scenarios) run *sequences* of
offloaded kernels — e.g. a graph-analytics service running BFS, then
PageRank, then connected components over the same graph. Each kernel
boundary is a hard explicit phase change on top of the kernels' own
internal phases, and a single controller instance carries its
configuration (and, for the history variant, its pattern table) across
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SparseAdaptController
from repro.core.schedule import ScheduleResult
from repro.errors import ConfigError
from repro.kernels.base import KernelTrace

__all__ = ["PipelineStage", "PipelineResult", "concat_traces", "run_pipeline"]


@dataclass(frozen=True)
class PipelineStage:
    """One kernel of a pipeline: a name and its workload trace."""

    name: str
    trace: KernelTrace


@dataclass
class PipelineResult:
    """Combined schedule plus the per-stage breakdown."""

    schedule: ScheduleResult
    stage_slices: List[Tuple[str, int, int]] = field(default_factory=list)

    def stage_schedule(self, name: str) -> ScheduleResult:
        """The sub-schedule of one named stage."""
        for stage_name, start, stop in self.stage_slices:
            if stage_name == name:
                sliced = ScheduleResult(scheme=f"{self.schedule.scheme}/{name}")
                sliced.records = self.schedule.records[start:stop]
                return sliced
        raise ConfigError(f"unknown pipeline stage {name!r}")

    def per_stage_summary(self) -> Dict[str, dict]:
        """Scalar summary per stage."""
        return {
            name: self.stage_schedule(name).summary()
            for name, _, _ in self.stage_slices
        }


def concat_traces(
    stages: Sequence[PipelineStage], name: str = "pipeline"
) -> KernelTrace:
    """Concatenate stage traces into one application trace."""
    if not stages:
        raise ConfigError("pipeline needs at least one stage")
    epochs = []
    info: Dict[str, float] = {}
    for stage in stages:
        epochs.extend(stage.trace.epochs)
        info[f"{stage.name}_epochs"] = float(stage.trace.n_epochs)
        info[f"{stage.name}_flops"] = stage.trace.total_flops
    return KernelTrace(name=name, epochs=epochs, info=info)


def run_pipeline(
    controller: SparseAdaptController,
    stages: Sequence[PipelineStage],
    name: str = "pipeline",
) -> PipelineResult:
    """Run the stages back to back under one controller instance.

    The controller's configuration state carries across stage
    boundaries, exactly as the runtime would behave for consecutive
    kernel offloads (the epoch after a boundary still reconfigures
    based on the last epoch of the previous kernel — an explicit phase
    change the telemetry must detect).
    """
    trace = concat_traces(stages, name)
    schedule = controller.run(trace)
    slices: List[Tuple[str, int, int]] = []
    cursor = 0
    for stage in stages:
        n = stage.trace.n_epochs
        slices.append((stage.name, cursor, cursor + n))
        cursor += n
    return PipelineResult(schedule=schedule, stage_slices=slices)
