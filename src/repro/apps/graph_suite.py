"""A ready-made graph-analytics application: BFS + PageRank + CC.

The canonical multi-kernel pipeline over one graph — the workload mix
a graph-analytics service offloads to the accelerator. Builds the
stage traces from the real algorithms and exposes them to
:func:`repro.apps.pipeline.run_pipeline`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.pipeline import PipelineStage
from repro.graph.bfs import bfs
from repro.graph.components import connected_components
from repro.graph.pagerank import pagerank
from repro.sparse.coo import COOMatrix

__all__ = ["graph_analytics_stages"]


def graph_analytics_stages(
    graph: COOMatrix,
    source: Optional[int] = None,
    pagerank_iterations: int = 5,
) -> List[PipelineStage]:
    """Build the BFS -> PageRank -> connected-components stage list.

    ``source`` defaults to the highest-out-degree vertex so the BFS
    frontier actually grows on power-law graphs.
    """
    csc = graph.to_csc()
    if source is None:
        source = int(np.argmax(csc.col_lengths()))
    bfs_result = bfs(csc, source)
    pagerank_result = pagerank(
        csc, max_iterations=pagerank_iterations, trace_iterations=pagerank_iterations
    )
    components_result = connected_components(csc)
    return [
        PipelineStage("bfs", bfs_result.trace),
        PipelineStage("pagerank", pagerank_result.trace),
        PipelineStage("components", components_result.trace),
    ]
