"""Application pipelines: multi-kernel workloads under one controller.

Public API::

    from repro.apps import (
        PipelineStage, PipelineResult, concat_traces, run_pipeline,
        graph_analytics_stages,
    )
"""

from repro.apps.graph_suite import graph_analytics_stages
from repro.apps.pipeline import (
    PipelineResult,
    PipelineStage,
    concat_traces,
    run_pipeline,
)

__all__ = [
    "PipelineStage",
    "PipelineResult",
    "concat_traces",
    "run_pipeline",
    "graph_analytics_stages",
]
