"""Oracle dynamic scheme (paper Section 5.3 / Appendix A.7 step 7).

The Oracle selects the sequence of configuration changes that maximizes
the whole-program metric, with full knowledge of every epoch. The paper
models this as a shortest-path problem over a layered DAG — one node
per (epoch, sampled configuration), edge weights combining the epoch's
execution cost with the transition penalty — solved with a modified
Dijkstra (dynamic programming over layers).

* **Energy-Efficient mode**: GFLOPS/W = flops / energy with flops
  fixed, so the objective is exactly additive in energy and a single
  min-energy DP is globally optimal.
* **Power-Performance mode**: GFLOPS^3/W reduces to minimizing
  ``T^2 * E`` where ``T`` and ``E`` are path totals — not additive.
  The solver scans scalarizations ``min sum(lambda * t + e)``: each
  lambda traces one point of the (T, E) Pareto frontier, and the best
  ``T^2 E`` over the scan is returned. The frontier point minimizing a
  smooth monotone objective is always reachable by some scalarization,
  so the scan converges to the paper's "approximate global optimum".
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.table import EpochTable
from repro.core.modes import OptimizationMode
from repro.core.schedule import EpochRecord, ScheduleResult

__all__ = ["oracle", "epoch_cost_proxy", "per_epoch_costs"]


def epoch_cost_proxy(mode: OptimizationMode) -> str:
    """The additive per-epoch cost the oracle DP minimizes in ``mode``.

    Energy-Efficient mode optimizes GFLOPS/W with flops fixed, so the
    objective decomposes exactly into per-epoch energy. The
    Power-Performance objective ``T^2 E`` is not additive; per-epoch
    time is the dominant (squared) term and serves as the regret proxy.
    """
    if mode is OptimizationMode.ENERGY_EFFICIENT:
        return "energy_j"
    return "time_s"


def per_epoch_costs(
    schedule: ScheduleResult, mode: OptimizationMode
) -> np.ndarray:
    """Per-epoch proxy cost of a schedule, transition costs included.

    ``EpochRecord.time_s`` / ``energy_j`` already fold in the
    reconfiguration paid before the epoch ran, so a scheme that
    thrashes between configurations is charged for it here.
    """
    attr = epoch_cost_proxy(mode)
    return np.array(
        [getattr(record, attr) for record in schedule.records]
    )


def _layered_shortest_path(
    cost_epochs: np.ndarray, cost_moves: np.ndarray
) -> Tuple[List[int], float]:
    """DP over the epoch x config DAG with additive edge costs.

    ``cost_epochs[e, c]`` is the cost of running epoch ``e`` on config
    ``c``; ``cost_moves[p, c]`` the cost of switching ``p -> c``.
    Returns the argmin path and its total cost.
    """
    n_epochs, n_configs = cost_epochs.shape
    best = cost_epochs[0].copy()
    parent = np.zeros((n_epochs, n_configs), dtype=np.int64)
    parent[0] = -1
    for epoch in range(1, n_epochs):
        # candidate[p, c] = best[p] + move cost p->c
        candidate = best[:, None] + cost_moves
        parent[epoch] = np.argmin(candidate, axis=0)
        best = candidate[parent[epoch], np.arange(n_configs)] + cost_epochs[epoch]
    final = int(np.argmin(best))
    path = [final]
    for epoch in range(n_epochs - 1, 0, -1):
        path.append(int(parent[epoch][path[-1]]))
    path.reverse()
    return path, float(best[final])


def _path_to_schedule(
    table: EpochTable, path: List[int], scheme: str
) -> ScheduleResult:
    schedule = ScheduleResult(scheme=scheme)
    previous = None
    for epoch, config_index in enumerate(path):
        reconfig = None
        if previous is not None and config_index != previous:
            reconfig = table.reconfig_cost(
                table.configs[previous], table.configs[config_index]
            )
        schedule.append(
            EpochRecord(
                index=epoch,
                config=table.configs[config_index],
                result=table.results[epoch][config_index],
                reconfig=reconfig,
            )
        )
        previous = config_index
    return schedule


def oracle(
    table: EpochTable,
    mode: OptimizationMode,
    n_lambda: int = 17,
) -> ScheduleResult:
    """Globally optimal configuration sequence over the sampled space."""
    move_times, move_energies = table.reconfig_matrices()
    if mode is OptimizationMode.ENERGY_EFFICIENT:
        path, _ = _layered_shortest_path(table.energies, move_energies)
        return _path_to_schedule(table, path, "oracle")

    # Power-Performance: scan lambda scalarizations of (time, energy).
    # Bracket lambda around the characteristic power scale 2E/T of the
    # fastest/most-frugal static points so the scan spans the frontier.
    total_time = table.times.sum(axis=0)
    total_energy = table.energies.sum(axis=0)
    center = 2.0 * total_energy.mean() / max(total_time.mean(), 1e-15)
    lambdas = center * np.logspace(-3, 3, n_lambda)
    best_schedule = None
    best_objective = np.inf
    for lam in lambdas:
        cost_epochs = lam * table.times + table.energies
        cost_moves = lam * move_times + move_energies
        path, _ = _layered_shortest_path(cost_epochs, cost_moves)
        schedule = _path_to_schedule(table, path, "oracle")
        objective = schedule.total_time_s**2 * schedule.total_energy_j
        if objective < best_objective:
            best_objective = objective
            best_schedule = schedule
    return best_schedule
