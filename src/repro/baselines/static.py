"""Static (non-reconfiguring) comparison points (paper Table 4 / 5.3).

* **Baseline** — the best-average configuration across the broad
  application set of the original Transmuter paper.
* **Best Avg** — the best-average static configuration for the SpMSpM /
  SpMSpV kernels on this work's datasets (one per L1 type).
* **Max Cfg** — maximum value of every ordinal parameter, shared caches.
* **Ideal Static** — the best static configuration *for the specific
  program and dataset*, selected with hindsight from the sampled space.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.table import EpochTable
from repro.core.modes import OptimizationMode
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.kernels.base import KernelTrace
from repro.transmuter.config import HardwareConfig
from repro.transmuter.machine import TransmuterModel

__all__ = [
    "BASELINE",
    "BEST_AVG_CACHE",
    "BEST_AVG_SPM",
    "MAX_CFG",
    "spm_variant",
    "static_configs_for",
    "run_static",
    "ideal_static",
]

#: Table 4, row "Baseline".
BASELINE = HardwareConfig(
    l1_type="cache",
    l1_sharing="shared",
    l2_sharing="shared",
    l1_kb=4,
    l2_kb=4,
    clock_mhz=1000.0,
    prefetch=4,
)

#: Table 4, row "Best Avg (L1: cache)".
BEST_AVG_CACHE = HardwareConfig(
    l1_type="cache",
    l1_sharing="private",
    l2_sharing="shared",
    l1_kb=4,
    l2_kb=4,
    clock_mhz=1000.0,
    prefetch=0,
)

#: Table 4, row "Best Avg (L1: SPM)".
BEST_AVG_SPM = HardwareConfig(
    l1_type="spm",
    l1_sharing="private",
    l2_sharing="private",
    l1_kb=4,
    l2_kb=32,
    clock_mhz=500.0,
    prefetch=8,
)

#: Table 4, row "Maximum".
MAX_CFG = HardwareConfig(
    l1_type="cache",
    l1_sharing="shared",
    l2_sharing="shared",
    l1_kb=64,
    l2_kb=64,
    clock_mhz=1000.0,
    prefetch=8,
)


def spm_variant(config: HardwareConfig) -> HardwareConfig:
    """SPM twin of a cache configuration (L1 capacity pinned)."""
    from dataclasses import replace

    from repro.transmuter.config import SPM_FIXED_L1_KB

    return replace(config, l1_type="spm", l1_kb=SPM_FIXED_L1_KB)


def static_configs_for(l1_type: str = "cache") -> Dict[str, HardwareConfig]:
    """The named static comparison points for one L1 type."""
    if l1_type == "cache":
        return {
            "Baseline": BASELINE,
            "Best Avg": BEST_AVG_CACHE,
            "Max Cfg": MAX_CFG,
        }
    if l1_type == "spm":
        return {
            "Baseline": spm_variant(BASELINE),
            "Best Avg": BEST_AVG_SPM,
            "Max Cfg": spm_variant(MAX_CFG),
        }
    raise ConfigError(f"unknown l1_type {l1_type!r}")


def run_static(
    machine: TransmuterModel,
    trace: KernelTrace,
    config: HardwareConfig,
    scheme: str = "static",
) -> ScheduleResult:
    """Run every epoch of a trace on one fixed configuration."""
    from repro import fastpath

    schedule = ScheduleResult(scheme=scheme)
    if trace.epochs and fastpath.batch_active():
        from repro.fastpath.epochs import simulate_trace

        results = simulate_trace(machine, trace.epochs, config)
    else:
        results = [
            machine.simulate_epoch(workload, config)
            for workload in trace.epochs
        ]
    for index, result in enumerate(results):
        schedule.append(
            EpochRecord(index=index, config=config, result=result)
        )
    return schedule


def ideal_static(table: EpochTable, mode: OptimizationMode) -> ScheduleResult:
    """Best whole-trace static configuration from the sampled space."""
    from repro import fastpath

    if fastpath.enabled():
        return _ideal_static_fast(table, mode)
    best_schedule = None
    best_metric = float("-inf")
    for config in table.configs:
        schedule = ScheduleResult(scheme="ideal-static")
        for index in range(table.n_epochs):
            schedule.append(
                EpochRecord(
                    index=index,
                    config=config,
                    result=table.result(index, config),
                )
            )
        metric = schedule.metric(mode)
        if metric > best_metric:
            best_metric = metric
            best_schedule = schedule
    return best_schedule


def _ideal_static_fast(
    table: EpochTable, mode: OptimizationMode
) -> ScheduleResult:
    """Same selection from the table's time/energy columns.

    A static schedule pays no reconfiguration or host overhead, so its
    metric depends only on the per-epoch times and energies the table
    already holds. ``x + 0.0 == x`` bitwise for the positive epoch
    values, and Python's left-to-right ``sum`` here matches
    ``ScheduleResult.total_*`` term for term, so both the totals and
    the first-strict-max winner are bit-identical to the scalar loop —
    without materializing an ``EpochRecord`` per (epoch, config) cell.
    """
    from repro.core.modes import metric_value

    flops = sum(workload.flops for workload in table.trace.epochs)
    best_index = None
    best_metric = float("-inf")
    for j in range(table.n_configs):
        metric = metric_value(
            mode,
            flops,
            sum(table.times[:, j].tolist()),
            sum(table.energies[:, j].tolist()),
        )
        if metric > best_metric:
            best_metric = metric
            best_index = j
    schedule = ScheduleResult(scheme="ideal-static")
    config = table.configs[best_index]
    for index in range(table.n_epochs):
        schedule.append(
            EpochRecord(
                index=index,
                config=config,
                result=table.result(index, config),
            )
        )
    return schedule
