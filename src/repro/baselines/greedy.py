"""Ideal Greedy dynamic scheme (paper Section 5.3 / Appendix A.7 step 6).

A hypothetical controller with a *perfect* single-epoch predictor: at
every epoch boundary it switches to whichever sampled configuration
optimizes the mode's objective for the next epoch alone, including the
reconfiguration penalty of getting there. It is the upper bound of
SparseAdapt's Aggressive operation (Section 7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.table import EpochTable
from repro.core.modes import OptimizationMode
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.transmuter.config import HardwareConfig

__all__ = ["ideal_greedy"]


def ideal_greedy(
    table: EpochTable,
    mode: OptimizationMode,
    initial: Optional[HardwareConfig] = None,
) -> ScheduleResult:
    """Greedy per-epoch optimal schedule over the sampled configs."""
    times, energies = table.reconfig_matrices()
    schedule = ScheduleResult(scheme="ideal-greedy")
    if initial is not None and initial in set(table.configs):
        current = table.config_index(initial)
    else:
        # First epoch: free choice (no incumbent to switch away from).
        current = None
    for epoch in range(table.n_epochs):
        epoch_times = table.times[epoch]
        epoch_energies = table.energies[epoch]
        if current is None:
            move_times = np.zeros_like(epoch_times)
            move_energies = np.zeros_like(epoch_energies)
        else:
            move_times = times[current]
            move_energies = energies[current]
        total_times = epoch_times + move_times
        total_energies = epoch_energies + move_energies
        if mode is OptimizationMode.ENERGY_EFFICIENT:
            objective = total_energies
        else:
            objective = total_times**2 * total_energies
        best = int(np.argmin(objective))
        reconfig = None
        if current is not None and best != current:
            reconfig = table.reconfig_cost(
                table.configs[current], table.configs[best]
            )
        schedule.append(
            EpochRecord(
                index=epoch,
                config=table.configs[best],
                result=table.results[epoch][best],
                reconfig=reconfig,
            )
        )
        current = best
    return schedule
