"""Precomputed epoch x configuration result table.

The paper's methodology (Appendix A.7) simulates every epoch under S
randomly sampled configurations and then *stitches* dynamic schemes
(Ideal Greedy, Oracle, ProfileAdapt) out of the per-epoch segments.
:class:`EpochTable` is that table: one machine-model evaluation per
(epoch, configuration) pair, shared by all schemes so comparisons are
exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.kernels.base import KernelTrace
from repro.transmuter.config import HardwareConfig, sample_configs
from repro.transmuter.machine import EpochResult, TransmuterModel
from repro.transmuter.reconfig import reconfiguration_cost

__all__ = ["EpochTable"]

#: Fast-path memo for whole transition matrices: the matrices are a pure
#: function of the sampled config set, the machine geometry, and the
#: table's dirty-bytes bound, and campaigns rebuild tables over the same
#: sampled set for every job/scheme.
_MATRICES_MEMO: Dict[tuple, tuple] = {}
_MATRICES_MEMO_MAX = 64


class EpochTable:
    """Dense table of machine-model results for a trace.

    Parameters
    ----------
    machine:
        The machine model (geometry + bandwidth) to evaluate on.
    trace:
        The kernel trace whose epochs are simulated.
    configs:
        The sampled configuration set (paper: S = 256); defaults to a
        seeded sample including any ``include`` configurations.
    """

    def __init__(
        self,
        machine: TransmuterModel,
        trace: KernelTrace,
        configs: Optional[Sequence[HardwareConfig]] = None,
        n_samples: int = 64,
        l1_type: str = "cache",
        seed: int = 0,
        include: Sequence[HardwareConfig] = (),
    ) -> None:
        if configs is None:
            configs = sample_configs(
                n_samples, l1_type=l1_type, seed=seed, include=include
            )
        if not configs:
            raise SimulationError("need at least one configuration")
        if not trace.epochs:
            raise SimulationError("trace has no epochs")
        self.machine = machine
        self.trace = trace
        self.configs: List[HardwareConfig] = list(configs)
        self._index: Dict[HardwareConfig, int] = {
            cfg: i for i, cfg in enumerate(self.configs)
        }
        n_epochs = len(trace.epochs)
        n_configs = len(self.configs)
        from repro import fastpath

        if fastpath.batch_active():
            # One vectorized pass over the whole epoch x config grid;
            # EpochResult cells materialize lazily as schemes index them
            # (bit-identical to the scalar loop, see repro.fastpath).
            from repro.fastpath.epochs import EpochGrid

            grid = EpochGrid(machine, trace.epochs, self.configs)
            self.results = grid.rows()
            self.times = grid.times
            self.energies = grid.energies
        else:
            self.results = [
                [
                    machine.simulate_epoch(workload, config)
                    for config in self.configs
                ]
                for workload in trace.epochs
            ]
            self.times = np.array(
                [[r.time_s for r in row] for row in self.results]
            )
            self.energies = np.array(
                [[r.energy_j for r in row] for row in self.results]
            )
        assert self.times.shape == (n_epochs, n_configs)
        # Dirty-data bound for flush costs: the typical bytes written
        # into the hierarchy per epoch (see reconfiguration_cost).
        from repro.transmuter import params

        self.dirty_bytes_hint = float(
            np.median(
                [w.stores * params.WORD_BYTES for w in trace.epochs]
            )
        )
        self._reconfig_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        return len(self.trace.epochs)

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    @property
    def bandwidth_gbps(self) -> float:
        return self.machine.memory.bandwidth_bytes_per_s / 1e9

    def config_index(self, config: HardwareConfig) -> int:
        """Index of a configuration in the sampled set."""
        if config not in self._index:
            raise SimulationError(
                f"configuration {config.describe()} not in the sampled table"
            )
        return self._index[config]

    def result(self, epoch: int, config: HardwareConfig) -> EpochResult:
        """The machine-model result for one (epoch, config) pair."""
        return self.results[epoch][self.config_index(config)]

    # ------------------------------------------------------------------
    def reconfig_time_energy(
        self, source: HardwareConfig, target: HardwareConfig
    ) -> tuple:
        """Cached (time, energy) of one configuration transition."""
        key = (source, target)
        if key not in self._reconfig_cache:
            cost = reconfiguration_cost(
                source,
                target,
                self.machine.power,
                self.bandwidth_gbps,
                dirty_bytes_hint=self.dirty_bytes_hint,
            )
            self._reconfig_cache[key] = (cost.time_s, cost.energy_j)
        return self._reconfig_cache[key]

    def reconfig_cost(self, source: HardwareConfig, target: HardwareConfig):
        """Full transition cost with this table's dirty-bytes bound."""
        return reconfiguration_cost(
            source,
            target,
            self.machine.power,
            self.bandwidth_gbps,
            dirty_bytes_hint=self.dirty_bytes_hint,
        )

    def reconfig_matrices(self) -> tuple:
        """(time, energy) transition matrices over the sampled configs."""
        from repro import fastpath

        memo_key = None
        if fastpath.enabled():
            memo_key = (
                tuple(self.configs),
                self.machine.power.n_tiles,
                self.machine.power.gpes_per_tile,
                self.bandwidth_gbps,
                self.dirty_bytes_hint,
            )
            cached = _MATRICES_MEMO.get(memo_key)
            if cached is not None:
                times, energies = cached
                return times.copy(), energies.copy()
        n = self.n_configs
        times = np.zeros((n, n))
        energies = np.zeros((n, n))
        for i, source in enumerate(self.configs):
            for j, target in enumerate(self.configs):
                if i == j:
                    continue
                times[i, j], energies[i, j] = self.reconfig_time_energy(
                    source, target
                )
        if memo_key is not None:
            if len(_MATRICES_MEMO) >= _MATRICES_MEMO_MAX:
                _MATRICES_MEMO.clear()
            _MATRICES_MEMO[memo_key] = (times.copy(), energies.copy())
        return times, energies
