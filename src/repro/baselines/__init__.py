"""Comparison schemes: static points, Ideal Greedy, Oracle, ProfileAdapt.

Public API::

    from repro.baselines import (
        BASELINE, BEST_AVG_CACHE, BEST_AVG_SPM, MAX_CFG,
        EpochTable, run_static, ideal_static, ideal_greedy, oracle,
        profile_adapt,
    )
"""

from repro.baselines.greedy import ideal_greedy
from repro.baselines.oracle import epoch_cost_proxy, oracle, per_epoch_costs
from repro.baselines.profileadapt import profile_adapt
from repro.baselines.static import (
    BASELINE,
    BEST_AVG_CACHE,
    BEST_AVG_SPM,
    MAX_CFG,
    ideal_static,
    run_static,
    spm_variant,
    static_configs_for,
)
from repro.baselines.table import EpochTable

__all__ = [
    "BASELINE",
    "BEST_AVG_CACHE",
    "BEST_AVG_SPM",
    "MAX_CFG",
    "spm_variant",
    "static_configs_for",
    "run_static",
    "ideal_static",
    "ideal_greedy",
    "oracle",
    "epoch_cost_proxy",
    "per_epoch_costs",
    "profile_adapt",
    "EpochTable",
]
