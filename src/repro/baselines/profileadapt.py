"""ProfileAdapt comparison scheme (Dubach et al., paper Section 6.4).

ProfileAdapt detects a new phase, switches into a *profiling
configuration* (every reconfigurable parameter at its maximum), runs
there while collecting telemetry, then reconfigures to the predicted
configuration. Per the paper's pessimistic-to-us methodology (Appendix
A.7 step 8), it is applied *on top of the Ideal Greedy sequence*:

* **naive** — profiles at every epoch boundary (no phase detector);
* **ideal** — profiles only at epochs where the configuration changes,
  i.e. assumes a perfect external phase detector (SimPoint-like), which
  the paper notes is unrealistic for implicit phases.

The profiled epoch is split: the leading fraction runs in the profiling
configuration (still doing useful work), the remainder in the selected
configuration; both transition penalties are charged.
"""

from __future__ import annotations

from repro.baselines.greedy import ideal_greedy
from repro.baselines.static import MAX_CFG, spm_variant
from repro.baselines.table import EpochTable
from repro.core.modes import OptimizationMode
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.reconfig import ReconfigCost

__all__ = ["profile_adapt"]


def _profiling_config(l1_type: str) -> HardwareConfig:
    if l1_type == "cache":
        return MAX_CFG
    return spm_variant(MAX_CFG)


def profile_adapt(
    table: EpochTable,
    mode: OptimizationMode,
    variant: str = "naive",
    profiling_fraction: float = 0.2,
) -> ScheduleResult:
    """ProfileAdapt schedule derived from the Ideal Greedy sequence."""
    if variant not in ("naive", "ideal"):
        raise ConfigError(f"unknown ProfileAdapt variant {variant!r}")
    if not 0.0 < profiling_fraction < 1.0:
        raise ConfigError("profiling_fraction must be in (0, 1)")
    greedy = ideal_greedy(table, mode)
    sequence = greedy.config_sequence()
    l1_type = table.configs[0].l1_type
    profiling = _profiling_config(l1_type)
    schedule = ScheduleResult(scheme=f"profileadapt-{variant}")
    previous = None
    for epoch, config in enumerate(sequence):
        profile_here = variant == "naive" or previous is None or config != previous
        workload = table.trace.epochs[epoch]
        if not profile_here:
            schedule.append(
                EpochRecord(
                    index=epoch,
                    config=config,
                    result=table.results[epoch][table.config_index(config)],
                )
            )
            previous = config
            continue

        # Transition into the profiling configuration, run the leading
        # slice there, then transition to the selected configuration and
        # run the remainder. Both slices contribute useful work.
        cost_in = (
            table.reconfig_cost(previous, profiling)
            if previous is not None and previous != profiling
            else None
        )
        head = table.machine.simulate_epoch(
            workload.scaled(profiling_fraction), profiling
        )
        schedule.append(
            EpochRecord(
                index=epoch,
                config=profiling,
                result=head,
                reconfig=cost_in,
            )
        )
        cost_out: ReconfigCost = table.reconfig_cost(profiling, config)
        tail = table.machine.simulate_epoch(
            workload.scaled(1.0 - profiling_fraction), config
        )
        schedule.append(
            EpochRecord(
                index=epoch,
                config=config,
                result=tail,
                reconfig=cost_out if cost_out.changed else None,
            )
        )
        previous = config
    return schedule
