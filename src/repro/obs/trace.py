"""Structured tracing: spans, events, and the process recorder.

A :class:`TraceRecorder` turns instrumentation calls into flat record
dicts and hands them to a :class:`~repro.obs.sinks.TraceSink`:

* ``recorder.event("reconfig", epoch=3, cost_s=1e-5)`` — a point in
  time with attributes;
* ``with recorder.span("epoch", epoch=3) as span: ...`` — a timed
  region; ``span.set(**attrs)`` attaches attributes discovered while
  the span is open (the record is emitted at exit).

Record schema (one JSON object per line when file-backed)::

    {"seq": 17, "ts": 0.0123, "type": "span", "name": "epoch",
     "dur_s": 0.0021, "attrs": {"epoch": 3, ...}}

``seq`` is a monotonically increasing per-recorder sequence number,
``ts`` the offset in seconds from recorder creation (spans stamp their
*start*), ``dur_s`` is present on spans only.

An enabled recorder stamps a ``header`` record (name ``trace``) as its
very first emission, carrying :data:`SCHEMA_VERSION` so downstream
tooling (``repro trace-report`` / ``diff`` / ``explain``) can detect
format drift instead of misreading a trace. Traces from before the
header existed are treated as schema version 1.

The disabled case is a hard fast path: the module-level default
recorder wraps a :class:`NullSink`, its ``enabled`` flag is ``False``,
``event()`` returns immediately, and ``span()`` hands back a shared
no-op span. Instrumented hot loops check ``recorder.enabled`` once and
skip attribute assembly entirely, so tracing-off adds no measurable
cost to a run.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs.sinks import FileSink, MemorySink, NullSink, TraceSink

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "TraceRecorder",
    "get_recorder",
    "install",
    "recording",
]

#: Version of the trace record schema. Bump when record names, required
#: attributes, or field meanings change incompatibly. History:
#: 1 — PR 1 format (spans/events, no header);
#: 2 — header record, per-epoch ``config_values``, ``provenance``
#:     events with decision paths and policy verdicts.
SCHEMA_VERSION = 2


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """A timed region; emitted to the sink when the ``with`` block exits."""

    __slots__ = ("_recorder", "name", "attrs", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        self._recorder._emit("span", self.name, self.attrs, dur_s=duration)
        return False


class TraceRecorder:
    """Assembles trace records and forwards them to a sink."""

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        #: Hot-path guard: instrumentation checks this once per region.
        self.enabled = not isinstance(self.sink, NullSink)
        self._origin = time.perf_counter()
        self._seq = 0
        self._lock = threading.Lock()
        if self.enabled:
            self._emit("header", "trace", {"schema_version": SCHEMA_VERSION})

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one named region."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event."""
        if not self.enabled:
            return
        self._emit("event", name, attrs)

    # ------------------------------------------------------------------
    def _emit(self, record_type: str, name: str, attrs: dict, dur_s=None) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
        record = {
            "seq": seq,
            "ts": round(time.perf_counter() - self._origin, 9),
            "type": record_type,
            "name": name,
            "attrs": attrs,
        }
        if dur_s is not None:
            record["dur_s"] = round(dur_s, 9)
        self.sink.emit(record)

    @property
    def n_emitted(self) -> int:
        """Records emitted so far (sequence numbers are 0-based)."""
        return self._seq

    def close(self) -> None:
        self.sink.close()


#: The always-installed disabled recorder; instrumentation sees this
#: unless a run is explicitly being traced.
_NULL_RECORDER = TraceRecorder()
_current: TraceRecorder = _NULL_RECORDER


def get_recorder() -> TraceRecorder:
    """The process-wide recorder instrumentation should use."""
    return _current


def install(recorder: Optional[TraceRecorder]) -> TraceRecorder:
    """Swap the process recorder; returns the previous one.

    Passing ``None`` restores the disabled recorder.
    """
    global _current
    previous = _current
    _current = recorder if recorder is not None else _NULL_RECORDER
    return previous


@contextmanager
def recording(
    target: Union[TraceSink, str, Path, None] = None,
    capacity: int = 65536,
) -> Iterator[TraceRecorder]:
    """Trace everything inside the block.

    ``target`` selects the sink: a path records to a JSONL file, an
    explicit :class:`TraceSink` is used as-is, and ``None`` records to
    an in-memory ring buffer of ``capacity`` records. The previous
    recorder is restored (and the sink closed) on exit.
    """
    if target is None:
        sink: TraceSink = MemorySink(capacity)
    elif isinstance(target, (str, Path)):
        sink = FileSink(target)
    else:
        sink = target
    recorder = TraceRecorder(sink)
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
        recorder.close()
