"""Decision provenance: explain why a reconfiguration happened.

Answers, from a recorded trace alone, the question every bad
reconfiguration raises: *which counter crossed which threshold, and
why did the policy let the change through?* Input is the ``provenance``
records the controller emits (one per epoch and runtime parameter,
trace schema version 2); each carries the decision-tree path that
produced the proposal, the raw and noise-perturbed counter values the
model read, and the hysteresis policy's accept/reject verdict with its
cost-vs-budget numbers.

:func:`explain` returns the matching records structured per epoch;
:func:`render_explanation` turns them into the human-readable view the
``repro explain`` CLI verb prints::

    epoch 12 · l1_kb: 16 -> 64 (margin 0.83)
      [depth 0] l1_miss_rate = 0.3100 > threshold 0.2400 -> right
      [depth 1] dram_read_util = 0.8800 <= threshold 0.9100 -> left
      => leaf predicts 64 (41 training samples)
      verdict: ACCEPTED — applied l1_kb: cost 1.200e-06 s <= budget ...

Stdlib-only, like the rest of the trace tooling; traces without
provenance records (schema version 1, or recorded with tracing off)
are rejected with a :class:`ValueError` naming the problem.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "explain",
    "render_explanation",
    "render_divergence_explanation",
]


def _attrs(record: Dict) -> Dict:
    return record.get("attrs", {}) or {}


def _provenance_records(
    records: Sequence[Dict],
    epoch: Optional[int] = None,
    parameter: Optional[str] = None,
) -> List[Dict]:
    out = []
    for record in records:
        if record.get("type") != "event" or record.get("name") != "provenance":
            continue
        attrs = _attrs(record)
        if epoch is not None and attrs.get("epoch") != epoch:
            continue
        if parameter is not None and attrs.get("parameter") != parameter:
            continue
        out.append(attrs)
    out.sort(key=lambda a: (a.get("epoch", 0), a.get("parameter", "")))
    return out


def explain(
    records: Sequence[Dict],
    epoch: Optional[int] = None,
    parameter: Optional[str] = None,
) -> Dict:
    """Provenance records grouped by epoch, after optional filtering.

    With no ``epoch`` given, defaults to the epochs where the model
    proposed at least one change (the interesting ones); pass an
    explicit epoch to inspect a quiet one. Raises :class:`ValueError`
    when the trace carries no provenance at all, or nothing matches
    the filters.
    """
    everything = _provenance_records(records)
    if not everything:
        raise ValueError(
            "trace contains no provenance records (recorded by an older "
            "build, or with tracing disabled); re-record it with "
            "'repro trace' from this build"
        )
    selected = _provenance_records(records, epoch, parameter)
    if not selected:
        where = []
        if epoch is not None:
            where.append(f"epoch {epoch}")
        if parameter is not None:
            where.append(f"parameter {parameter!r}")
        raise ValueError(
            f"no provenance records match {' and '.join(where)}"
        )
    if epoch is None:
        proposing = sorted(
            {
                a["epoch"]
                for a in selected
                if a.get("predicted") != a.get("current")
            }
        )
        if proposing:
            selected = [a for a in selected if a["epoch"] in proposing]
    by_epoch: Dict[int, List[Dict]] = {}
    for attrs in selected:
        by_epoch.setdefault(attrs["epoch"], []).append(attrs)
    return {
        "n_provenance_records": len(everything),
        "epochs": by_epoch,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_record(attrs: Dict, lines: List[str]) -> None:
    current = attrs.get("current")
    predicted = attrs.get("predicted")
    margin = attrs.get("margin")
    head = "epoch {} · {}: ".format(
        attrs.get("epoch", "?"), attrs.get("parameter", "?")
    )
    if predicted == current:
        head += f"{_fmt_value(current)} (unchanged"
    else:
        head += f"{_fmt_value(current)} -> {_fmt_value(predicted)} (proposed"
    if margin is not None:
        head += f"; margin {margin:.2f}"
    head += ")"
    if attrs.get("kind") not in (None, "tree", "forest"):
        head += f" [{attrs['kind']}]"
    lines.append(head)

    path = attrs.get("path")
    if path:
        for step in path:
            went = "right" if step["direction"] == "gt" else "left"
            relation = ">" if step["direction"] == "gt" else "<="
            lines.append(
                "  [depth {}] {} = {} {} threshold {} -> {}".format(
                    step["depth"],
                    step["feature"],
                    _fmt_value(step["value"]),
                    relation,
                    _fmt_value(step["threshold"]),
                    went,
                )
            )
    else:
        lines.append("  (no decision path recorded for this estimator)")
    leaf = attrs.get("leaf")
    if leaf:
        lines.append(
            "  => leaf predicts {} ({} training samples)".format(
                _fmt_value(leaf.get("prediction")), leaf.get("n_samples", "?")
            )
        )
    votes = (attrs.get("leaf") or {}).get("votes")
    if votes:
        ballots = ", ".join(
            f"{label}: {share:.2f}" for label, share in votes.items()
        )
        lines.append(f"  forest votes: {ballots}")

    verdict = attrs.get("verdict")
    if verdict:
        status = "ACCEPTED" if verdict.get("accepted") else "REJECTED"
        lines.append(f"  verdict: {status} — {verdict.get('reason', '')}")
    elif predicted != current:
        lines.append("  verdict: (none recorded)")


def render_explanation(
    records: Sequence[Dict],
    epoch: Optional[int] = None,
    parameter: Optional[str] = None,
    show_counters: bool = False,
) -> str:
    """Human-readable provenance for the ``repro explain`` verb."""
    explanation = explain(records, epoch, parameter)
    lines: List[str] = ["=== decision provenance ==="]
    if epoch is None:
        lines.append(
            "showing epochs with proposed changes "
            "(pass --epoch N for any specific epoch)"
        )
    for index in sorted(explanation["epochs"]):
        group = explanation["epochs"][index]
        lines.append("")
        for attrs in group:
            _render_record(attrs, lines)
        if show_counters:
            observed = group[0].get("counters_observed") or {}
            raw = group[0].get("counters_raw") or {}
            if observed:
                lines.append("  observed counters (model input):")
                for name in sorted(observed):
                    note = ""
                    if name in raw and raw[name] != observed[name]:
                        note = f"  (raw {_fmt_value(raw[name])})"
                    lines.append(
                        f"    {name:<24} {_fmt_value(observed[name])}{note}"
                    )
    return "\n".join(lines)


def render_divergence_explanation(
    records_a: Sequence[Dict],
    records_b: Sequence[Dict],
    label_a: str = "A",
    label_b: str = "B",
    parameter: Optional[str] = None,
    show_counters: bool = False,
) -> Tuple[str, Optional[int]]:
    """Explain both runs' decisions at their first divergence epoch.

    Aligns the two traces with :func:`repro.obs.diff.diff_traces`,
    then renders each side's provenance at the earliest epoch whose
    applied configuration differs — the decision every "why did these
    two runs split?" investigation starts from. Returns the rendered
    text and the first-divergence epoch (``None`` when the runs are
    identical, which callers map to exit 0 instead of 3). Raises
    :class:`ValueError` like :func:`diff_traces` for traces without
    comparable epochs.
    """
    from repro.obs.diff import diff_traces

    diff = diff_traces(records_a, records_b, label_a=label_a, label_b=label_b)
    first = diff["first_divergence_epoch"]
    if first is None:
        return (
            "configurations identical across all "
            f"{diff['n_compared']} compared epochs; nothing to explain",
            None,
        )
    divergence = diff["divergence"]
    split = ", ".join(sorted(divergence["timeline"][0]["params"]))
    lines = [
        f"first divergence: epoch {first} ({split}); "
        f"{divergence['n_divergent_epochs']} of {diff['n_compared']} "
        "compared epochs differ"
    ]
    for label, records in ((label_a, records_a), (label_b, records_b)):
        lines.append("")
        lines.append(f"--- {label}: decisions at epoch {first} ---")
        try:
            lines.append(
                render_explanation(
                    records,
                    epoch=first,
                    parameter=parameter,
                    show_counters=show_counters,
                )
            )
        except ValueError as exc:
            # One side recorded without provenance: still report the
            # divergence itself rather than failing the whole verb.
            lines.append(f"(no matching provenance: {exc})")
    return "\n".join(lines), first
