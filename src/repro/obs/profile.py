"""Hierarchical wall-clock profiler for campaign hot-path attribution.

Traces answer "what did the controller decide"; the profiler answers
"where did the wall-clock go". Instrumented components — kernel
simulation, forest inference, the analytical cache/power models,
reconfiguration costing, ledger/sink I/O — open *spans*::

    from repro.obs import profile

    with profile.span("kernel_sim"):
        ...  # may open nested spans

Spans form a tree keyed by the call path (``kernel_sim;cache_model``),
each node accumulating call count and cumulative seconds; self time is
derived at report time as cumulative minus the children's cumulative.
The collapsed-stack export (one ``a;b;c <self_us>`` line per path) is
the flamegraph interchange format, so any stock flamegraph tool can
render a campaign profile.

Design mirrors :mod:`repro.obs.trace`: a process-wide current profiler
behind :func:`get_profiler`/:func:`install`, with a shared disabled
null profiler as the default so the disabled fast path is one attribute
check and a shared no-op context manager — cheap enough to leave the
instrumentation compiled in permanently (guarded in
``benchmarks/bench_obs_overhead.py``).

Thread safety matters here: the runner's deadline watchdog executes
each job attempt in its own thread, so span stacks are thread-local
(every thread nests from the root) while the accumulated tree is
shared under one lock. Lock traffic is per span entry/exit at component
granularity, not per epoch-inner-loop operation.

Stdlib-only and importing nothing from ``repro``: the modules being
instrumented (sinks, ledger, machine) import *this* module, so it must
sit at the bottom of the dependency graph.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "Profiler",
    "get_profiler",
    "install",
    "profiling",
    "span",
    "collapsed_stacks",
    "component_breakdown",
    "format_profile_report",
    "save_profile",
    "load_profile",
]

PROFILE_SCHEMA_VERSION = 1


class _NullSpan:
    """Shared do-nothing span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Node:
    """One call-path node of the accumulated profile tree."""

    __slots__ = ("name", "calls", "cum_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum_s = 0.0
        self.children: Dict[str, "_Node"] = {}


class _Span:
    """A live timer frame; created only when profiling is enabled."""

    __slots__ = ("_profiler", "_name", "_node", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._node: Optional[_Node] = None
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._node = self._profiler._push(self._name)
        self._start = self._profiler._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = self._profiler._clock() - self._start
        self._profiler._pop(self._node, elapsed)
        return False


class Profiler:
    """Accumulates a span tree; one per profiled command or worker.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`). The profiler is enabled on creation;
    the module-level null profiler is the only disabled instance.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = True
        self._clock = clock
        self._root = _Node("")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._started = clock()
        self._stopped: Optional[float] = None

    # ------------------------------------------------------------------
    def span(self, name: str) -> object:
        """A context-manager timer frame nested under the current one."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _stack(self) -> List[_Node]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self._root]
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> _Node:
        stack = self._stack()
        parent = stack[-1]
        with self._lock:
            node = parent.children.get(name)
            if node is None:
                node = _Node(name)
                parent.children[name] = node
        stack.append(node)
        return node

    def _pop(self, node: Optional[_Node], elapsed: float) -> None:
        stack = self._stack()
        if len(stack) > 1 and stack[-1] is node:
            stack.pop()
        if node is None:  # pragma: no cover - defensive
            return
        with self._lock:
            node.calls += 1
            node.cum_s += elapsed

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Freeze the wall-clock window (idempotent)."""
        if self._stopped is None:
            self._stopped = self._clock()

    @property
    def wall_s(self) -> float:
        """Wall-clock seconds since creation (frozen by :meth:`stop`)."""
        end = self._stopped if self._stopped is not None else self._clock()
        return end - self._started

    # ------------------------------------------------------------------
    def merge(self, data: Optional[dict]) -> None:
        """Fold a worker's exported profile into this tree.

        Node counts and cumulative times add; the worker's wall-clock
        window is discarded (workers overlap — the supervising
        profiler's own window is the campaign wall-clock). A disabled
        profiler ignores merges, and ``None`` (a worker that ran
        unprofiled) is a no-op.
        """
        if not self.enabled or not data:
            return
        with self._lock:
            for entry in data.get("nodes", ()):
                path = entry.get("path")
                if not path:
                    continue
                node = self._root
                for name in path:
                    child = node.children.get(name)
                    if child is None:
                        child = _Node(name)
                        node.children[name] = child
                    node = child
                node.calls += int(entry.get("calls", 0))
                node.cum_s += float(entry.get("cum_s", 0.0))

    # ------------------------------------------------------------------
    def _walk(self) -> Iterator[Tuple[Tuple[str, ...], _Node]]:
        """Every node with its path, depth-first, children name-sorted."""
        todo: List[Tuple[Tuple[str, ...], _Node]] = [((), self._root)]
        while todo:
            path, node = todo.pop()
            if path:
                yield path, node
            for name in sorted(node.children, reverse=True):
                todo.append((path + (name,), node.children[name]))

    def as_dict(self) -> dict:
        """JSON-native export: schema, wall window, flat node list.

        ``self_s`` is derived here (cumulative minus children's
        cumulative, floored at zero against clock jitter) so saved
        profiles are self-describing.
        """
        nodes = []
        with self._lock:
            for path, node in self._walk():
                child_cum = sum(
                    child.cum_s for child in node.children.values()
                )
                nodes.append(
                    {
                        "path": list(path),
                        "calls": node.calls,
                        "cum_s": node.cum_s,
                        "self_s": max(0.0, node.cum_s - child_cum),
                    }
                )
        nodes.sort(key=lambda entry: entry["path"])
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "wall_s": self.wall_s,
            "nodes": nodes,
        }


# ---------------------------------------------------------------------------
# Process-wide current profiler (mirrors trace.py's recorder plumbing).

_NULL_PROFILER = Profiler()
_NULL_PROFILER.enabled = False

_current: Profiler = _NULL_PROFILER


def get_profiler() -> Profiler:
    """The process-wide current profiler (a disabled one by default)."""
    return _current


def install(profiler: Optional[Profiler]) -> Profiler:
    """Make ``profiler`` current; ``None`` restores the disabled null
    profiler. Returns the previously installed profiler."""
    global _current
    previous = _current
    _current = profiler if profiler is not None else _NULL_PROFILER
    return previous


def span(name: str) -> object:
    """Module-level shortcut: a span on the current profiler.

    This is the call instrumentation points use; when no profiler is
    installed it returns the shared null span without allocating.
    """
    profiler = _current
    if not profiler.enabled:
        return _NULL_SPAN
    return profiler.span(name)


class profiling:
    """Context manager: install a fresh (or given) profiler, restore on
    exit, and freeze its wall-clock window::

        with profile.profiling() as prof:
            run_campaign()
        print(format_profile_report(prof.as_dict()))
    """

    def __init__(self, profiler: Optional[Profiler] = None) -> None:
        self.profiler = profiler if profiler is not None else Profiler()
        self._previous: Optional[Profiler] = None

    def __enter__(self) -> Profiler:
        self._previous = install(self.profiler)
        return self.profiler

    def __exit__(self, *exc_info) -> bool:
        self.profiler.stop()
        install(
            self._previous
            if self._previous is not _NULL_PROFILER
            else None
        )
        return False


# ---------------------------------------------------------------------------
# Report formats over the exported dict (not the live Profiler), so
# they work identically on merged / saved / loaded profiles.


def _frame(name: str) -> str:
    """Sanitize one frame name for the collapsed-stack format, whose
    separators are ``;`` (frames) and space (the trailing value)."""
    return name.replace(";", "_").replace(" ", "_")


def collapsed_stacks(data: dict) -> str:
    """Flamegraph collapsed-stack text: ``a;b;c <self_microseconds>``.

    One line per call path carrying self time, sorted by path; feed
    straight into any stock ``flamegraph.pl``-compatible tool.
    """
    lines = []
    for entry in data.get("nodes", ()):
        value = int(round(entry.get("self_s", 0.0) * 1e6))
        if value <= 0 and not entry.get("calls"):
            continue
        stack = ";".join(_frame(name) for name in entry["path"])
        lines.append(f"{stack} {value}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def component_breakdown(data: dict) -> Dict[str, Dict[str, float]]:
    """Self time and calls grouped by component (leaf frame name).

    The same component can appear at several call paths (``reconfig``
    under a policy filter and under the controller commit); grouping by
    frame name answers the roadmap question — where does campaign time
    go per *component* — without double counting, because only self
    time is summed.
    """
    out: Dict[str, Dict[str, float]] = {}
    for entry in data.get("nodes", ()):
        name = entry["path"][-1]
        slot = out.setdefault(name, {"self_s": 0.0, "calls": 0})
        slot["self_s"] += entry.get("self_s", 0.0)
        slot["calls"] += entry.get("calls", 0)
    return out


def coverage_fraction(data: dict) -> float:
    """Instrumented fraction of the wall-clock window: total self time
    (which sums without double counting) over wall seconds."""
    wall = data.get("wall_s") or 0.0
    if wall <= 0:
        return 0.0
    instrumented = sum(
        entry.get("self_s", 0.0) for entry in data.get("nodes", ())
    )
    return instrumented / wall


def format_profile_report(data: dict, top: Optional[int] = None) -> str:
    """Human-readable profile: component table plus the span tree."""
    wall = data.get("wall_s") or 0.0
    components = component_breakdown(data)
    ranked = sorted(
        components.items(),
        key=lambda item: (-item[1]["self_s"], item[0]),
    )
    if top is not None:
        ranked = ranked[:top]
    coverage = coverage_fraction(data) * 100.0
    lines = [
        "profile: wall {:.3f} s, {} components, {:.1f}% of wall-clock "
        "instrumented".format(wall, len(components), coverage),
        "",
        "{:<24} {:>12} {:>8} {:>10}".format(
            "component", "self_s", "self%", "calls"
        ),
    ]
    for name, stats in ranked:
        pct = 100.0 * stats["self_s"] / wall if wall > 0 else 0.0
        lines.append(
            "{:<24} {:>12.6f} {:>7.1f}% {:>10d}".format(
                name, stats["self_s"], pct, int(stats["calls"])
            )
        )
    lines.append("")
    lines.append(
        "{:<44} {:>12} {:>12} {:>10}".format(
            "span tree", "cum_s", "self_s", "calls"
        )
    )
    for entry in data.get("nodes", ()):
        path = entry["path"]
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(
            "{:<44} {:>12.6f} {:>12.6f} {:>10d}".format(
                label[:44],
                entry.get("cum_s", 0.0),
                entry.get("self_s", 0.0),
                int(entry.get("calls", 0)),
            )
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
def save_profile(data: dict, path) -> None:
    """Write an exported profile as JSON (atomically, via the obs
    sink helper — imported locally to keep this module at the bottom
    of the dependency graph)."""
    from repro.obs.sinks import write_atomic

    write_atomic(path, json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_profile(path) -> dict:
    """Load and validate a saved profile; raises ``ValueError`` on a
    file that is not a profile export."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "nodes" not in data:
        raise ValueError(f"{path} is not a profile export (no nodes)")
    if data.get("schema") != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported profile schema {data.get('schema')!r} in {path}"
        )
    return data
