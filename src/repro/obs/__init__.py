"""Observability: structured tracing, metrics, trace reports.

``repro.obs`` sits below every other layer (stdlib-only, imports
nothing from the rest of the repository except the error types) and
gives the runtime three capabilities:

* **Tracing** — :func:`recording` installs a :class:`TraceRecorder`
  whose :meth:`~repro.obs.trace.TraceRecorder.span` /
  :meth:`~repro.obs.trace.TraceRecorder.event` calls serialize to JSONL
  through a pluggable sink (ring buffer, file, null). Disabled tracing
  is a no-op fast path.
* **Metrics** — :mod:`repro.obs.metrics` holds the process-wide
  registry of counters/gauges/histograms with labeled children,
  ``snapshot()`` dict export, Prometheus-style ``render()`` and the
  scraper-facing ``render_openmetrics()``.
* **Profiling** — :mod:`repro.obs.profile` attributes wall-clock to
  the instrumented components (kernel sim, forest inference, cache/
  power models, reconfig, ledger/sink I/O) via hierarchical spans;
  ``repro run/suite-run --profile`` and ``repro profile-report``.
* **Live campaigns** — :mod:`repro.obs.live` aggregates the runner's
  heartbeat records into progress/ETA/straggler status (``repro top``).
* **Reports** — :mod:`repro.obs.report` summarizes a recorded trace
  (epoch timeline, reconfiguration counts, decision-latency
  histogram), backing the ``repro trace-report`` CLI command.
  :mod:`repro.obs.explain` renders the per-decision provenance records
  (``repro explain``) and :mod:`repro.obs.diff` aligns two traces
  epoch-by-epoch (``repro diff``).

Typical use::

    from repro import obs

    with obs.recording("run.jsonl"):
        runtime.spmspv(matrix, vector)

    print(obs.metrics.render())

See ``docs/observability.md`` for the trace schema and naming rules.
"""

from repro.obs import compare, diff, explain, live, metrics, profile, report
from repro.obs.sinks import (
    FileSink,
    MemorySink,
    NullSink,
    TraceSink,
    atomic_writer,
    read_jsonl,
    write_atomic,
    write_jsonl,
)
from repro.obs.trace import (
    Span,
    TraceRecorder,
    get_recorder,
    install,
    recording,
)

__all__ = [
    "compare",
    "diff",
    "explain",
    "live",
    "metrics",
    "profile",
    "report",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "FileSink",
    "atomic_writer",
    "read_jsonl",
    "write_atomic",
    "write_jsonl",
    "Span",
    "TraceRecorder",
    "get_recorder",
    "install",
    "recording",
]
