"""Live campaign monitor: heartbeat aggregation, ETA, stragglers.

Long parallel campaigns (PR 5's sharded runner) used to run blind:
nothing visible until the shards merged. Runners now append volatile
``heartbeat`` records to whichever ledger they hold — the canonical
file for a serial run, the private ``<ledger>.w<k>`` shard for each
worker — carrying wall-clock timestamp, jobs done/failed so far, shard
total, and the label of the job being started. Heartbeats are the one
record type every results reader skips: the byte-identical merge drops
them, resume ignores them, and a torn heartbeat (they are flushed, not
fsynced) costs nothing.

:func:`read_live` folds the canonical ledger plus any live shards into
a :class:`CampaignStatus`: per-worker progress, heartbeat age, an EWMA
jobs/s rate, campaign ETA from the aggregate rate, and
straggler/dead-worker flags from heartbeat staleness. :func:`render_top`
draws the ``repro top`` terminal view and
:func:`export_campaign_metrics` publishes the same numbers as gauges in
a :class:`~repro.obs.metrics.MetricsRegistry`, so
``render_openmetrics()`` gives external scrapers the campaign's pulse.

Imports from :mod:`repro.runner` stay function-local: ``repro.obs`` is
the bottom layer and the runner imports it back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_STRAGGLER_AFTER_S",
    "DEAD_AFTER_FACTOR",
    "EWMA_ALPHA",
    "WorkerStatus",
    "CampaignStatus",
    "ewma_rate",
    "read_live",
    "render_top",
    "export_campaign_metrics",
]

#: A worker whose last heartbeat is older than this is a straggler.
DEFAULT_STRAGGLER_AFTER_S = 30.0

#: ... and older than ``factor * threshold`` is presumed dead.
DEAD_AFTER_FACTOR = 4.0

#: Smoothing factor for the per-worker jobs/s EWMA.
EWMA_ALPHA = 0.3


@dataclass
class WorkerStatus:
    """One runner's view: the serial runner (``worker=None``) or one
    parallel shard."""

    worker: Optional[int]
    done: int = 0
    failed: int = 0
    total: int = 0
    last_ts: Optional[float] = None
    last_job: Optional[str] = None
    rate_jobs_s: float = 0.0
    stale_s: float = 0.0
    finished: bool = False
    straggler: bool = False
    dead: bool = False

    @property
    def label(self) -> str:
        return "serial" if self.worker is None else f"w{self.worker}"


@dataclass
class CampaignStatus:
    """Aggregated live view of one campaign ledger."""

    ledger_path: str
    plan_name: str
    #: Campaign identity — the plan's content-addressed key, from the
    #: ledger header or (multi-campaign hosts) the heartbeats themselves.
    campaign: Optional[str] = None
    total: int = 0
    done: int = 0
    failed: int = 0
    quarantined: Dict[str, int] = field(default_factory=dict)
    workers: List[WorkerStatus] = field(default_factory=list)
    throughput_jobs_s: float = 0.0
    eta_s: float = float("nan")
    now: float = 0.0

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done - self.failed)

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.remaining == 0

    @property
    def stragglers(self) -> List[WorkerStatus]:
        return [w for w in self.workers if w.straggler]

    def as_dict(self) -> dict:
        return {
            "ledger": self.ledger_path,
            "plan_name": self.plan_name,
            "campaign": self.campaign,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "quarantined": dict(self.quarantined),
            "remaining": self.remaining,
            "complete": self.complete,
            "throughput_jobs_s": self.throughput_jobs_s,
            "eta_s": self.eta_s,
            "workers": [
                {
                    "worker": w.label,
                    "done": w.done,
                    "failed": w.failed,
                    "total": w.total,
                    "rate_jobs_s": w.rate_jobs_s,
                    "heartbeat_age_s": w.stale_s,
                    "job": w.last_job,
                    "finished": w.finished,
                    "straggler": w.straggler,
                    "dead": w.dead,
                }
                for w in self.workers
            ],
        }


# ---------------------------------------------------------------------------
def ewma_rate(
    samples: Sequence[Tuple[float, int]], alpha: float = EWMA_ALPHA
) -> float:
    """Exponentially weighted jobs/s over ``(ts, jobs_finished)``
    heartbeat samples. Intervals where the count did not advance still
    decay the estimate toward zero — a stalled worker's rate fades
    rather than freezing at its last good value."""
    rate: Optional[float] = None
    for (t0, n0), (t1, n1) in zip(samples, samples[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        instantaneous = max(0, n1 - n0) / dt
        rate = (
            instantaneous
            if rate is None
            else alpha * instantaneous + (1.0 - alpha) * rate
        )
    return rate or 0.0


def _worker_from_heartbeats(
    worker: Optional[int], beats: List[dict], now: float
) -> WorkerStatus:
    status = WorkerStatus(worker=worker)
    samples: List[Tuple[float, int]] = []
    for beat in beats:
        ts = beat.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        done = int(beat.get("done", 0))
        failed = int(beat.get("failed", 0))
        status.done = done
        status.failed = failed
        status.total = int(beat.get("total", status.total))
        status.last_ts = float(ts)
        status.last_job = beat.get("job")
        samples.append((float(ts), done + failed))
    status.rate_jobs_s = ewma_rate(samples)
    status.finished = (
        status.total > 0 and status.done + status.failed >= status.total
    )
    if status.last_ts is not None:
        status.stale_s = max(0.0, now - status.last_ts)
    return status


def read_live(
    ledger_path: Union[str, Path],
    now: Optional[float] = None,
    straggler_after_s: float = DEFAULT_STRAGGLER_AFTER_S,
) -> CampaignStatus:
    """Aggregate a campaign's canonical ledger plus live shards.

    The campaign total is taken from the runners themselves: the
    serial runner's heartbeats carry the full job count, and in a
    parallel run each shard's heartbeats carry that shard's count, on
    top of whatever the canonical ledger already holds as terminal rows
    (resumed work, or shards already merged). ``now`` is injectable
    for deterministic tests.
    """
    import time as _time

    from repro.runner.ledger import (
        TERMINAL_TYPES,
        list_shards,
        read_ledger_records,
    )

    ledger_path = Path(ledger_path)
    if not ledger_path.exists():
        raise ConfigError(f"no ledger at {ledger_path}")
    now = _time.time() if now is None else now

    records, _ = read_ledger_records(ledger_path)
    plan_name = "campaign"
    plan_key = None
    header_jobs: Optional[int] = None
    for record in records:
        if record.get("type") == "header":
            plan_name = record.get("plan_name", plan_name)
            plan_key = record.get("plan_key")
            # Experiment-store ledgers declare the grid size up front:
            # store workers claim jobs dynamically, so their per-shard
            # heartbeat totals describe the whole grid (not a disjoint
            # shard) and cannot be summed for the campaign total.
            if isinstance(record.get("jobs"), int):
                header_jobs = int(record["jobs"])
            break
    else:
        raise ConfigError(
            f"{ledger_path} is not a run ledger (missing header)"
        )
    if plan_name == "campaign" or plan_key is None:
        # Older headers (or hand-rolled ledgers) may lack identity; the
        # heartbeats themselves carry it since they label multi-campaign
        # hosts.
        for record in records:
            if record.get("type") != "heartbeat":
                continue
            if plan_name == "campaign" and record.get("plan"):
                plan_name = str(record["plan"])
            if plan_key is None and record.get("campaign"):
                plan_key = str(record["campaign"])
            if plan_name != "campaign" and plan_key is not None:
                break

    status = CampaignStatus(
        ledger_path=str(ledger_path),
        plan_name=plan_name,
        campaign=plan_key,
        now=now,
    )

    # Canonical terminal rows: done/failed/quarantined jobs already
    # settled (serial progress, resumed work, merged shards).
    terminal: Dict[str, dict] = {}
    serial_beats: List[dict] = []
    for record in records:
        kind = record.get("type")
        if kind in TERMINAL_TYPES:
            terminal.setdefault(str(record.get("key")), record)
        elif kind == "heartbeat" and record.get("worker") is None:
            serial_beats.append(record)
    def _is_failed(record: dict) -> bool:
        row = record.get("row", {})
        failed = record.get("type") == "quarantined" or row.get(
            "status"
        ) in ("failed", "quarantined")
        if failed:
            failure = row.get("failure") or {}
            kind = str(failure.get("kind", "unknown"))
            status.quarantined[kind] = status.quarantined.get(kind, 0) + 1
        return failed

    canonical_done = canonical_failed = 0
    for record in terminal.values():
        if _is_failed(record):
            canonical_failed += 1
        else:
            canonical_done += 1
    status.done = canonical_done
    status.failed = canonical_failed

    # Live shards: per-worker heartbeats plus any terminal rows a
    # worker fsynced that the parent has not merged yet.
    shard_total = 0
    for path in list_shards(ledger_path):
        shard_records, _ = read_ledger_records(path)
        worker: Optional[int] = None
        beats: List[dict] = []
        shard_terminal: Dict[str, dict] = {}
        foreign = False
        for record in shard_records:
            kind = record.get("type")
            if kind == "header":
                if plan_key is not None and record.get("plan_key") not in (
                    None,
                    plan_key,
                ):
                    foreign = True
                    break
                worker = record.get("worker", worker)
            elif kind == "heartbeat":
                if worker is None:
                    worker = record.get("worker")
                beats.append(record)
            elif kind in TERMINAL_TYPES:
                shard_terminal.setdefault(str(record.get("key")), record)
        if foreign:
            continue
        wstat = _worker_from_heartbeats(worker, beats, now)
        # Trust fsynced terminal rows over the (possibly older) last
        # heartbeat counters.
        n_failed = sum(
            1 for r in shard_terminal.values() if _is_failed(r)
        )
        n_done = len(shard_terminal) - n_failed
        wstat.done = max(wstat.done, n_done)
        wstat.failed = max(wstat.failed, n_failed)
        wstat.finished = (
            wstat.total > 0 and wstat.done + wstat.failed >= wstat.total
        )
        status.workers.append(wstat)
        status.done += wstat.done
        status.failed += wstat.failed
        shard_total += wstat.total

    if serial_beats and not status.workers:
        wstat = _worker_from_heartbeats(None, serial_beats, now)
        # The canonical terminal rows ARE this runner's progress.
        wstat.done = max(wstat.done, canonical_done)
        wstat.failed = max(wstat.failed, canonical_failed)
        wstat.finished = (
            wstat.total > 0 and wstat.done + wstat.failed >= wstat.total
        )
        status.workers.append(wstat)
        status.total = wstat.total
        status.done = wstat.done
        status.failed = wstat.failed
    elif status.workers:
        status.total = len(terminal) + shard_total
    else:
        status.total = len(terminal)
    if header_jobs is not None:
        status.total = header_jobs

    status.workers.sort(
        key=lambda w: (w.worker is None, w.worker if w.worker is not None else -1)
    )

    # Staleness flags and the aggregate rate of workers still earning.
    aggregate = 0.0
    for wstat in status.workers:
        if not wstat.finished and wstat.last_ts is not None:
            wstat.straggler = wstat.stale_s > straggler_after_s
            wstat.dead = (
                wstat.stale_s > straggler_after_s * DEAD_AFTER_FACTOR
            )
        if not wstat.finished and not wstat.dead:
            aggregate += wstat.rate_jobs_s
    status.throughput_jobs_s = aggregate

    if status.remaining == 0:
        status.eta_s = 0.0
    elif aggregate > 0:
        status.eta_s = status.remaining / aggregate
    return status


# ---------------------------------------------------------------------------
def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(eta_s: float) -> str:
    if math.isnan(eta_s):
        return "unknown"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def render_top(status: CampaignStatus) -> str:
    """The ``repro top`` terminal snapshot."""
    frac = (
        (status.done + status.failed) / status.total
        if status.total
        else 0.0
    )
    lines = [
        "campaign {!r}{} — {}".format(
            status.plan_name,
            f" [{status.campaign}]" if status.campaign else "",
            status.ledger_path,
        ),
        "  progress  : {}/{} jobs ({} ok, {} failed) [{}] {:.0f}%".format(
            status.done + status.failed,
            status.total,
            status.done,
            status.failed,
            _bar(frac),
            frac * 100.0,
        ),
    ]
    if status.quarantined:
        kinds = ", ".join(
            f"{kind}={n}" for kind, n in sorted(status.quarantined.items())
        )
        lines.append(f"  quarantine: {kinds}")
    lines.append(
        "  throughput: {:.2f} job/s — ETA {}".format(
            status.throughput_jobs_s,
            "done" if status.complete else _fmt_eta(status.eta_s),
        )
    )
    if status.workers:
        lines.append("  runners:")
        for w in status.workers:
            flag = ""
            if w.dead:
                flag = "  DEAD"
            elif w.straggler:
                flag = "  STRAGGLER"
            elif w.finished:
                flag = "  done"
            job = f"  [{w.last_job}]" if w.last_job and not w.finished else ""
            age = (
                f"hb {w.stale_s:.1f}s ago"
                if w.last_ts is not None
                else "no heartbeat"
            )
            lines.append(
                "    {:<7} {:>3}/{:<3} done  {:>6.2f} job/s  {:<16}{}{}".format(
                    w.label,
                    w.done + w.failed,
                    w.total,
                    w.rate_jobs_s,
                    age,
                    job,
                    flag,
                )
            )
    elif status.complete:
        lines.append("  runners: (campaign complete; shards merged)")
    else:
        lines.append("  runners: (no heartbeats yet)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
def export_campaign_metrics(status: CampaignStatus, registry=None):
    """Publish the campaign status as gauges in ``registry`` (the
    process-wide one by default) and return the registry, ready for
    ``render_openmetrics()``."""
    from repro.obs import metrics as obs_metrics

    registry = registry if registry is not None else obs_metrics.REGISTRY
    # Identity travels as labels on a constant info gauge (the
    # OpenMetrics convention) so scrapers on multi-campaign hosts can
    # join the unlabeled progress gauges to a plan/campaign pair.
    registry.gauge(
        "campaign.info", "Campaign identity (constant 1)"
    ).labels(
        plan=status.plan_name, campaign=status.campaign or "unknown"
    ).set(1.0)
    registry.gauge(
        "campaign.jobs.total", "Jobs in the campaign plan"
    ).set(status.total)
    registry.gauge(
        "campaign.jobs.done", "Jobs finished ok"
    ).set(status.done)
    registry.gauge(
        "campaign.jobs.failed", "Jobs failed or quarantined"
    ).set(status.failed)
    registry.gauge(
        "campaign.jobs.remaining", "Jobs not yet terminal"
    ).set(status.remaining)
    registry.gauge(
        "campaign.throughput.jobs_per_s",
        "Aggregate EWMA throughput of live runners",
    ).set(status.throughput_jobs_s)
    registry.gauge(
        "campaign.eta.s", "Estimated seconds to completion (NaN unknown)"
    ).set(status.eta_s)
    registry.gauge(
        "campaign.stragglers", "Runners past the straggler threshold"
    ).set(len(status.stragglers))
    done = registry.gauge(
        "campaign.worker.done", "Terminal jobs per runner"
    )
    rate = registry.gauge(
        "campaign.worker.rate_jobs_per_s", "Per-runner EWMA throughput"
    )
    age = registry.gauge(
        "campaign.worker.heartbeat_age_s", "Seconds since last heartbeat"
    )
    flag = registry.gauge(
        "campaign.worker.straggler", "1 when past the straggler threshold"
    )
    for w in status.workers:
        done.labels(worker=w.label).set(w.done + w.failed)
        rate.labels(worker=w.label).set(w.rate_jobs_s)
        age.labels(worker=w.label).set(w.stale_s)
        flag.labels(worker=w.label).set(1.0 if w.straggler else 0.0)
    return registry
