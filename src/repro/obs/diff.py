"""Cross-run trace comparison: align two traces epoch-by-epoch.

Two recorded runs of the same workload can disagree — different model,
different policy, telemetry noise, a code change. This module answers
*where* and *by how much*:

* the **first-divergence epoch**: the earliest epoch whose applied
  configuration differs between the runs;
* the **per-parameter divergence timeline**: which runtime parameters
  diverged at which epochs, and how often overall;
* the **counter deltas at the divergence point**: what the two
  controllers actually observed when their decisions split (taken from
  ``provenance`` records, falling back to ``machine.epoch`` events);
* a **metric regression summary**: whole-run GFLOPS, GFLOPS/W and
  GFLOPS^3/W for both runs and the relative change, reconstructed from
  the per-epoch spans (host decision overhead is not in the trace, so
  totals are the modeled epoch+reconfiguration sums).

Everything operates on plain record dicts (stdlib only), mirroring
:mod:`repro.obs.report`. Per-epoch configuration values require trace
schema version 2 (``config_values`` on epoch spans); older traces are
rejected with a :class:`ValueError` naming the problem.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Dict, List, Optional, Sequence

__all__ = ["diff_traces", "render_diff"]


def _attrs(record: Dict) -> Dict:
    return record.get("attrs", {}) or {}


def _epoch_spans(records: Sequence[Dict]) -> Dict[int, Dict]:
    """Epoch index -> span attrs, for spans that carry an epoch."""
    out: Dict[int, Dict] = {}
    for record in records:
        if record.get("type") == "span" and record.get("name") == "epoch":
            attrs = _attrs(record)
            epoch = attrs.get("epoch")
            if epoch is not None:
                out[int(epoch)] = attrs
    return out


def _run_info(records: Sequence[Dict]) -> Dict:
    for record in records:
        if (
            record.get("type") == "event"
            and record.get("name") == "controller.start"
        ):
            return dict(_attrs(record))
    return {}


def _epoch_counters(records: Sequence[Dict], epoch: int) -> Optional[Dict]:
    """Observed counter values at one epoch.

    Prefers the ``counters_observed`` payload of a ``provenance``
    record (what the model actually consumed, including telemetry
    noise); falls back to the numeric attrs of the ``machine.epoch``
    event when the trace predates provenance records.
    """
    for record in records:
        if record.get("name") != "provenance":
            continue
        attrs = _attrs(record)
        if attrs.get("epoch") == epoch:
            observed = attrs.get("counters_observed")
            if isinstance(observed, dict):
                return observed
    for record in records:
        if record.get("name") != "machine.epoch":
            continue
        attrs = _attrs(record)
        if attrs.get("epoch") == epoch:
            return {
                key: value
                for key, value in attrs.items()
                if key != "epoch" and isinstance(value, (int, float))
            }
    return None


def _config_values(span_attrs: Dict, origin: str, epoch: int) -> Dict:
    values = span_attrs.get("config_values")
    if not isinstance(values, dict):
        raise ValueError(
            f"{origin} has no per-epoch configuration values at epoch "
            f"{epoch} (schema version 1 trace?); re-record it with this "
            f"build to diff configurations"
        )
    return values


def _totals(spans: Dict[int, Dict]) -> Dict[str, float]:
    """Whole-run metrics reconstructed from the epoch spans."""
    time_s = 0.0
    energy_j = 0.0
    flops = 0.0
    for attrs in spans.values():
        epoch_time = float(attrs.get("time_s") or 0.0)
        time_s += epoch_time + float(attrs.get("reconfig_time_s") or 0.0)
        energy_j += float(attrs.get("energy_j") or 0.0)
        flops += float(attrs.get("gflops") or 0.0) * 1e9 * epoch_time
    gflops = flops / time_s / 1e9 if time_s > 0 else 0.0
    watts = energy_j / time_s if time_s > 0 else 0.0
    return {
        "time_s": time_s,
        "energy_j": energy_j,
        "gflops": gflops,
        "gflops_per_watt": flops / energy_j / 1e9 if energy_j > 0 else 0.0,
        "gflops3_per_watt": gflops**3 / watts if watts > 0 else 0.0,
    }


def _relative_change(before: float, after: float) -> Optional[float]:
    if before == 0:
        return None
    return (after - before) / before * 100.0


def diff_traces(
    records_a: Sequence[Dict],
    records_b: Sequence[Dict],
    label_a: str = "A",
    label_b: str = "B",
) -> Dict:
    """Structured comparison of two recorded runs.

    Both traces must carry per-epoch ``config_values`` (schema
    version 2); epochs present in only one trace are reported via
    ``epoch_counts`` but not compared.
    """
    spans_a = _epoch_spans(records_a)
    spans_b = _epoch_spans(records_b)
    if not spans_a or not spans_b:
        which = label_a if not spans_a else label_b
        raise ValueError(f"{which} contains no epoch spans to compare")
    shared = sorted(set(spans_a) & set(spans_b))

    first_divergence: Optional[int] = None
    parameter_counts: TallyCounter = TallyCounter()
    timeline: List[Dict] = []
    for epoch in shared:
        values_a = _config_values(spans_a[epoch], label_a, epoch)
        values_b = _config_values(spans_b[epoch], label_b, epoch)
        divergent = {
            name: {"a": values_a[name], "b": values_b.get(name)}
            for name in values_a
            if values_a[name] != values_b.get(name)
        }
        if not divergent:
            continue
        if first_divergence is None:
            first_divergence = epoch
        parameter_counts.update(divergent.keys())
        timeline.append({"epoch": epoch, "params": divergent})

    counters_delta = None
    if first_divergence is not None:
        counters_a = _epoch_counters(records_a, first_divergence)
        counters_b = _epoch_counters(records_b, first_divergence)
        if counters_a and counters_b:
            counters_delta = {
                name: {
                    "a": counters_a[name],
                    "b": counters_b[name],
                    "delta": counters_b[name] - counters_a[name],
                }
                for name in sorted(set(counters_a) & set(counters_b))
            }

    totals_a = _totals(spans_a)
    totals_b = _totals(spans_b)
    return {
        "a": {
            "label": label_a,
            "n_epochs": len(spans_a),
            "run": _run_info(records_a),
        },
        "b": {
            "label": label_b,
            "n_epochs": len(spans_b),
            "run": _run_info(records_b),
        },
        "n_compared": len(shared),
        "epoch_counts_match": len(spans_a) == len(spans_b),
        "first_divergence_epoch": first_divergence,
        "divergence": {
            "n_divergent_epochs": len(timeline),
            "parameter_counts": dict(
                sorted(
                    parameter_counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ),
            "timeline": timeline,
        },
        "counters_at_divergence": counters_delta,
        "metrics": {
            "a": totals_a,
            "b": totals_b,
            "regression_pct": {
                key: _relative_change(totals_a[key], totals_b[key])
                for key in ("gflops", "gflops_per_watt", "gflops3_per_watt")
            },
        },
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _fmt(value, spec: str = ".4g", fallback: str = "-") -> str:
    if value is None:
        return fallback
    try:
        return format(value, spec)
    except (TypeError, ValueError):
        return str(value)


def render_diff(diff: Dict, max_timeline_rows: int = 24) -> str:
    """Human-readable report of a :func:`diff_traces` result."""
    lines: List[str] = []
    a, b = diff["a"], diff["b"]
    lines.append("=== trace diff ===")
    for side in (a, b):
        run = side.get("run", {})
        lines.append(
            "{}: trace={} scheme={} policy={} noise={} seed={} "
            "epochs={}".format(
                side["label"],
                run.get("trace", "?"),
                run.get("scheme", "?"),
                run.get("policy", "?"),
                _fmt(run.get("telemetry_noise")),
                run.get("noise_seed", "-"),
                side["n_epochs"],
            )
        )
    if not diff["epoch_counts_match"]:
        lines.append(
            "warning: epoch counts differ; only the "
            f"{diff['n_compared']} shared epochs are compared"
        )

    lines.append("")
    first = diff["first_divergence_epoch"]
    divergence = diff["divergence"]
    if first is None:
        lines.append(
            f"configurations identical across all {diff['n_compared']} "
            "compared epochs"
        )
    else:
        lines.append(f"first divergence: epoch {first}")
        lines.append(
            "divergent epochs: {} of {}".format(
                divergence["n_divergent_epochs"], diff["n_compared"]
            )
        )
        lines.append("--- per-parameter divergence ---")
        counts = divergence["parameter_counts"]
        peak = max(counts.values())
        for parameter, count in counts.items():
            bar = "#" * max(1, round(count / peak * 30))
            lines.append(f"  {parameter:<12} {count:>5} epochs |{bar}")
        lines.append("--- divergence timeline ---")
        shown = divergence["timeline"][:max_timeline_rows]
        for entry in shown:
            changes = ", ".join(
                "{}: {} vs {}".format(name, pair["a"], pair["b"])
                for name, pair in sorted(entry["params"].items())
            )
            lines.append(f"  epoch {entry['epoch']:>4}  {changes}")
        elided = divergence["n_divergent_epochs"] - len(shown)
        if elided > 0:
            lines.append(f"  ... ({elided} divergent epochs elided)")

        counters = diff.get("counters_at_divergence")
        lines.append("")
        lines.append(
            f"--- counter deltas at divergence (epoch {first}) ---"
        )
        if counters:
            for name, entry in counters.items():
                if entry["delta"] == 0:
                    continue
                lines.append(
                    "  {:<24} {:>12} -> {:>12} (delta {:+.4g})".format(
                        name,
                        _fmt(entry["a"]),
                        _fmt(entry["b"]),
                        entry["delta"],
                    )
                )
        else:
            lines.append("  (no counter records at the divergence epoch)")

    lines.append("")
    lines.append("--- whole-run metrics (modeled, from epoch spans) ---")
    metrics = diff["metrics"]
    lines.append(
        f"{'metric':<18} {a['label']:>12} {b['label']:>12} {'change':>9}"
    )
    for key in ("gflops", "gflops_per_watt", "gflops3_per_watt"):
        change = metrics["regression_pct"][key]
        lines.append(
            "{:<18} {:>12} {:>12} {:>8}%".format(
                key,
                _fmt(metrics["a"][key]),
                _fmt(metrics["b"][key]),
                _fmt(change, "+.2f"),
            )
        )
    for key in ("time_s", "energy_j"):
        lines.append(
            "{:<18} {:>12} {:>12}".format(
                key, _fmt(metrics["a"][key]), _fmt(metrics["b"][key])
            )
        )
    return "\n".join(lines)
