"""Multi-candidate comparison: scrape, tabulate, gate, render.

The observability half of declarative experiments
(:mod:`repro.experiments.spec`): given the ledger a compiled spec ran
into, scrape the declared metric set out of every candidate x workload
x seed row into a canonical table, then render deterministic
side-by-side reports — per-workload tables, a win/loss matrix on the
primary metric, geomean deltas against the declared baseline
candidate, per-candidate health (failures, quarantine taxonomy) — plus
self-contained SVG grouped-bar figures per metric, and evaluate the
spec's regression gates (``candidate X within Y% of baseline on
metric Z``).

Everything here is pure and deterministic: the same terminal rows
produce byte-identical reports and figures regardless of worker count,
kill/resume history, or host (ledger paths never appear in the
output). Wall-clock metrics are the one exception and are flagged
``volatile``.

Legacy ledgers (plans written by hand rather than compiled from a
spec) are still comparable: rows without candidate metadata are
exploded one candidate per evaluated scheme, so ``repro compare`` on
yesterday's table-5 ledger shows Baseline vs Best Avg vs SparseAdapt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "METRICS",
    "MetricDef",
    "scrape_rows",
    "ledger_terminal_rows",
    "build_comparison",
    "evaluate_gates",
    "render_comparison",
    "render_metric_svg",
    "write_figures",
    "drill_down",
]


@dataclass(frozen=True)
class MetricDef:
    """One comparable quantity and how to judge it."""

    name: str
    higher_is_better: bool
    description: str
    #: Wall-clock-derived: real but not run-to-run reproducible, so it
    #: is excluded from byte-identity guarantees and flagged in reports.
    volatile: bool = False

    @property
    def direction(self) -> str:
        return "higher" if self.higher_is_better else "lower"


#: Every metric a spec may declare, scraped from ledger result rows.
METRICS: Dict[str, MetricDef] = {
    metric.name: metric
    for metric in (
        MetricDef("gflops", True, "modeled throughput"),
        MetricDef("gflops_per_watt", True, "modeled energy efficiency"),
        MetricDef("perf_gain", True, "throughput gain over Baseline"),
        MetricDef(
            "efficiency_gain", True, "GFLOPS/W gain over Baseline"
        ),
        MetricDef("time_s", False, "modeled execution time"),
        MetricDef("energy_j", False, "modeled energy"),
        MetricDef("edp_js", False, "energy-delay product"),
        MetricDef("avg_power_w", False, "modeled average power"),
        MetricDef(
            "reconfigurations", False, "reconfiguration count"
        ),
        MetricDef(
            "oracle_regret_pct",
            False,
            "cost above the sampled Oracle schedule",
        ),
        MetricDef(
            "fault_detection_rate",
            True,
            "detected / injected faults (faulted runs only)",
        ),
        MetricDef(
            "wall_clock_s",
            False,
            "host wall-clock per job (volatile)",
            volatile=True,
        ),
    )
}


# ---------------------------------------------------------------------------
# Scraping
# ---------------------------------------------------------------------------
def ledger_terminal_rows(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
    """A ledger's header and terminal rows, first-terminal-wins.

    Reads the way resume does (torn-line tolerant); rows come back in
    first-appearance order, which for a merged canonical ledger is plan
    order — the report ordering downstream relies on that.
    """
    from repro.runner.ledger import TERMINAL_TYPES, read_ledger_records

    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"no such ledger: {path}")
    records, _ = read_ledger_records(path)
    header: dict = {}
    rows: List[dict] = []
    seen: set = set()
    for record in records:
        kind = record.get("type")
        if kind == "header" and not header:
            header = dict(record)
        elif kind in TERMINAL_TYPES:
            key = record.get("key")
            if isinstance(key, str) and key not in seen:
                seen.add(key)
                rows.append(dict(record.get("row") or {}))
    if not header:
        raise ConfigError(f"{path} is not a run ledger (missing header)")
    return header, rows


def _metric_value(
    entry: dict, metric: str, row: dict
) -> Optional[float]:
    """One metric out of one scheme entry (or the row, for wall-clock)."""
    if metric == "wall_clock_s":
        value = row.get("duration_s")
        return float(value) if value is not None else None
    if metric == "fault_detection_rate":
        stats = entry.get("fault_stats")
        if not isinstance(stats, dict):
            return None
        injected = stats.get("n_faults_injected", 0)
        if not injected:
            return None
        return float(stats.get("n_faults_detected", 0)) / float(injected)
    value = entry.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def scrape_rows(
    rows: Sequence[dict], metrics: Sequence[str]
) -> List[dict]:
    """Terminal ledger rows -> flat samples of the requested metrics.

    Spec-compiled rows carry ``candidate``/``workload``/``seed``/
    ``scheme`` metadata and yield one sample each; legacy rows yield
    one sample per evaluated scheme (candidate = scheme name, workload
    = job label). Failed rows become samples with no values so health
    accounting sees them.
    """
    for metric in metrics:
        if metric not in METRICS:
            raise ConfigError(
                f"unknown metric {metric!r} "
                f"(expected one of {', '.join(sorted(METRICS))})"
            )
    samples: List[dict] = []
    for row in rows:
        failure_kind = (row.get("failure") or {}).get("kind")
        if row.get("candidate") is not None:
            schemes = ((row["candidate"], row.get("scheme")),)
            workload = row.get("workload") or row.get("matrix") or "?"
            seed = int(row.get("seed") or 0)
        else:
            result_schemes = (row.get("result") or {}).get("schemes") or {}
            schemes = tuple(
                (name, name) for name in result_schemes
            ) or ((row.get("label", "?"), None),)
            workload = row.get("label") or "?"
            seed = 0
        for candidate, scheme in schemes:
            values: Dict[str, Optional[float]] = {}
            if row.get("status") == "ok":
                entries = (row.get("result") or {}).get("schemes") or {}
                entry = entries.get(scheme) if scheme else None
                for metric in metrics:
                    values[metric] = (
                        _metric_value(entry, metric, row)
                        if isinstance(entry, dict)
                        else None
                    )
            else:
                values = {metric: None for metric in metrics}
            samples.append(
                {
                    "candidate": candidate,
                    "workload": workload,
                    "seed": seed,
                    "status": row.get("status"),
                    "failure_kind": failure_kind,
                    "values": values,
                }
            )
    return samples


# ---------------------------------------------------------------------------
# Table building
# ---------------------------------------------------------------------------
def _ordered(declared: Optional[Sequence[str]], seen: List[str]) -> List[str]:
    """Declared order when given, else deterministic first-appearance
    order (ledger rows arrive in plan order, so this is stable)."""
    if declared:
        return list(declared)
    out: List[str] = []
    for name in seen:
        if name not in out:
            out.append(name)
    return out


def _geomean(ratios: List[float]) -> Optional[float]:
    if not ratios:
        return None
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def build_comparison(
    samples: Sequence[dict],
    metrics: Sequence[str],
    baseline: Optional[str] = None,
    candidates: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    name: str = "comparison",
) -> dict:
    """Samples -> the canonical comparison structure.

    ``cells[metric][workload][candidate]`` is the seed-averaged value
    (``None`` when every seed failed or the metric was absent);
    ``geomean[metric][candidate]`` the geometric-mean ratio against
    the baseline candidate across workloads where both sides have a
    positive value; ``wins`` the pairwise win counts on the primary
    metric (``metrics[0]``); ``health`` the per-candidate terminal
    status and quarantine taxonomy.
    """
    if not samples:
        raise ConfigError("nothing to compare: no samples scraped")
    metrics = list(metrics)
    candidate_order = _ordered(
        candidates, [sample["candidate"] for sample in samples]
    )
    workload_order = _ordered(
        workloads, [sample["workload"] for sample in samples]
    )
    if baseline is None:
        baseline = candidate_order[0]
    if baseline not in candidate_order:
        raise ConfigError(
            f"baseline {baseline!r} is not among the compared candidates "
            f"({', '.join(candidate_order)})"
        )

    # candidate -> workload -> metric -> list of per-seed values
    buckets: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    health: Dict[str, dict] = {
        candidate: {"ok": 0, "failed": 0, "quarantine": {}}
        for candidate in candidate_order
    }
    seeds: set = set()
    for sample in samples:
        candidate = sample["candidate"]
        if candidate not in health:  # undeclared candidate in ledger
            continue
        seeds.add(sample["seed"])
        if sample["status"] == "ok":
            health[candidate]["ok"] += 1
        else:
            health[candidate]["failed"] += 1
            kind = sample.get("failure_kind") or "unknown"
            taxonomy = health[candidate]["quarantine"]
            taxonomy[kind] = taxonomy.get(kind, 0) + 1
        per_workload = buckets.setdefault(candidate, {})
        per_metric = per_workload.setdefault(sample["workload"], {})
        for metric, value in sample["values"].items():
            if value is not None:
                per_metric.setdefault(metric, []).append(value)

    cells: Dict[str, Dict[str, Dict[str, Optional[float]]]] = {}
    for metric in metrics:
        cells[metric] = {}
        for workload in workload_order:
            cells[metric][workload] = {}
            for candidate in candidate_order:
                values = (
                    buckets.get(candidate, {})
                    .get(workload, {})
                    .get(metric, [])
                )
                cells[metric][workload][candidate] = (
                    sum(values) / len(values) if values else None
                )

    geomean: Dict[str, Dict[str, Optional[float]]] = {}
    for metric in metrics:
        geomean[metric] = {}
        for candidate in candidate_order:
            ratios: List[float] = []
            for workload in workload_order:
                ours = cells[metric][workload][candidate]
                base = cells[metric][workload][baseline]
                if ours and base and ours > 0 and base > 0:
                    ratios.append(ours / base)
            geomean[metric][candidate] = _geomean(ratios)

    primary = metrics[0]
    wins: Dict[str, Dict[str, int]] = {}
    direction = 1.0 if METRICS[primary].higher_is_better else -1.0
    for a in candidate_order:
        wins[a] = {}
        for b in candidate_order:
            if a == b:
                continue
            count = 0
            for workload in workload_order:
                va = cells[primary][workload][a]
                vb = cells[primary][workload][b]
                if va is None or vb is None:
                    continue
                if direction * (va - vb) > 0:
                    count += 1
            wins[a][b] = count

    return {
        "name": name,
        "baseline": baseline,
        "metrics": metrics,
        "primary_metric": primary,
        "candidates": candidate_order,
        "workloads": workload_order,
        "n_seeds": len(seeds),
        "cells": cells,
        "geomean": geomean,
        "wins": wins,
        "health": health,
    }


# ---------------------------------------------------------------------------
# Regression gates
# ---------------------------------------------------------------------------
def evaluate_gates(comparison: dict, gates: Sequence) -> List[dict]:
    """Check every gate against the comparison table.

    Each result carries the measured ratio against the reference, the
    signed margin in percent (negative = worse than the reference), and
    ``passed``. A gate whose data is missing (failed candidate, absent
    metric) fails with ``reason: "no data"`` — silence must not pass a
    regression check.
    """
    results: List[dict] = []
    for gate in gates:
        candidate = gate.candidate
        metric = gate.metric
        reference = gate.of if gate.of is not None else comparison["baseline"]
        scope = gate.workload
        entry = {
            "candidate": candidate,
            "metric": metric,
            "of": reference,
            "workload": scope,
            "within_pct": gate.within_pct,
            "ratio": None,
            "margin_pct": None,
            "passed": False,
            "reason": None,
        }
        if metric not in comparison["cells"] or candidate not in comparison[
            "candidates"
        ] or reference not in comparison["candidates"]:
            entry["reason"] = "no data"
            results.append(entry)
            continue
        if scope is not None:
            row = comparison["cells"][metric].get(scope, {})
            ours, base = row.get(candidate), row.get(reference)
        else:
            ours = comparison["geomean"][metric].get(candidate)
            base = comparison["geomean"][metric].get(reference)
        if not ours or not base or ours <= 0 or base <= 0:
            entry["reason"] = "no data"
            results.append(entry)
            continue
        ratio = ours / base
        higher = METRICS[metric].higher_is_better
        margin = (ratio - 1.0) * 100.0 if higher else (1.0 - ratio) * 100.0
        passed = margin >= -gate.within_pct
        entry.update(
            ratio=ratio,
            margin_pct=margin,
            passed=passed,
            reason=None if passed else "regression",
        )
        results.append(entry)
    return results


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------
def _fmt(value: Optional[float], spec: str = ".4g") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_comparison(
    comparison: dict, gate_results: Optional[Sequence[dict]] = None
) -> str:
    """The deterministic ``repro compare`` text report."""
    candidates = comparison["candidates"]
    workloads = comparison["workloads"]
    baseline = comparison["baseline"]
    width = max([len(c) for c in candidates] + [10])
    wl_width = max([len(w) for w in workloads] + [len("geomean x"), 10])
    lines: List[str] = []
    lines.append(f"=== comparison: {comparison['name']} ===")
    lines.append(
        f"candidates: {', '.join(candidates)} (baseline: {baseline})"
    )
    lines.append(
        f"workloads : {', '.join(workloads)}"
        + (
            f"  x {comparison['n_seeds']} seed(s)"
            if comparison["n_seeds"] > 1
            else ""
        )
    )

    for metric in comparison["metrics"]:
        definition = METRICS[metric]
        note = " [volatile]" if definition.volatile else ""
        lines.append("")
        lines.append(
            f"--- {metric} ({definition.direction} is better)"
            f"{note} ---"
        )
        header = f"{'workload':<{wl_width}}"
        for candidate in candidates:
            header += f" {candidate:>{width}}"
        lines.append(header)
        for workload in workloads:
            line = f"{workload:<{wl_width}}"
            for candidate in candidates:
                value = comparison["cells"][metric][workload][candidate]
                line += f" {_fmt(value):>{width}}"
            lines.append(line)
        line = f"{'geomean x':<{wl_width}}"
        for candidate in candidates:
            ratio = comparison["geomean"][metric][candidate]
            line += f" {_fmt(ratio):>{width}}"
        lines.append(line)

    primary = comparison["primary_metric"]
    lines.append("")
    lines.append(
        f"--- win/loss matrix on {primary} "
        f"(row beats column on N of {len(workloads)} workloads) ---"
    )
    header = f"{'':<{width}}"
    for candidate in candidates:
        header += f" {candidate:>{width}}"
    lines.append(header)
    for a in candidates:
        line = f"{a:<{width}}"
        for b in candidates:
            cell = "." if a == b else str(comparison["wins"][a][b])
            line += f" {cell:>{width}}"
        lines.append(line)

    unhealthy = {
        candidate: health
        for candidate, health in comparison["health"].items()
        if health["failed"]
    }
    lines.append("")
    lines.append("--- health ---")
    if not unhealthy:
        total = sum(h["ok"] for h in comparison["health"].values())
        lines.append(f"all {total} job(s) ok")
    else:
        for candidate in candidates:
            health = comparison["health"][candidate]
            if not health["failed"]:
                continue
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(health["quarantine"].items())
            )
            lines.append(
                f"{candidate}: {health['failed']} failed "
                f"({kinds}) / {health['ok']} ok"
            )

    if gate_results is not None:
        lines.append("")
        lines.append("--- gates ---")
        if not gate_results:
            lines.append("(none declared)")
        for result in gate_results:
            scope = (
                f" on {result['workload']}"
                if result["workload"]
                else " (geomean)"
            )
            verdict = "PASS" if result["passed"] else "FAIL"
            detail = (
                f"margin {_fmt(result['margin_pct'], '+.2f')}%"
                if result["margin_pct"] is not None
                else str(result["reason"])
            )
            lines.append(
                f"[{verdict}] {result['candidate']} within "
                f"{_fmt(result['within_pct'], 'g')}% of {result['of']} "
                f"on {result['metric']}{scope}: {detail}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SVG figures
# ---------------------------------------------------------------------------
#: Fixed candidate palette (cycled); chosen to stay readable on white.
_PALETTE = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f",
    "#956cb4", "#8c613c", "#dc7ec0", "#797979",
)


def render_metric_svg(comparison: dict, metric: str) -> str:
    """A self-contained grouped-bar SVG for one metric.

    Bars are grouped by workload, one bar per candidate, with a legend
    and the numeric value atop each bar. All coordinates are formatted
    to fixed precision so the same comparison always renders the same
    bytes.
    """
    if metric not in comparison["cells"]:
        raise ConfigError(
            f"metric {metric!r} is not in this comparison "
            f"({', '.join(comparison['metrics'])})"
        )
    candidates = comparison["candidates"]
    workloads = comparison["workloads"]
    cells = comparison["cells"][metric]
    peak = max(
        [
            value
            for workload in workloads
            for value in cells[workload].values()
            if value is not None
        ]
        or [1.0]
    )
    if peak <= 0:
        peak = 1.0

    bar_w = 26.0
    gap = 10.0
    group_w = bar_w * len(candidates) + gap * 2
    plot_h = 220.0
    margin_l, margin_t = 56.0, 34.0
    legend_h = 18.0 * len(candidates)
    width = margin_l + group_w * len(workloads) + 150.0
    height = margin_t + plot_h + 48.0 + max(0.0, legend_h - plot_h / 2)

    def x(coord: float) -> str:
        return f"{coord:.2f}"

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{x(width)}" height="{x(height)}" '
        f'viewBox="0 0 {x(width)} {x(height)}" '
        f'font-family="monospace" font-size="11">'
    )
    definition = METRICS[metric]
    parts.append(
        f'<text x="{x(margin_l)}" y="18" font-size="13">'
        f"{_escape(comparison['name'])}: {_escape(metric)} "
        f"({definition.direction} is better)</text>"
    )
    axis_y = margin_t + plot_h
    parts.append(
        f'<line x1="{x(margin_l)}" y1="{x(axis_y)}" '
        f'x2="{x(margin_l + group_w * len(workloads))}" y2="{x(axis_y)}" '
        f'stroke="#333" stroke-width="1"/>'
    )
    for index, workload in enumerate(workloads):
        base_x = margin_l + group_w * index + gap
        for c_index, candidate in enumerate(candidates):
            value = cells[workload][candidate]
            color = _PALETTE[c_index % len(_PALETTE)]
            bx = base_x + bar_w * c_index
            if value is None:
                parts.append(
                    f'<text x="{x(bx + bar_w / 2)}" y="{x(axis_y - 4)}" '
                    f'text-anchor="middle" fill="#999">x</text>'
                )
                continue
            bh = plot_h * (value / peak)
            parts.append(
                f'<rect x="{x(bx)}" y="{x(axis_y - bh)}" '
                f'width="{x(bar_w - 2)}" height="{x(bh)}" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x(bx + bar_w / 2)}" '
                f'y="{x(axis_y - bh - 4)}" text-anchor="middle" '
                f'font-size="9">{_fmt(value, ".3g")}</text>'
            )
        parts.append(
            f'<text x="{x(base_x + (group_w - 2 * gap) / 2)}" '
            f'y="{x(axis_y + 16)}" text-anchor="middle">'
            f"{_escape(workload)}</text>"
        )
    legend_x = margin_l + group_w * len(workloads) + 12.0
    for c_index, candidate in enumerate(candidates):
        ly = margin_t + 18.0 * c_index
        color = _PALETTE[c_index % len(_PALETTE)]
        parts.append(
            f'<rect x="{x(legend_x)}" y="{x(ly)}" width="12" '
            f'height="12" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x(legend_x + 18)}" y="{x(ly + 10)}">'
            f"{_escape(candidate)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def write_figures(
    comparison: dict, directory: Union[str, Path]
) -> List[Path]:
    """One SVG per (non-volatile data permitting) declared metric."""
    from repro.obs.sinks import write_atomic

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for metric in comparison["metrics"]:
        path = directory / f"{metric}.svg"
        write_atomic(path, render_metric_svg(comparison, metric))
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# First-divergence drill-down
# ---------------------------------------------------------------------------
def drill_down(
    spec,
    candidate: str,
    workload: str,
    seed: int = 0,
    reference: Optional[str] = None,
) -> dict:
    """Re-run two candidates on one workload with tracing and diff them.

    Both the candidate and the reference (default: the spec's baseline
    candidate) must be adaptive (scheme ``SparseAdapt``) — static
    schemes make no epoch decisions to diff. The runs are recorded
    in-memory and compared with :func:`repro.obs.diff.diff_traces`, so
    the answer is the exact epoch where the two controllers' applied
    configurations first split, and what they observed there.
    """
    from repro import obs
    from repro.core import load_model
    from repro.core.hardening import HardeningConfig
    from repro.core.modes import OptimizationMode
    from repro.core.policies import parse_policy
    from repro.experiments.harness import (
        EvaluationContext,
        build_trace,
        default_policy_for,
        evaluate_schemes,
    )
    from repro.faults.spec import FaultSchedule
    from repro.obs.diff import diff_traces
    from repro.transmuter.machine import TransmuterModel

    reference = reference if reference is not None else spec.baseline
    by_name = {entry.name: entry for entry in spec.candidates}
    selected = []
    for name in (reference, candidate):
        if name not in by_name:
            raise ConfigError(f"unknown candidate {name!r}")
        entry = by_name[name]
        if entry.scheme != "SparseAdapt":
            raise ConfigError(
                f"candidate {name!r} runs the static scheme "
                f"{entry.scheme!r}; drill-down needs two adaptive "
                f"(SparseAdapt) candidates"
            )
        selected.append(entry)
    workloads = {entry.name: entry for entry in spec.workloads}
    if workload not in workloads:
        raise ConfigError(f"unknown workload {workload!r}")
    load = workloads[workload]
    mode = (
        OptimizationMode.ENERGY_EFFICIENT
        if load.mode == "ee"
        else OptimizationMode.POWER_PERFORMANCE
    )

    traces: List[List[dict]] = []
    for entry in selected:
        sink = obs.MemorySink()
        previous = obs.install(obs.TraceRecorder(sink))
        try:
            trace = build_trace(
                load.kernel, load.matrix, scale=load.scale, seed=seed
            )
            context = EvaluationContext(
                trace=trace,
                machine=TransmuterModel(
                    bandwidth_gbps=load.bandwidth_gbps
                ),
                mode=mode,
                l1_type=load.l1_type,
                model=(
                    load_model(entry.model)
                    if entry.model is not None
                    else None
                ),
                policy=(
                    parse_policy(entry.policy)
                    if entry.policy is not None
                    else default_policy_for(
                        "spmspm" if load.kernel == "spmspm" else "spmspv"
                    )
                ),
                seed=seed,
                faults=(
                    FaultSchedule.from_dict(entry.faults)
                    if entry.faults is not None
                    else None
                ),
                hardening=(
                    HardeningConfig.disabled()
                    if entry.hardening is False
                    else None
                ),
            )
            evaluate_schemes(context, ("SparseAdapt",))
        finally:
            obs.install(previous)
        traces.append(sink.records())

    return diff_traces(
        traces[0],
        traces[1],
        label_a=reference,
        label_b=candidate,
    )
