"""Trace analysis: summarize a recorded JSONL trace for humans.

``repro trace`` records a run; this module turns the resulting record
stream back into the views the paper's methodology cares about:

* the per-epoch timeline (phase, configuration, modeled time/energy,
  reconfiguration markers);
* reconfiguration counts broken down by hardware parameter;
* the host decision-latency histogram (counter read -> inference ->
  policy filter -> cost computation, per epoch);
* the top-k most expensive epochs by modeled time.

Everything operates on plain record dicts as produced by
:class:`~repro.obs.trace.TraceRecorder`, so traces survive process
boundaries and version drift degrades softly (missing attributes
render as blanks, never exceptions).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.sinks import read_jsonl
from repro.obs.trace import SCHEMA_VERSION

__all__ = [
    "SUPPORTED_SCHEMA_VERSIONS",
    "load_trace",
    "trace_schema_version",
    "check_schema",
    "summarize",
    "render",
    "ascii_histogram",
]

#: Trace schema versions this tooling knows how to read. Version 1
#: (PR 1, no header record) parses fine but lacks per-epoch config
#: values and provenance records.
SUPPORTED_SCHEMA_VERSIONS = (1, SCHEMA_VERSION)


def load_trace(path: Union[str, Path]) -> List[Dict]:
    """Load a JSONL trace recorded by ``repro trace``."""
    return read_jsonl(path)


def trace_schema_version(records: Sequence[Dict]) -> int:
    """Schema version stamped in the trace header (1 when absent)."""
    for record in records:
        if record.get("type") == "header" and record.get("name") == "trace":
            return int(_attrs(record).get("schema_version", 1))
    return 1


def check_schema(records: Sequence[Dict], origin: str = "trace") -> int:
    """Validate a loaded trace's schema version; returns the version.

    Raises :class:`ValueError` (the same class malformed JSONL raises,
    so CLI error paths stay uniform) when the trace is empty or was
    written by an unknown — presumably newer — schema.
    """
    if not records:
        raise ValueError(f"{origin} contains no records")
    version = trace_schema_version(records)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise ValueError(
            f"{origin} uses trace schema version {version}; this build "
            f"supports versions {supported}"
        )
    return version


def _attrs(record: Dict) -> Dict:
    return record.get("attrs", {}) or {}


def _named(records: Sequence[Dict], record_type: str, name: str) -> List[Dict]:
    return [
        r
        for r in records
        if r.get("type") == record_type and r.get("name") == name
    ]


def summarize(records: Sequence[Dict]) -> Dict:
    """Digest a record stream into a report-ready structure."""
    starts = _named(records, "event", "controller.start")
    run_info = dict(_attrs(starts[0])) if starts else {}

    epochs = []
    for span in _named(records, "span", "epoch"):
        attrs = _attrs(span)
        epochs.append(
            {
                "epoch": attrs.get("epoch"),
                "phase": attrs.get("phase", ""),
                "config": attrs.get("config", ""),
                "time_s": attrs.get("time_s"),
                "energy_j": attrs.get("energy_j"),
                "gflops": attrs.get("gflops"),
                "reconfig_time_s": attrs.get("reconfig_time_s", 0.0),
                "host_dur_s": span.get("dur_s"),
            }
        )
    epochs.sort(key=lambda e: (e["epoch"] is None, e["epoch"]))

    by_parameter: TallyCounter = TallyCounter()
    reconfigs = _named(records, "event", "reconfig")
    for event in reconfigs:
        for parameter in _attrs(event).get("changed", []):
            by_parameter[parameter] += 1

    decisions = _named(records, "event", "decision")
    latencies = [
        _attrs(d)["latency_s"]
        for d in decisions
        if _attrs(d).get("latency_s") is not None
    ]

    proposed = sum(len(_attrs(d).get("proposed", {})) for d in decisions)
    accepted = sum(len(_attrs(d).get("accepted", {})) for d in decisions)

    offloads = [
        dict(_attrs(e)) for e in _named(records, "event", "runtime.offload")
    ]

    return {
        "n_records": len(records),
        "run": run_info,
        "epochs": epochs,
        "reconfigurations": {
            "total": len(reconfigs),
            "by_parameter": dict(
                sorted(by_parameter.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
            "proposed_changes": proposed,
            "accepted_changes": accepted,
        },
        "decision_latencies_s": latencies,
        "offloads": offloads,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def ascii_histogram(
    values: Sequence[float],
    bins: int = 8,
    width: int = 40,
    unit_scale: float = 1e6,
    unit: str = "us",
) -> str:
    """Fixed-width text histogram of a value list (default: seconds→us)."""
    if not values:
        return "  (no samples)"
    scaled = [v * unit_scale for v in values]
    low, high = min(scaled), max(scaled)
    if high <= low:
        high = low + 1e-9
    step = (high - low) / bins
    counts = [0] * bins
    for value in scaled:
        index = min(int((value - low) / step), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        lo, hi = low + i * step, low + (i + 1) * step
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"  [{lo:10.2f}, {hi:10.2f}) {unit} |{bar:<{width}} {count}")
    return "\n".join(lines)


def _fmt(value, spec: str = ".4g", fallback: str = "-") -> str:
    if value is None:
        return fallback
    try:
        return format(value, spec)
    except (TypeError, ValueError):
        return str(value)


def _fmt_us(seconds: float) -> str:
    """Microseconds with NaN spelled out (empty-histogram quantiles)."""
    if seconds != seconds:
        return "NaN"
    return f"{seconds * 1e6:.2f}"


def render(summary: Dict, top: int = 5, max_timeline_rows: int = 64) -> str:
    """Human-readable report of a summarized trace."""
    lines: List[str] = []
    run = summary.get("run", {})
    lines.append("=== trace report ===")
    lines.append(f"records: {summary.get('n_records', 0)}")
    if run:
        lines.append(
            "run: scheme={} trace={} mode={} policy={} epochs={}".format(
                run.get("scheme", "?"),
                run.get("trace", "?"),
                run.get("mode", "?"),
                run.get("policy", "?"),
                run.get("n_epochs", "?"),
            )
        )
        lines.append(
            "determinism: telemetry_noise={} noise_seed={}".format(
                _fmt(run.get("telemetry_noise")), run.get("noise_seed", "-")
            )
        )

    epochs = summary.get("epochs", [])
    lines.append("")
    lines.append(f"--- epoch timeline ({len(epochs)} epochs) ---")
    lines.append(
        f"{'epoch':>5} {'phase':<14} {'config':<40} "
        f"{'time_us':>10} {'gflops':>8}  reconfig"
    )
    shown = epochs
    truncated = 0
    if len(epochs) > max_timeline_rows:
        head = max_timeline_rows // 2
        shown = epochs[:head] + epochs[-(max_timeline_rows - head):]
        truncated = len(epochs) - len(shown)
    previous_index = None
    for epoch in shown:
        index = epoch["epoch"]
        if (
            truncated
            and previous_index is not None
            and index is not None
            and index != previous_index + 1
        ):
            lines.append(f"{'...':>5} ({truncated} epochs elided)")
        previous_index = index
        time_us = (
            _fmt(epoch["time_s"] * 1e6, ".2f")
            if epoch["time_s"] is not None
            else "-"
        )
        marker = ""
        if epoch.get("reconfig_time_s"):
            marker = f"* (+{epoch['reconfig_time_s'] * 1e6:.2f} us)"
        lines.append(
            f"{_fmt(index, 'd'):>5} {epoch['phase']:<14.14} "
            f"{epoch['config']:<40.40} {time_us:>10} "
            f"{_fmt(epoch['gflops'], '.3f'):>8}  {marker}"
        )

    reconfig = summary.get("reconfigurations", {})
    lines.append("")
    lines.append("--- reconfigurations by parameter ---")
    lines.append(
        "total transitions: {} (proposed parameter changes: {}, "
        "accepted: {})".format(
            reconfig.get("total", 0),
            reconfig.get("proposed_changes", 0),
            reconfig.get("accepted_changes", 0),
        )
    )
    by_parameter = reconfig.get("by_parameter", {})
    if by_parameter:
        peak = max(by_parameter.values())
        for parameter, count in by_parameter.items():
            bar = "#" * max(1, round(count / peak * 30))
            lines.append(f"  {parameter:<12} {count:>5} |{bar}")
    else:
        lines.append("  (none)")

    latencies = summary.get("decision_latencies_s", [])
    lines.append("")
    lines.append(
        f"--- host decision latency ({len(latencies)} decisions) ---"
    )
    histogram = Histogram("decision_latency", buckets=DEFAULT_BUCKETS)
    for value in latencies:
        histogram.observe(value)
    # An empty histogram's quantiles are NaN; render them as such so
    # the quantile line is always present (and machine-greppable)
    # instead of silently disappearing for empty traces.
    p50, p90, p99 = histogram.quantiles((0.50, 0.90, 0.99))
    lines.append(
        "p50/p90/p99 (bucket-estimated): {} / {} / {} us".format(
            _fmt_us(p50), _fmt_us(p90), _fmt_us(p99)
        )
    )
    if latencies:
        lines.append(
            "min/max: {:.2f} / {:.2f} us".format(
                min(latencies) * 1e6, max(latencies) * 1e6
            )
        )
    lines.append(ascii_histogram(latencies))

    priced = [e for e in epochs if e.get("time_s") is not None]
    lines.append("")
    lines.append(f"--- top-{top} most expensive epochs (modeled time) ---")
    for epoch in sorted(priced, key=lambda e: -e["time_s"])[:top]:
        lines.append(
            "  epoch {:>4}  {:>10.2f} us  {:<14.14} {}".format(
                epoch["epoch"],
                epoch["time_s"] * 1e6,
                epoch["phase"],
                epoch["config"],
            )
        )
    if not priced:
        lines.append("  (no epoch spans found)")

    offloads = summary.get("offloads", [])
    if offloads:
        lines.append("")
        lines.append("--- kernel offloads ---")
        for off in offloads:
            lines.append(
                "  {} {} epochs={} gflops={} gflops/W={}".format(
                    off.get("kernel", "?"),
                    off.get("trace", ""),
                    off.get("n_epochs", "-"),
                    _fmt(off.get("gflops"), ".3f"),
                    _fmt(off.get("gflops_per_watt"), ".3f"),
                )
            )
    return "\n".join(lines)
