"""Trace sinks: where serialized trace records go.

A sink receives finished record dicts from a
:class:`~repro.obs.trace.TraceRecorder` and either drops them
(:class:`NullSink`), keeps the most recent N in memory
(:class:`MemorySink`, a ring buffer), or streams them to a JSONL file
(:class:`FileSink`). Sinks own serialization concerns; recorders own
timing and record assembly.

The module is stdlib-only by design — observability sits below every
other layer of the repository and must not pull the numeric stack in.
"""

from __future__ import annotations

import errno
import json
import os
import warnings
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, TextIO, Union

from repro.obs import profile as obs_profile

__all__ = [
    "TraceSink",
    "NullSink",
    "MemorySink",
    "FileSink",
    "atomic_writer",
    "fsync_dir",
    "write_atomic",
    "write_jsonl",
    "read_jsonl",
]

_io_shim_module = None


def _io_shim():
    """The installed storage-fault shim (imported lazily).

    This module sits below nearly everything else; importing
    ``repro.faults`` at module scope would create a cycle, so the shim
    module is resolved on first use and cached.
    """
    global _io_shim_module
    if _io_shim_module is None:
        from repro.faults import io as _faults_io

        _io_shim_module = _faults_io
    return _io_shim_module.get_shim()


#: One-shot latch: the filesystem rejected directory fsync entirely
#: (EINVAL/ENOTSUP — overlay and some network mounts). Once tripped,
#: further directory fsyncs are skipped instead of re-failing.
_dir_fsync_unsupported = False


def _reset_dir_fsync_latch() -> None:
    """Re-arm directory fsync (test hook)."""
    global _dir_fsync_unsupported
    _dir_fsync_unsupported = False


_FSYNC_UNSUPPORTED_ERRNOS = tuple(
    code
    for code in (
        errno.EINVAL,
        getattr(errno, "ENOTSUP", None),
        getattr(errno, "EOPNOTSUPP", None),
    )
    if code is not None
)


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes a rename atomic with respect to crashes, but
    the *directory entry* itself only becomes durable once the parent
    directory is fsynced — without it a power cut can roll the rename
    back and resurrect the old file (or nothing at all). Platforms
    that refuse ``open()`` on directories are tolerated silently, and
    filesystems that reject directory fsync outright (EINVAL/ENOTSUP,
    e.g. some overlay or network mounts) degrade to a one-shot warning
    instead of killing the campaign; the rename is still atomic there,
    just not power-loss durable.
    """
    global _dir_fsync_unsupported
    if _dir_fsync_unsupported:
        return
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        _io_shim().fsync(fd, site="sinks.dir.fsync")
    except OSError as exc:
        if exc.errno in _FSYNC_UNSUPPORTED_ERRNOS:
            _dir_fsync_unsupported = True
            warnings.warn(
                "directory fsync is unsupported on this filesystem "
                f"({os.fspath(path)}: {exc.strerror or exc}); renames "
                "stay atomic but are not power-loss durable — "
                "skipping further directory fsyncs",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            raise
    finally:
        os.close(fd)


class _ShimWriter:
    """File-handle proxy routing ``write`` through the installed shim.

    Only wrapped around :func:`atomic_writer` handles while a fault or
    crash-point shim is active — the default path hands callers the
    raw handle, so the disabled-shim cost stays zero per byte.
    """

    def __init__(self, handle: TextIO, site: str) -> None:
        self._handle = handle
        self._site = site

    def write(self, text: str) -> None:
        _io_shim().write(self._handle, text, site=self._site)

    def __getattr__(self, name: str):
        return getattr(self._handle, name)


@contextmanager
def atomic_writer(
    path: Union[str, Path], encoding: str = "utf-8"
) -> Iterator[TextIO]:
    """Open a temporary sibling of ``path`` for writing; commit on exit.

    The handle writes to ``<name>.tmp<pid>`` in the target directory.
    On clean exit the data is flushed, fsynced, and atomically renamed
    over ``path`` (``os.replace``), and the parent directory is fsynced
    so the rename itself is durable; on error the temporary file is
    removed and ``path`` is left exactly as it was. A killed process
    therefore never leaves a truncated file at the final path.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    shim = _io_shim()
    try:
        with tmp.open("w", encoding=encoding) as handle:
            if shim.active:
                yield _ShimWriter(handle, "sinks.atomic.write")  # type: ignore[misc]
            else:
                yield handle
            handle.flush()
            shim.fsync(handle.fileno(), site="sinks.atomic.fsync")
        shim.replace(tmp, path, site="sinks.atomic.replace")
        fsync_dir(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def write_atomic(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` crash-safely (tmp + fsync + replace)."""
    path = Path(path)
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)
    return path


def _json_default(value):
    """Fallback encoder for non-JSON-native values.

    Numpy scalars expose ``item()``; everything else degrades to its
    ``str`` so a trace write never raises mid-run.
    """
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # pragma: no cover - defensive
            pass
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def encode_record(record: Dict) -> str:
    """One trace record as a compact JSON line (no trailing newline)."""
    return json.dumps(record, default=_json_default, separators=(",", ":"))


class TraceSink:
    """Receives finished trace records."""

    def emit(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; emitting afterwards is undefined."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class NullSink(TraceSink):
    """Drops every record; the disabled-tracing terminal."""

    def emit(self, record: Dict) -> None:  # pragma: no cover - never called
        pass


class MemorySink(TraceSink):
    """Bounded in-memory ring buffer of the most recent records.

    When ``capacity`` is exceeded the oldest records are evicted;
    ``evicted`` counts how many were lost so reports can flag
    truncated traces.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("MemorySink capacity must be positive")
        self.capacity = capacity
        self.evicted = 0
        self.emitted = 0
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, record: Dict) -> None:
        if len(self._buffer) == self.capacity:
            self.evicted += 1
        self._buffer.append(record)
        self.emitted += 1

    def records(self) -> List[Dict]:
        """The retained records, oldest first."""
        return list(self._buffer)

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the retained records to a JSONL file."""
        return write_jsonl(self._buffer, path)


class FileSink(TraceSink):
    """Streams records to a JSONL file, one object per line.

    Records stream into a ``<name>.part`` sibling; :meth:`close`
    fsyncs and atomically renames it over the final path. A run killed
    mid-trace leaves only the ``.part`` file behind — the final path
    either holds a complete trace or nothing.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.emitted = 0
        self._part_path = self.path.with_name(self.path.name + ".part")
        self._handle = self._part_path.open("w", encoding="utf-8")

    def emit(self, record: Dict) -> None:
        with obs_profile.span("sink_io"):
            self._handle.write(encode_record(record) + "\n")
            self.emitted += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._part_path, self.path)
            fsync_dir(self.path.parent)


def write_jsonl(records: Iterable[Dict], path: Union[str, Path]) -> Path:
    """Write an iterable of records as JSONL (atomically: see
    :func:`atomic_writer`)."""
    path = Path(path)
    with atomic_writer(path) as handle:
        for record in records:
            handle.write(encode_record(record) + "\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Load a JSONL trace file back into record dicts."""
    records: List[Dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
