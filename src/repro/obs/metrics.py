"""Process-wide metrics registry: counters, gauges, histograms.

Metrics complement traces: a trace answers "what happened in this
run", metrics answer "how much, across the process". Instruments are
created (or fetched — creation is idempotent) through a registry::

    from repro.obs import metrics
    metrics.counter("controller.reconfigs").inc()
    metrics.histogram("epoch.decision_latency_s").observe(dt)
    metrics.counter("runtime.offloads").labels(kernel="spmspv").inc()

Each instrument owns labeled children: ``labels(**kv)`` returns a
child keyed by the sorted label pairs, so the same labels always hit
the same child. ``snapshot()`` exports the whole registry as a plain
dict (deep-copied, so later increments cannot mutate an exported
snapshot) and ``render()`` emits Prometheus-style text (dots in metric
names become underscores, the only transformation applied).

Stdlib-only; a single process-wide :data:`REGISTRY` plus module-level
shortcuts mirror the usual client-library ergonomics.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "render",
    "render_openmetrics",
    "reset",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, tuned for host-side decision latencies
#: (seconds): 1 us .. 1 s in 1-2.5-5 steps, plus the implicit +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0**exponent
    for exponent in range(-6, 0)
    for base in (1.0, 2.5, 5.0)
) + (1.0,)


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(pairs: LabelPairs, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Shared child-management machinery for all metric kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.label_pairs: LabelPairs = ()
        self._children: Dict[LabelPairs, "_Instrument"] = {}
        self._lock = threading.Lock()

    def labels(self, **labels) -> "_Instrument":
        """The child instrument for one label combination (cached)."""
        if not labels:
            return self
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help)
                child.label_pairs = key
                self._children[key] = child
            return child

    # ------------------------------------------------------------------
    def _series(self) -> Iterable["_Instrument"]:
        """This instrument (if touched) followed by its children."""
        if self._touched():
            yield self
        for key in sorted(self._children):
            yield self._children[key]

    def _touched(self) -> bool:
        raise NotImplementedError

    def _value_snapshot(self):
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0
        self._hits = 0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only go up; use a gauge instead")
        with self._lock:
            self.value += amount
            self._hits += 1

    def _touched(self) -> bool:
        return self._hits > 0 or not self._children

    def _value_snapshot(self):
        return self.value


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0
        self._hits = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self._hits += 1

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            self._hits += 1

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _touched(self) -> bool:
        return self._hits > 0 or not self._children

    def _value_snapshot(self):
        return self.value


class Histogram(_Instrument):
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        super().__init__(name, help)
        if buckets is None:
            buckets = DEFAULT_BUCKETS
        bounds = tuple(sorted(set(buckets)))
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def labels(self, **labels) -> "Histogram":
        child = super().labels(**labels)
        child.bounds = self.bounds  # children share the parent's bounds
        if len(child.bucket_counts) != len(self.bounds) + 1:
            child.bucket_counts = [0] * (len(self.bounds) + 1)
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    # ------------------------------------------------------------------
    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Uses Prometheus ``histogram_quantile`` semantics: find the
        bucket the target rank falls into and interpolate linearly
        inside it (the first bucket interpolates from 0, observations
        being non-negative latencies/sizes in practice). If the rank
        lands in the +Inf overflow bucket the highest finite bound is
        returned — the estimate saturates rather than extrapolates.
        Returns ``nan`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError("quantile must be within [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        for i, bucket_count in enumerate(self.bucket_counts[:-1]):
            previous = running
            running += bucket_count
            if running >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                if bucket_count == 0:  # rank == previous == running == 0
                    return lower
                return lower + (upper - lower) * (rank - previous) / (
                    bucket_count
                )
        return self.bounds[-1]

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Bucket-estimated quantiles for each ``q`` in ``qs``."""
        return [self.quantile(q) for q in qs]

    def _touched(self) -> bool:
        return self.count > 0 or not self._children

    def _value_snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+Inf" if bound == float("inf") else repr(bound)): n
                for bound, n in self.cumulative()
            },
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                return existing
            metric = _KINDS[kind](name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create("histogram", name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Deep-copied dict export of every registered metric."""
        out: Dict[str, Dict] = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            series = {}
            for instrument in metric._series():
                key = ",".join(f"{k}={v}" for k, v in instrument.label_pairs)
                series[key] = instrument._value_snapshot()
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return out

    def _ordered_metrics(self) -> List[_Instrument]:
        """Every metric in deterministic order: sorted by name, and
        each metric's series sorted by label pairs (``_series()``
        iterates children in sorted-key order). Both text renderers
        share this, so two registries holding the same values render
        byte-identically regardless of creation/update order."""
        with self._lock:
            metrics = dict(self._metrics)
        return [metrics[name] for name in sorted(metrics)]

    def render(self) -> str:
        """Prometheus text exposition of the registry."""
        lines: List[str] = []
        for metric in self._ordered_metrics():
            prom = metric.name.replace(".", "_").replace("-", "_")
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            for instrument in metric._series():
                pairs = instrument.label_pairs
                if isinstance(instrument, Histogram):
                    for bound, running in instrument.cumulative():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        labels = _format_labels(pairs, f'le="{le}"')
                        lines.append(f"{prom}_bucket{labels} {running}")
                    labels = _format_labels(pairs)
                    lines.append(f"{prom}_sum{labels} {instrument.sum:g}")
                    lines.append(f"{prom}_count{labels} {instrument.count}")
                else:
                    labels = _format_labels(pairs)
                    lines.append(f"{prom}{labels} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_openmetrics(self) -> str:
        """OpenMetrics text exposition (what external scrapers pull).

        Differs from :meth:`render` in the details the OpenMetrics
        spec pins down: counter samples carry the ``_total`` suffix,
        NaN gauge values render as ``NaN``, and the exposition ends
        with the mandatory ``# EOF`` terminator. Ordering is the same
        deterministic name-then-label-pairs order.
        """
        lines: List[str] = []
        for metric in self._ordered_metrics():
            om = metric.name.replace(".", "_").replace("-", "_")
            lines.append(f"# TYPE {om} {metric.kind}")
            if metric.help:
                lines.append(f"# HELP {om} {metric.help}")
            for instrument in metric._series():
                pairs = instrument.label_pairs
                if isinstance(instrument, Histogram):
                    for bound, running in instrument.cumulative():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        labels = _format_labels(pairs, f'le="{le}"')
                        lines.append(f"{om}_bucket{labels} {running}")
                    labels = _format_labels(pairs)
                    lines.append(f"{om}_sum{labels} {instrument.sum:g}")
                    lines.append(f"{om}_count{labels} {instrument.count}")
                else:
                    suffix = "_total" if metric.kind == "counter" else ""
                    labels = _format_labels(pairs)
                    value = instrument.value
                    rendered = "NaN" if value != value else f"{value:g}"
                    lines.append(f"{om}{suffix}{labels} {rendered}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Forget every metric (tests and fresh CLI invocations)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry the instrumentation hooks use.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Optional[Tuple[float, ...]] = None
) -> Histogram:
    return REGISTRY.histogram(name, help, buckets=buckets)


def snapshot() -> Dict[str, Dict]:
    return REGISTRY.snapshot()


def render() -> str:
    return REGISTRY.render()


def render_openmetrics() -> str:
    return REGISTRY.render_openmetrics()


def reset() -> None:
    REGISTRY.reset()
