"""Reconfiguration cost-aware prediction policies (paper Section 4.4).

The predictive model proposes a configuration for the next epoch; a
policy then decides, per parameter, whether applying the change is
worth its reconfiguration cost:

* **Aggressive** — always applies the prediction.
* **Conservative** — never applies a change costing more than a fixed
  time budget (in practice this blocks the flush-inducing fine-grained
  changes and lets the super-fine ones through).
* **Hybrid** — applies a change only if its time cost is within a
  tolerance fraction of the previous epoch's elapsed time, penalizing
  bursts of expensive reconfiguration in short epochs while allowing
  occasional ones in long epochs. The paper finds 10-40 % tolerances
  best (Figure 11 left) and uses 40 % for SpMSpV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.power import PowerModel
from repro.transmuter.reconfig import changed_parameters, parameter_change_cost

__all__ = [
    "ReconfigurationPolicy",
    "AggressivePolicy",
    "ConservativePolicy",
    "HybridPolicy",
    "policy_from_name",
]


class ReconfigurationPolicy:
    """Filters a predicted configuration against reconfiguration cost."""

    name = "base"

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        """Return the configuration to actually apply."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _apply_per_parameter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        power: PowerModel,
        bandwidth_gbps: float,
        accept,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        """Shared per-knob walk: ``accept(cost)`` decides each change."""
        config = current
        for name in changed_parameters(current, predicted):
            cost = parameter_change_cost(
                config, predicted, name, power, bandwidth_gbps,
                dirty_bytes_hint=dirty_bytes_hint,
            )
            if accept(cost):
                config = config.with_value(name, predicted.get(name))
        return config


class AggressivePolicy(ReconfigurationPolicy):
    """Always follow the model's prediction."""

    name = "aggressive"

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        return predicted


class ConservativePolicy(ReconfigurationPolicy):
    """Skip any single-parameter change costing more than a fixed time."""

    name = "conservative"

    def __init__(self, max_cost_s: float = 5e-6) -> None:
        if max_cost_s < 0:
            raise ConfigError("max_cost_s must be non-negative")
        self.max_cost_s = max_cost_s

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        return self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= self.max_cost_s,
            dirty_bytes_hint=dirty_bytes_hint,
        )


class HybridPolicy(ReconfigurationPolicy):
    """Allow a change when its cost is a small fraction of the epoch."""

    name = "hybrid"

    def __init__(self, tolerance: float = 0.40) -> None:
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        self.tolerance = tolerance

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        budget = self.tolerance * max(last_epoch_time_s, 0.0)
        return self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= budget,
            dirty_bytes_hint=dirty_bytes_hint,
        )


def policy_from_name(name: str, **kwargs) -> ReconfigurationPolicy:
    """Instantiate a policy by its paper name."""
    policies = {
        "aggressive": AggressivePolicy,
        "conservative": ConservativePolicy,
        "hybrid": HybridPolicy,
    }
    if name not in policies:
        raise ConfigError(f"unknown policy {name!r}")
    return policies[name](**kwargs)
