"""Reconfiguration cost-aware prediction policies (paper Section 4.4).

The predictive model proposes a configuration for the next epoch; a
policy then decides, per parameter, whether applying the change is
worth its reconfiguration cost:

* **Aggressive** — always applies the prediction.
* **Conservative** — never applies a change costing more than a fixed
  time budget (in practice this blocks the flush-inducing fine-grained
  changes and lets the super-fine ones through).
* **Hybrid** — applies a change only if its time cost is within a
  tolerance fraction of the previous epoch's elapsed time, penalizing
  bursts of expensive reconfiguration in short epochs while allowing
  occasional ones in long epochs. The paper finds 10-40 % tolerances
  best (Figure 11 left) and uses 40 % for SpMSpV.

Every policy can also *explain* itself: :meth:`~ReconfigurationPolicy.
filter_with_verdicts` runs the exact same per-parameter walk as
:meth:`~ReconfigurationPolicy.filter` and additionally returns one
:class:`PolicyVerdict` per proposed change, carrying the accept/reject
decision, the cost-vs-budget numbers that produced it, a stable
machine-readable ``code``, and a human-readable ``reason`` sentence.
The verdict path shares the decision code with the plain path, so an
explained run can never diverge from an unexplained one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.power import PowerModel
from repro.transmuter.reconfig import (
    ReconfigCost,
    changed_parameters,
    parameter_change_cost,
)

__all__ = [
    "PolicyVerdict",
    "ReconfigurationPolicy",
    "AggressivePolicy",
    "ConservativePolicy",
    "HybridPolicy",
    "policy_from_name",
    "parse_policy",
]


@dataclass(frozen=True)
class PolicyVerdict:
    """One accept/reject decision on a single proposed parameter change.

    ``code`` is a stable machine-readable label (metrics, queries);
    ``reason`` a stable human-readable sentence carrying the cost and
    budget numbers that produced the decision. ``payback_epochs`` is
    the reconfiguration time expressed in units of the previous epoch's
    duration — "this change costs 3.1 epochs to pay for" — and is
    ``inf`` when the epoch duration is unknown (first epoch).
    """

    parameter: str
    proposed: object
    current: object
    accepted: bool
    code: str
    reason: str
    cost_time_s: float
    cost_energy_j: float
    budget_s: float
    payback_epochs: float

    def as_dict(self) -> dict:
        """JSON-friendly view (trace payloads, ``--json`` surfaces)."""
        return {
            "parameter": self.parameter,
            "proposed": self.proposed,
            "current": self.current,
            "accepted": self.accepted,
            "code": self.code,
            "reason": self.reason,
            "cost_time_s": self.cost_time_s,
            "cost_energy_j": self.cost_energy_j,
            "budget_s": self.budget_s,
            "payback_epochs": self.payback_epochs,
        }


def _payback_epochs(cost_time_s: float, last_epoch_time_s: float) -> float:
    if last_epoch_time_s > 0.0:
        return cost_time_s / last_epoch_time_s
    return float("inf")


class ReconfigurationPolicy:
    """Filters a predicted configuration against reconfiguration cost."""

    name = "base"

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        """Return the configuration to actually apply."""
        raise NotImplementedError

    def filter_with_verdicts(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> Tuple[HardwareConfig, List["PolicyVerdict"]]:
        """``filter`` plus one :class:`PolicyVerdict` per proposed change.

        The applied configuration is identical to :meth:`filter` on the
        same inputs: both run the same walk; this one just keeps the
        decision record instead of dropping it.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _verdict(
        self,
        parameter: str,
        current_value,
        proposed_value,
        cost: ReconfigCost,
        accepted: bool,
        budget_s: float,
        last_epoch_time_s: float,
    ) -> "PolicyVerdict":
        """Policy-specific verdict record; subclasses supply the prose."""
        raise NotImplementedError

    def _apply_per_parameter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        power: PowerModel,
        bandwidth_gbps: float,
        accept,
        dirty_bytes_hint=None,
        budget_s: float = float("inf"),
        last_epoch_time_s: float = 0.0,
        verdicts: Optional[List["PolicyVerdict"]] = None,
    ) -> HardwareConfig:
        """Shared per-knob walk: ``accept(cost)`` decides each change.

        When ``verdicts`` is a list, one :class:`PolicyVerdict` per
        proposed change is appended; the decision itself is taken by the
        exact same ``accept`` call either way.
        """
        config = current
        for name in changed_parameters(current, predicted):
            cost = parameter_change_cost(
                config, predicted, name, power, bandwidth_gbps,
                dirty_bytes_hint=dirty_bytes_hint,
            )
            accepted = accept(cost)
            if verdicts is not None:
                verdicts.append(
                    self._verdict(
                        name,
                        config.get(name),
                        predicted.get(name),
                        cost,
                        accepted,
                        budget_s,
                        last_epoch_time_s,
                    )
                )
            if accepted:
                config = config.with_value(name, predicted.get(name))
        return config


class AggressivePolicy(ReconfigurationPolicy):
    """Always follow the model's prediction."""

    name = "aggressive"

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        return predicted

    def filter_with_verdicts(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> Tuple[HardwareConfig, List[PolicyVerdict]]:
        verdicts: List[PolicyVerdict] = []
        self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: True,
            dirty_bytes_hint=dirty_bytes_hint,
            last_epoch_time_s=last_epoch_time_s,
            verdicts=verdicts,
        )
        return predicted, verdicts

    def _verdict(
        self,
        parameter,
        current_value,
        proposed_value,
        cost,
        accepted,
        budget_s,
        last_epoch_time_s,
    ) -> PolicyVerdict:
        return PolicyVerdict(
            parameter=parameter,
            proposed=proposed_value,
            current=current_value,
            accepted=True,
            code="always_apply",
            reason=(
                f"applied {parameter}: aggressive policy always follows "
                f"the prediction (cost {cost.time_s:.3e} s)"
            ),
            cost_time_s=cost.time_s,
            cost_energy_j=cost.energy_j,
            budget_s=budget_s,
            payback_epochs=_payback_epochs(cost.time_s, last_epoch_time_s),
        )


class ConservativePolicy(ReconfigurationPolicy):
    """Skip any single-parameter change costing more than a fixed time."""

    name = "conservative"

    def __init__(self, max_cost_s: float = 5e-6) -> None:
        if max_cost_s < 0:
            raise ConfigError("max_cost_s must be non-negative")
        self.max_cost_s = max_cost_s

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        return self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= self.max_cost_s,
            dirty_bytes_hint=dirty_bytes_hint,
        )

    def filter_with_verdicts(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> Tuple[HardwareConfig, List[PolicyVerdict]]:
        verdicts: List[PolicyVerdict] = []
        applied = self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= self.max_cost_s,
            dirty_bytes_hint=dirty_bytes_hint,
            budget_s=self.max_cost_s,
            last_epoch_time_s=last_epoch_time_s,
            verdicts=verdicts,
        )
        return applied, verdicts

    def _verdict(
        self,
        parameter,
        current_value,
        proposed_value,
        cost,
        accepted,
        budget_s,
        last_epoch_time_s,
    ) -> PolicyVerdict:
        relation = "<=" if accepted else ">"
        action = "applied" if accepted else "rejected"
        code = "within_max_cost" if accepted else "over_max_cost"
        return PolicyVerdict(
            parameter=parameter,
            proposed=proposed_value,
            current=current_value,
            accepted=accepted,
            code=code,
            reason=(
                f"{action} {parameter}: cost {cost.time_s:.3e} s "
                f"{relation} max {budget_s:.3e} s"
            ),
            cost_time_s=cost.time_s,
            cost_energy_j=cost.energy_j,
            budget_s=budget_s,
            payback_epochs=_payback_epochs(cost.time_s, last_epoch_time_s),
        )


class HybridPolicy(ReconfigurationPolicy):
    """Allow a change when its cost is a small fraction of the epoch."""

    name = "hybrid"

    def __init__(self, tolerance: float = 0.40) -> None:
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        self.tolerance = tolerance

    def filter(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> HardwareConfig:
        budget = self.tolerance * max(last_epoch_time_s, 0.0)
        return self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= budget,
            dirty_bytes_hint=dirty_bytes_hint,
        )

    def filter_with_verdicts(
        self,
        current: HardwareConfig,
        predicted: HardwareConfig,
        last_epoch_time_s: float,
        power: PowerModel,
        bandwidth_gbps: float,
        dirty_bytes_hint=None,
    ) -> Tuple[HardwareConfig, List[PolicyVerdict]]:
        budget = self.tolerance * max(last_epoch_time_s, 0.0)
        verdicts: List[PolicyVerdict] = []
        applied = self._apply_per_parameter(
            current,
            predicted,
            power,
            bandwidth_gbps,
            accept=lambda cost: cost.time_s <= budget,
            dirty_bytes_hint=dirty_bytes_hint,
            budget_s=budget,
            last_epoch_time_s=last_epoch_time_s,
            verdicts=verdicts,
        )
        return applied, verdicts

    def _verdict(
        self,
        parameter,
        current_value,
        proposed_value,
        cost,
        accepted,
        budget_s,
        last_epoch_time_s,
    ) -> PolicyVerdict:
        relation = "<=" if accepted else ">"
        action = "applied" if accepted else "rejected"
        code = "within_budget" if accepted else "over_budget"
        payback = _payback_epochs(cost.time_s, last_epoch_time_s)
        return PolicyVerdict(
            parameter=parameter,
            proposed=proposed_value,
            current=current_value,
            accepted=accepted,
            code=code,
            reason=(
                f"{action} {parameter}: cost {cost.time_s:.3e} s "
                f"{relation} budget {budget_s:.3e} s "
                f"({self.tolerance:.0%} of epoch {last_epoch_time_s:.3e} s); "
                f"payback {payback:.2f} epochs vs tolerance "
                f"{self.tolerance:.2f}"
            ),
            cost_time_s=cost.time_s,
            cost_energy_j=cost.energy_j,
            budget_s=budget_s,
            payback_epochs=payback,
        )


def policy_from_name(name: str, **kwargs) -> ReconfigurationPolicy:
    """Instantiate a policy by its paper name."""
    policies = {
        "aggressive": AggressivePolicy,
        "conservative": ConservativePolicy,
        "hybrid": HybridPolicy,
    }
    if name not in policies:
        raise ConfigError(f"unknown policy {name!r}")
    return policies[name](**kwargs)


def parse_policy(text: str) -> ReconfigurationPolicy:
    """Parse a declarative policy string from a plan or experiment spec.

    Accepted forms: ``conservative``, ``aggressive``, ``hybrid`` (the
    default 40% tolerance), and ``hybrid:<tolerance>`` with the
    tolerance as a fraction (``hybrid:0.4``). The string is the
    content-addressed identity of the policy inside a
    :class:`~repro.runner.plan.JobSpec`, so two spellings of the same
    policy (``hybrid`` vs ``hybrid:0.40``) are *different* job keys on
    purpose — the description, not the object, is what is hashed.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigError(f"policy must be a non-empty string, got {text!r}")
    name, sep, argument = text.partition(":")
    name = name.strip().lower()
    kwargs = {}
    if sep:
        if name != "hybrid":
            raise ConfigError(
                f"policy {name!r} takes no tolerance argument "
                f"(only 'hybrid:<tolerance>' does)"
            )
        try:
            kwargs["tolerance"] = float(argument)
        except ValueError:
            raise ConfigError(
                f"hybrid tolerance must be a number, got {argument!r}"
            ) from None
    return policy_from_name(name, **kwargs)
