"""Save and load trained models as JSON.

The paper's artifact ships pre-trained per-parameter models
(``best_models/`` in the Docker image) so evaluations skip the training
sweep; this module provides the equivalent: a portable, dependency-free
JSON serialization of the decision-tree ensembles — the stock
:class:`SparseAdaptModel` and the Section-7
:class:`~repro.core.memorymode.MemoryModeModel` extension.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.model import SparseAdaptModel
from repro.errors import ModelError
from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode
from repro.obs.sinks import write_atomic

__all__ = [
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
    "save_memory_mode_model",
    "load_memory_mode_model",
]

_FORMAT_VERSION = 1


def _node_to_dict(node: TreeNode) -> dict:
    out = {
        "value": [float(v) for v in node.value],
        "n_samples": int(node.n_samples),
        "impurity": float(node.impurity),
    }
    if not node.is_leaf:
        out["feature"] = int(node.feature)
        out["threshold"] = float(node.threshold)
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(data: dict) -> TreeNode:
    node = TreeNode(
        value=np.asarray(data["value"], dtype=np.float64),
        n_samples=int(data["n_samples"]),
        impurity=float(data["impurity"]),
    )
    if "feature" in data:
        node.feature = int(data["feature"])
        node.threshold = float(data["threshold"])
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


def _tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    if tree.root_ is None or tree.classes_ is None:
        raise ModelError("cannot serialize an unfitted tree")
    classes = tree.classes_
    if classes.dtype.kind in ("U", "S"):
        class_values = [str(c) for c in classes]
        class_kind = "str"
    elif classes.dtype.kind == "f":
        class_values = [float(c) for c in classes]
        class_kind = "float"
    else:
        class_values = [int(c) for c in classes]
        class_kind = "int"
    return {
        "params": {
            key: value
            for key, value in tree.get_params().items()
            if value is None or isinstance(value, (int, float, str, bool))
        },
        "classes": class_values,
        "class_kind": class_kind,
        "n_features": int(tree.n_features_),
        "feature_importances": [
            float(v) for v in tree.feature_importances_
        ],
        "root": _node_to_dict(tree.root_),
    }


def _tree_from_dict(data: dict) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier(**data["params"])
    kind = {"str": str, "int": np.int64, "float": np.float64}[
        data["class_kind"]
    ]
    tree.classes_ = np.asarray(data["classes"], dtype=kind)
    tree._n_classes = tree.classes_.size
    tree.n_features_ = int(data["n_features"])
    tree.feature_importances_ = np.asarray(
        data["feature_importances"], dtype=np.float64
    )
    tree.root_ = _node_from_dict(data["root"])
    return tree


def model_to_dict(model: SparseAdaptModel) -> dict:
    """Serialize a fitted model ensemble to plain dictionaries."""
    return {
        "format_version": _FORMAT_VERSION,
        "l1_type": model.l1_type,
        "hyperparameters": model.hyperparameters,
        "trees": {
            name: _tree_to_dict(tree) for name, tree in model.trees.items()
        },
    }


def model_from_dict(data: dict) -> SparseAdaptModel:
    """Rebuild a model ensemble from :func:`model_to_dict` output."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    trees = {
        name: _tree_from_dict(tree_data)
        for name, tree_data in data["trees"].items()
    }
    return SparseAdaptModel(
        trees=trees,
        l1_type=data["l1_type"],
        hyperparameters=data.get("hyperparameters", {}),
    )


def save_model(model: SparseAdaptModel, path: Union[str, Path]) -> None:
    """Write a fitted model to a JSON file (crash-safe atomic write)."""
    write_atomic(path, json.dumps(model_to_dict(model)))


def load_model(path: Union[str, Path]) -> SparseAdaptModel:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"model file {path} does not exist")
    return model_from_dict(json.loads(path.read_text()))


def save_memory_mode_model(model, path: Union[str, Path]) -> None:
    """Write a fitted memory-mode model (Section-7 extension) to JSON."""
    from repro.core.memorymode import MemoryModeModel

    if not isinstance(model, MemoryModeModel):
        raise ModelError("expected a MemoryModeModel")
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "memory-mode",
        "cache_model": model_to_dict(model.cache_model),
        "spm_model": model_to_dict(model.spm_model),
        "type_tree": _tree_to_dict(model.type_tree),
    }
    write_atomic(path, json.dumps(payload))


def load_memory_mode_model(path: Union[str, Path]):
    """Load a model previously written by :func:`save_memory_mode_model`."""
    from repro.core.memorymode import MemoryModeModel

    path = Path(path)
    if not path.exists():
        raise ModelError(f"model file {path} does not exist")
    payload = json.loads(path.read_text())
    if payload.get("kind") != "memory-mode":
        raise ModelError("file does not hold a memory-mode model")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {payload.get('format_version')!r}"
        )
    return MemoryModeModel(
        cache_model=model_from_dict(payload["cache_model"]),
        spm_model=model_from_dict(payload["spm_model"]),
        type_tree=_tree_from_dict(payload["type_tree"]),
    )
