"""The SparseAdapt runtime controller (paper Figure 3a).

At the end of every epoch the controller (i) collects the hardware
telemetry, (ii) runs the predictive-model ensemble to get the proposed
configuration for the next epoch, (iii) filters the proposal through
the reconfiguration cost-aware policy, and (iv) applies the surviving
changes, charging the transition cost to the next epoch. The host-side
telemetry/decision latency (50-100 host cycles, Section 3.4) is
accounted once per epoch.

``telemetry_noise`` injects multiplicative Gaussian noise into the
counters before inference — a robustness study for real hardware whose
saturating counters and sampling windows are never exact. The trees
were trained on clean telemetry, so this measures how gracefully the
deployed controller degrades. The noise stream is fully determined by
``noise_seed``, which the controller exposes (and records into any
active trace) so a noisy run can be replayed bit-exactly from its
trace alone.

When a trace recorder is installed (``repro.obs.recording``), the
controller emits one ``epoch`` span per executed epoch plus a
``decision`` event carrying the per-stage host latency and the
proposed-vs-accepted configuration diff, a ``reconfig`` event per
applied transition, and one ``provenance`` event per (epoch, runtime
parameter) carrying the decision-tree path that produced the proposal
(feature, threshold, direction per node, vote margin), the raw and
noise-perturbed counter values the model read, and the policy's
accept/reject verdict with its cost-vs-budget numbers. With tracing
disabled all instrumentation is skipped behind a single flag check, so
the modeled numbers and the runtime cost are identical to an
uninstrumented run: the traced path calls
``model.predict_with_provenance`` / ``policy.filter_with_verdicts``,
which share the decision code with the untraced ``predict`` /
``filter`` calls and therefore cannot change any decision.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.core.policies import HybridPolicy, ReconfigurationPolicy
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.kernels.base import KernelTrace
from repro.transmuter import params
from repro.transmuter.config import RUNTIME_PARAMETERS, HardwareConfig
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    host_decision_overhead_s,
    reconfiguration_cost,
)

__all__ = ["SparseAdaptController", "config_dict", "config_diff"]

#: Host power attributed to the decision process, watts. The paper
#: notes telemetry/streaming happens "in the shadow of the workload"
#: (Section 3.3); only the incremental decision energy is charged.
_HOST_DECISION_POWER_W = 0.05


def config_dict(config: HardwareConfig) -> Dict[str, object]:
    """A configuration as a flat, JSON-friendly dict (trace payloads)."""
    out: Dict[str, object] = {"l1_type": config.l1_type}
    for name in RUNTIME_PARAMETERS:
        out[name] = config.get(name)
    return out


def config_diff(
    old: HardwareConfig, new: HardwareConfig
) -> Dict[str, List[object]]:
    """Runtime parameters that differ, as ``{name: [old, new]}``."""
    return {
        name: [old.get(name), new.get(name)]
        for name in RUNTIME_PARAMETERS
        if old.get(name) != new.get(name)
    }


class SparseAdaptController:
    """Epoch-granular feedback controller driving the machine model."""

    def __init__(
        self,
        model: SparseAdaptModel,
        machine: TransmuterModel,
        mode: OptimizationMode,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        telemetry_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        if telemetry_noise < 0:
            raise ConfigError("telemetry_noise must be non-negative")
        self.model = model
        self.machine = machine
        self.mode = mode
        self.policy = policy or HybridPolicy()
        self.telemetry_noise = telemetry_noise
        self.noise_seed = noise_seed
        self._noise_rng = np.random.default_rng(noise_seed)
        if initial_config is None:
            initial_config = HardwareConfig(l1_type=model.l1_type)
        if initial_config.l1_type != model.l1_type:
            raise ConfigError(
                "initial configuration and model disagree on the L1 type"
            )
        self.initial_config = initial_config

    # ------------------------------------------------------------------
    @property
    def bandwidth_gbps(self) -> float:
        return self.machine.memory.bandwidth_bytes_per_s / 1e9

    def run(self, trace: KernelTrace) -> ScheduleResult:
        """Execute a kernel trace under closed-loop control."""
        schedule = ScheduleResult(scheme="sparseadapt")
        config = self.initial_config
        pending_reconfig = None
        last_epoch_time = 0.0
        overhead = host_decision_overhead_s()
        recorder = obs.get_recorder()
        traced = recorder.enabled
        if traced:
            recorder.event(
                "controller.start",
                scheme="sparseadapt",
                trace=trace.name,
                n_epochs=trace.n_epochs,
                mode=self.mode.value,
                policy=self.policy.name,
                telemetry_noise=self.telemetry_noise,
                noise_seed=self.noise_seed,
                bandwidth_gbps=self.bandwidth_gbps,
                initial_config=config_dict(config),
            )
            epoch_counter = obs.metrics.counter(
                "controller.epochs", "epochs executed under control"
            )
            reconfig_counter = obs.metrics.counter(
                "controller.reconfigs", "applied configuration transitions"
            )
            reconfig_by_param = obs.metrics.counter(
                "controller.reconfigs_by_parameter",
                "applied parameter changes",
            )
            latency_histogram = obs.metrics.histogram(
                "epoch.decision_latency_s",
                "host wall time of one telemetry->decision cycle",
            )
            verdict_counter = obs.metrics.counter(
                "controller.policy_verdicts",
                "hysteresis policy accept/reject outcomes",
            )
        for index, workload in enumerate(trace.epochs):
            with recorder.span(
                "epoch", epoch=index, phase=workload.phase
            ) as span:
                result = self.machine.simulate_epoch(workload, config)
                schedule.append(
                    EpochRecord(
                        index=index,
                        config=config,
                        result=result,
                        reconfig=pending_reconfig,
                    )
                )
                if traced:
                    span.set(
                        config=config.describe(),
                        config_values=config_dict(config),
                        time_s=result.time_s,
                        energy_j=result.energy_j,
                        gflops=result.gflops,
                        reconfig_time_s=(
                            pending_reconfig.time_s if pending_reconfig else 0.0
                        ),
                    )
                    epoch_counter.inc()
                last_epoch_time = result.time_s
                dirty_hint = workload.stores * params.WORD_BYTES
                # Telemetry -> inference -> policy -> reconfiguration.
                if traced:
                    t0 = perf_counter()
                counters = self._observe(result.counters)
                if traced:
                    t1 = perf_counter()
                    predicted, provenance = self.model.predict_with_provenance(
                        counters, config
                    )
                    t2 = perf_counter()
                    applied, verdicts = self.policy.filter_with_verdicts(
                        current=config,
                        predicted=predicted,
                        last_epoch_time_s=last_epoch_time,
                        power=self.machine.power,
                        bandwidth_gbps=self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                    t3 = perf_counter()
                else:
                    predicted = self.model.predict(counters, config)
                    applied = self.policy.filter(
                        current=config,
                        predicted=predicted,
                        last_epoch_time_s=last_epoch_time,
                        power=self.machine.power,
                        bandwidth_gbps=self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                pending_reconfig = reconfiguration_cost(
                    config,
                    applied,
                    self.machine.power,
                    self.bandwidth_gbps,
                    dirty_bytes_hint=dirty_hint,
                )
                if pending_reconfig.is_free:
                    pending_reconfig = None
                if traced:
                    t4 = perf_counter()
                    latency = t4 - t0
                    proposed = config_diff(config, predicted)
                    accepted = config_diff(config, applied)
                    recorder.event(
                        "decision",
                        epoch=index,
                        latency_s=latency,
                        counter_read_s=t1 - t0,
                        inference_s=t2 - t1,
                        policy_filter_s=t3 - t2,
                        cost_model_s=t4 - t3,
                        proposed=proposed,
                        accepted=accepted,
                        rejected=sorted(set(proposed) - set(accepted)),
                    )
                    latency_histogram.observe(latency)
                    raw_counters = result.counters.as_dict()
                    observed_counters = (
                        counters.as_dict()
                        if self.telemetry_noise > 0.0
                        else raw_counters
                    )
                    verdict_by_param = {v.parameter: v for v in verdicts}
                    for parameter, record in provenance.items():
                        verdict = verdict_by_param.get(parameter)
                        recorder.event(
                            "provenance",
                            epoch=index,
                            parameter=parameter,
                            current=record["current"],
                            predicted=record["predicted"],
                            kind=record["kind"],
                            margin=record["margin"],
                            depth=record["depth"],
                            path=record["path"],
                            leaf=record["leaf"],
                            counters_raw=raw_counters,
                            counters_observed=observed_counters,
                            verdict=(
                                verdict.as_dict() if verdict else None
                            ),
                        )
                    for verdict in verdicts:
                        verdict_counter.labels(
                            parameter=verdict.parameter,
                            verdict=(
                                "accepted" if verdict.accepted else "rejected"
                            ),
                            reason=verdict.code,
                        ).inc()
                    if pending_reconfig is not None:
                        recorder.event(
                            "reconfig",
                            epoch=index,
                            applies_to=index + 1,
                            from_config=config_dict(config),
                            to_config=config_dict(applied),
                            changed=list(pending_reconfig.changed),
                            cost_time_s=pending_reconfig.time_s,
                            cost_energy_j=pending_reconfig.energy_j,
                            flushed_l1=pending_reconfig.flushed_l1,
                            flushed_l2=pending_reconfig.flushed_l2,
                        )
                        reconfig_counter.inc()
                        for parameter in pending_reconfig.changed:
                            reconfig_by_param.labels(parameter=parameter).inc()
                config = applied
                schedule.overhead_time_s += overhead
                schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
        return schedule

    # ------------------------------------------------------------------
    def _observe(self, counters):
        """Telemetry as the host sees it (optionally noisy)."""
        if self.telemetry_noise <= 0.0:
            return counters
        values = counters.as_dict()
        noisy = {}
        for name, value in values.items():
            if name in ("clock_mhz", "l1_capacity_kb", "l2_capacity_kb"):
                noisy[name] = value  # configuration echoes are exact
                continue
            factor = 1.0 + self._noise_rng.normal(0.0, self.telemetry_noise)
            noisy[name] = max(0.0, value * factor)
        from repro.transmuter.counters import PerformanceCounters

        return PerformanceCounters(**noisy)
