"""The SparseAdapt runtime controller (paper Figure 3a).

At the end of every epoch the controller (i) collects the hardware
telemetry, (ii) runs the predictive-model ensemble to get the proposed
configuration for the next epoch, (iii) filters the proposal through
the reconfiguration cost-aware policy, and (iv) applies the surviving
changes, charging the transition cost to the next epoch. The host-side
telemetry/decision latency (50-100 host cycles, Section 3.4) is
accounted once per epoch.

**Fault injection and hardening.** ``faults`` accepts a
:class:`~repro.faults.FaultSchedule` describing deterministic, seeded
fault injection: corrupted counters, silently dropped or partially
applied reconfigurations, and transient machine events (HBM bandwidth
throttling, thermal DVFS clamps). Under faults the controller tracks
two configurations — the *hardware* configuration the machine actually
runs (which drives the simulation and the energy/time accounting) and
the *host* configuration the controller believes it set (which drives
inference and the policy filter). An unhardened controller lets the
two silently diverge when a reconfiguration is dropped; a hardened one
(``hardening``, on by default whenever ``faults`` is passed) sanitizes
counters against plausibility bounds with last-known-good
substitution, verifies reconfigurations by echo read-back with
bounded retries, and degrades to a static safe configuration
(``safe_config``, defaulting to the initial configuration) after a
streak of faulty epochs, probing its way back once telemetry is clean.
Fault-free runs are byte-identical to a controller without any of this
machinery: every fault/hardening step is gated behind the injector and
the hardening flag.

``telemetry_noise``/``noise_seed`` are deprecated: they are a shim
over a single rate-1.0 ``counter_noise`` fault spec seeded with
``noise_seed``, reproducing the historical noise stream bit-exactly
(see :func:`repro.faults.noise_schedule`).

When a trace recorder is installed (``repro.obs.recording``), the
controller emits one ``epoch`` span per executed epoch plus a
``decision`` event carrying the per-stage host latency and the
proposed-vs-accepted configuration diff, a ``reconfig`` event per
applied transition, and one ``provenance`` event per (epoch, runtime
parameter) carrying the decision-tree path that produced the proposal
(feature, threshold, direction per node, vote margin), the raw and
observed counter values the model read, and the policy's
accept/reject verdict with its cost-vs-budget numbers. Fault runs
additionally emit ``fault.injected``, ``fault.detected``,
``machine.degraded``, ``controller.readback`` and
``controller.safe_mode`` events. With tracing disabled all
instrumentation is skipped behind a single flag check, so the modeled
numbers and the runtime cost are identical to an uninstrumented run:
the traced path calls ``model.predict_with_provenance`` /
``policy.filter_with_verdicts``, which share the decision code with
the untraced ``predict`` / ``filter`` calls and therefore cannot
change any decision.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Dict, List, Optional

from repro import obs
from repro.core.hardening import (
    CounterSanitizer,
    HardeningConfig,
    SafeModeMachine,
)
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.core.policies import HybridPolicy, ReconfigurationPolicy
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSchedule, noise_schedule
from repro.kernels.base import KernelTrace
from repro.transmuter import params
from repro.transmuter.config import RUNTIME_PARAMETERS, HardwareConfig
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    ReconfigCost,
    apply_transition,
    host_decision_overhead_s,
    reconfiguration_cost,
)

__all__ = ["SparseAdaptController", "config_dict", "config_diff"]

#: Host power attributed to the decision process, watts. The paper
#: notes telemetry/streaming happens "in the shadow of the workload"
#: (Section 3.3); only the incremental decision energy is charged.
_HOST_DECISION_POWER_W = 0.05


def config_dict(config: HardwareConfig) -> Dict[str, object]:
    """A configuration as a flat, JSON-friendly dict (trace payloads)."""
    out: Dict[str, object] = {"l1_type": config.l1_type}
    for name in RUNTIME_PARAMETERS:
        out[name] = config.get(name)
    return out


def config_diff(
    old: HardwareConfig, new: HardwareConfig
) -> Dict[str, List[object]]:
    """Runtime parameters that differ, as ``{name: [old, new]}``."""
    return {
        name: [old.get(name), new.get(name)]
        for name in RUNTIME_PARAMETERS
        if old.get(name) != new.get(name)
    }


class SparseAdaptController:
    """Epoch-granular feedback controller driving the machine model."""

    def __init__(
        self,
        model: SparseAdaptModel,
        machine: TransmuterModel,
        mode: OptimizationMode,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        telemetry_noise: float = 0.0,
        noise_seed: int = 0,
        faults: Optional[FaultSchedule] = None,
        hardening: Optional[HardeningConfig] = None,
        safe_config: Optional[HardwareConfig] = None,
    ) -> None:
        if telemetry_noise < 0:
            raise ConfigError("telemetry_noise must be non-negative")
        legacy_noise = telemetry_noise > 0.0
        if legacy_noise:
            if faults is not None:
                raise ConfigError(
                    "telemetry_noise cannot be combined with faults=; "
                    "add a counter_noise spec to the schedule instead"
                )
            warnings.warn(
                "telemetry_noise/noise_seed are deprecated; pass "
                "faults=repro.faults.noise_schedule(sigma, seed) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            faults = noise_schedule(telemetry_noise, noise_seed)
        self.model = model
        self.machine = machine
        self.mode = mode
        self.policy = policy or HybridPolicy()
        self.telemetry_noise = telemetry_noise
        self.noise_seed = noise_seed
        self.faults = faults
        # Legacy-shim runs must record byte-identical traces: no fault
        # keys in controller.start, no fault.injected events.
        self._legacy_noise = legacy_noise
        # The injector lives on the controller (not in run()) so its
        # RNG streams persist across runs — exactly like the historical
        # noise RNG it replaces.
        self._injector = FaultInjector(faults) if faults is not None else None
        if hardening is None:
            # Hardening is opt-out for explicit fault schedules but must
            # stay off for the legacy noise shim, whose behaviour
            # (including bit-exact traces) predates the hardened path.
            hardening = (
                HardeningConfig()
                if faults is not None and not legacy_noise
                else HardeningConfig.disabled()
            )
        self.hardening = hardening
        if initial_config is None:
            initial_config = HardwareConfig(l1_type=model.l1_type)
        if initial_config.l1_type != model.l1_type:
            raise ConfigError(
                "initial configuration and model disagree on the L1 type"
            )
        self.initial_config = initial_config
        if safe_config is None:
            safe_config = initial_config
        if safe_config.l1_type != model.l1_type:
            raise ConfigError(
                "safe configuration and model disagree on the L1 type"
            )
        self.safe_config = safe_config
        #: Robustness statistics of the most recent :meth:`run` call
        #: (``None`` before the first run). Purely observational.
        self.last_run_stats: Optional[Dict[str, object]] = None
        # (config, counters) -> predicted config. model.predict is a
        # pure function of its two (hashable, frozen) arguments, so the
        # bucket is the exact key — memoized decisions are bit-identical
        # by construction. Invalidated when model/policy are swapped.
        self._decision_memo: Dict[tuple, HardwareConfig] = {}
        self._memo_token: Optional[tuple] = None

    # ------------------------------------------------------------------
    def invalidate_memo(self) -> None:
        """Drop memoized decisions (call after mutating model/policy
        in place; swapping the objects invalidates automatically)."""
        self._decision_memo.clear()
        self._memo_token = None

    def _check_memo_token(self) -> None:
        """Invalidate the decision memo if model or policy changed."""
        token = (id(self.model), id(self.policy))
        if token != self._memo_token:
            self._decision_memo.clear()
            self._memo_token = token

    # ------------------------------------------------------------------
    @property
    def bandwidth_gbps(self) -> float:
        return self.machine.memory.bandwidth_bytes_per_s / 1e9

    def run(self, trace: KernelTrace) -> ScheduleResult:
        """Execute a kernel trace under closed-loop control."""
        schedule = ScheduleResult(scheme="sparseadapt")
        injector = self._injector
        hardened = self.hardening.enabled
        clean = injector is None and not hardened
        emit_faults = injector is not None and not self._legacy_noise
        sanitizer = CounterSanitizer(self.hardening) if hardened else None
        safe_machine = SafeModeMachine(self.hardening) if hardened else None
        # Hardware truth vs. host belief; they only diverge when an
        # unhardened controller suffers a silent reconfiguration fault.
        config = self.initial_config  # host belief
        hw_config = self.initial_config  # hardware truth
        pending_reconfig = None
        carry_readback = False
        faults_start = injector.n_injected if injector is not None else 0
        n_detected = 0
        n_readback = 0
        last_epoch_time = 0.0
        overhead = host_decision_overhead_s()
        recorder = obs.get_recorder()
        traced = recorder.enabled
        from repro import fastpath

        memo: Optional[Dict[tuple, HardwareConfig]] = None
        if fastpath.enabled() and not traced:
            self._check_memo_token()
            memo = self._decision_memo
            memo_hits = obs.metrics.counter(
                "fastpath.memo_hits", "controller decision-memo hits"
            )
            memo_misses = obs.metrics.counter(
                "fastpath.memo_misses", "controller decision-memo misses"
            )
        if traced:
            start_payload: Dict[str, object] = dict(
                scheme="sparseadapt",
                trace=trace.name,
                n_epochs=trace.n_epochs,
                mode=self.mode.value,
                policy=self.policy.name,
                telemetry_noise=self.telemetry_noise,
                noise_seed=self.noise_seed,
                bandwidth_gbps=self.bandwidth_gbps,
                initial_config=config_dict(config),
            )
            if emit_faults:
                start_payload["fault_seed"] = self.faults.seed
                start_payload["fault_kinds"] = sorted(self.faults.kinds())
                start_payload["n_fault_specs"] = len(self.faults)
            if hardened:
                start_payload["hardening"] = dict(
                    fault_streak_threshold=self.hardening.fault_streak_threshold,
                    recovery_epochs=self.hardening.recovery_epochs,
                    readback_retries=self.hardening.readback_retries,
                    stale_detection=self.hardening.stale_detection,
                )
                start_payload["safe_config"] = config_dict(self.safe_config)
            recorder.event("controller.start", **start_payload)
            epoch_counter = obs.metrics.counter(
                "controller.epochs", "epochs executed under control"
            )
            reconfig_counter = obs.metrics.counter(
                "controller.reconfigs", "applied configuration transitions"
            )
            reconfig_by_param = obs.metrics.counter(
                "controller.reconfigs_by_parameter",
                "applied parameter changes",
            )
            latency_histogram = obs.metrics.histogram(
                "epoch.decision_latency_s",
                "host wall time of one telemetry->decision cycle",
            )
            verdict_counter = obs.metrics.counter(
                "controller.policy_verdicts",
                "hysteresis policy accept/reject outcomes",
            )
            if emit_faults:
                injected_counter = obs.metrics.counter(
                    "faults.injected", "fault occurrences injected"
                )
            if hardened:
                detected_counter = obs.metrics.counter(
                    "controller.faults_detected",
                    "telemetry issues flagged by the counter sanitizer",
                )
                safe_mode_counter = obs.metrics.counter(
                    "controller.safe_mode_transitions",
                    "safe-mode state machine transitions",
                )
                readback_counter = obs.metrics.counter(
                    "controller.readback_retries",
                    "reconfiguration command retries after read-back",
                )
        for index, workload in enumerate(trace.epochs):
            with recorder.span(
                "epoch", epoch=index, phase=workload.phase
            ) as span:
                environment = None
                epoch_faults_start = 0
                if injector is not None:
                    epoch_faults_start = injector.n_injected
                    environment = injector.environment(index)
                if environment is None:
                    result = self.machine.simulate_epoch(workload, hw_config)
                else:
                    result = self.machine.simulate_epoch(
                        workload, hw_config, environment=environment
                    )
                    if traced:
                        recorder.event(
                            "machine.degraded",
                            epoch=index,
                            bandwidth_scale=environment.bandwidth_scale,
                            clock_cap_mhz=environment.clock_cap_mhz,
                        )
                schedule.append(
                    EpochRecord(
                        index=index,
                        config=hw_config,
                        result=result,
                        reconfig=pending_reconfig,
                    )
                )
                if traced:
                    span.set(
                        config=hw_config.describe(),
                        config_values=config_dict(hw_config),
                        time_s=result.time_s,
                        energy_j=result.energy_j,
                        gflops=result.gflops,
                        reconfig_time_s=(
                            pending_reconfig.time_s if pending_reconfig else 0.0
                        ),
                    )
                    epoch_counter.inc()
                last_epoch_time = result.time_s
                dirty_hint = workload.stores * params.WORD_BYTES
                # Telemetry -> inference -> policy -> reconfiguration.
                if traced:
                    t0 = perf_counter()
                if injector is not None:
                    observed, _ = injector.observe(index, result.counters)
                else:
                    observed = result.counters
                if sanitizer is not None:
                    counters, issues = sanitizer.sanitize(observed, config)
                else:
                    counters, issues = observed, []
                # Only *severe* epochs feed the safe-mode streak: a
                # failed read-back (the hardware is not where the host
                # put it) or telemetry so corrupt that substitution
                # rewrote much of it. Lightly damaged epochs — a couple
                # of implausible counters, a stale-but-plausible vector
                # — are repaired or tolerated and adapted on; degrading
                # to the static config for them would shed adaptive
                # gain without buying protection.
                n_substituted = sum(
                    1 for issue in issues if "substitute" in issue
                )
                faulty = (
                    carry_readback
                    or n_substituted >= self.hardening.severe_issue_count
                )
                carry_readback = False
                if issues:
                    n_detected += len(issues)
                    if traced:
                        for issue in issues:
                            recorder.event(
                                "fault.detected", epoch=index, **issue
                            )
                            detected_counter.labels(
                                issue=issue["issue"]
                            ).inc()
                adapting = True
                if safe_machine is not None:
                    transition_name = safe_machine.observe(faulty)
                    if transition_name is not None and traced:
                        recorder.event(
                            "controller.safe_mode",
                            epoch=index,
                            transition=transition_name,
                            state=safe_machine.state,
                            fault_streak=safe_machine.fault_streak,
                            clean_streak=safe_machine.clean_streak,
                        )
                        safe_mode_counter.labels(
                            transition=transition_name
                        ).inc()
                    adapting = safe_machine.adapting
                if not adapting:
                    # Safe mode: no inference, hold the safe config.
                    predicted = self.safe_config
                    applied = self.safe_config
                elif traced:
                    t1 = perf_counter()
                    predicted, provenance = self.model.predict_with_provenance(
                        counters, config
                    )
                    t2 = perf_counter()
                    applied, verdicts = self.policy.filter_with_verdicts(
                        current=config,
                        predicted=predicted,
                        last_epoch_time_s=last_epoch_time,
                        power=self.machine.power,
                        bandwidth_gbps=self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                    t3 = perf_counter()
                elif memo is not None:
                    memo_key = (config, counters)
                    predicted = memo.get(memo_key)
                    if predicted is None:
                        predicted = self.model.predict(counters, config)
                        memo[memo_key] = predicted
                        memo_misses.inc()
                    else:
                        memo_hits.inc()
                    # The policy filter is NOT memoized: its verdicts
                    # depend on last_epoch_time/dirty_hint, which vary
                    # epoch to epoch.
                    applied = self.policy.filter(
                        current=config,
                        predicted=predicted,
                        last_epoch_time_s=last_epoch_time,
                        power=self.machine.power,
                        bandwidth_gbps=self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                else:
                    predicted = self.model.predict(counters, config)
                    applied = self.policy.filter(
                        current=config,
                        predicted=predicted,
                        last_epoch_time_s=last_epoch_time,
                        power=self.machine.power,
                        bandwidth_gbps=self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                if clean:
                    pending_reconfig = reconfiguration_cost(
                        config,
                        applied,
                        self.machine.power,
                        self.bandwidth_gbps,
                        dirty_bytes_hint=dirty_hint,
                    )
                    if pending_reconfig.is_free:
                        pending_reconfig = None
                    next_hw = applied
                    next_host = applied
                else:
                    pending_reconfig, next_hw, retries = self._command(
                        index, hw_config, applied, dirty_hint, injector
                    )
                    n_readback += retries
                    if traced and retries:
                        readback_counter.inc(retries)
                    if hardened:
                        # Echo read-back: the host's belief is corrected
                        # to what the hardware actually reached; an
                        # incomplete transition flags the next epoch.
                        next_host = next_hw
                        if next_hw != applied:
                            carry_readback = True
                        if traced and (retries or next_hw != applied):
                            recorder.event(
                                "controller.readback",
                                epoch=index,
                                attempts=retries + 1,
                                recovered=next_hw == applied,
                                requested=config_dict(applied),
                                actual=config_dict(next_hw),
                            )
                    else:
                        # Unhardened: the host believes the command
                        # landed, even when it silently did not.
                        next_host = applied
                if traced and adapting:
                    t4 = perf_counter()
                    latency = t4 - t0
                    proposed = config_diff(config, predicted)
                    accepted = config_diff(config, applied)
                    recorder.event(
                        "decision",
                        epoch=index,
                        latency_s=latency,
                        counter_read_s=t1 - t0,
                        inference_s=t2 - t1,
                        policy_filter_s=t3 - t2,
                        cost_model_s=t4 - t3,
                        proposed=proposed,
                        accepted=accepted,
                        rejected=sorted(set(proposed) - set(accepted)),
                    )
                    latency_histogram.observe(latency)
                    raw_counters = result.counters.as_dict()
                    observed_counters = (
                        counters.as_dict() if not clean else raw_counters
                    )
                    verdict_by_param = {v.parameter: v for v in verdicts}
                    for parameter, record in provenance.items():
                        verdict = verdict_by_param.get(parameter)
                        recorder.event(
                            "provenance",
                            epoch=index,
                            parameter=parameter,
                            current=record["current"],
                            predicted=record["predicted"],
                            kind=record["kind"],
                            margin=record["margin"],
                            depth=record["depth"],
                            path=record["path"],
                            leaf=record["leaf"],
                            counters_raw=raw_counters,
                            counters_observed=observed_counters,
                            verdict=(
                                verdict.as_dict() if verdict else None
                            ),
                        )
                    for verdict in verdicts:
                        verdict_counter.labels(
                            parameter=verdict.parameter,
                            verdict=(
                                "accepted" if verdict.accepted else "rejected"
                            ),
                            reason=verdict.code,
                        ).inc()
                if traced and pending_reconfig is not None:
                    recorder.event(
                        "reconfig",
                        epoch=index,
                        applies_to=index + 1,
                        from_config=config_dict(hw_config),
                        to_config=config_dict(next_hw),
                        changed=list(pending_reconfig.changed),
                        cost_time_s=pending_reconfig.time_s,
                        cost_energy_j=pending_reconfig.energy_j,
                        flushed_l1=pending_reconfig.flushed_l1,
                        flushed_l2=pending_reconfig.flushed_l2,
                    )
                    reconfig_counter.inc()
                    for parameter in pending_reconfig.changed:
                        reconfig_by_param.labels(parameter=parameter).inc()
                if traced and emit_faults:
                    for fault in injector.injected[epoch_faults_start:]:
                        recorder.event("fault.injected", **fault.as_dict())
                        injected_counter.labels(kind=fault.kind).inc()
                config = next_host
                hw_config = next_hw
                schedule.overhead_time_s += overhead
                schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
        self.last_run_stats = self._collect_stats(
            injector, faults_start, sanitizer, safe_machine,
            n_detected, n_readback,
        )
        return schedule

    # ------------------------------------------------------------------
    def _command(
        self,
        epoch: int,
        hw_config: HardwareConfig,
        target: HardwareConfig,
        dirty_hint: float,
        injector: Optional[FaultInjector],
    ):
        """Command ``hw_config -> target`` under possible reconfig faults.

        Returns ``(cost, reached_config, retries)``: the accumulated
        transition cost over all attempts (``None`` if free), the
        configuration the hardware ended up in, and the number of
        read-back retries spent. A hardened controller retries up to
        ``readback_retries`` times; an unhardened one commands once and
        never looks back.
        """
        hardened = self.hardening.enabled
        current = hw_config
        attempt = 0
        retries = 0
        time_s = 0.0
        energy_j = 0.0
        flushed_l1 = False
        flushed_l2 = False
        changed: List[str] = []
        while True:
            drops = (
                injector.reconfig_failures(epoch, current, target, attempt)
                if injector is not None
                else ()
            )
            outcome = apply_transition(
                current,
                target,
                self.machine.power,
                self.bandwidth_gbps,
                dirty_bytes_hint=dirty_hint,
                drop_parameters=drops,
            )
            time_s += outcome.cost.time_s
            energy_j += outcome.cost.energy_j
            flushed_l1 = flushed_l1 or outcome.cost.flushed_l1
            flushed_l2 = flushed_l2 or outcome.cost.flushed_l2
            changed += [
                name for name in outcome.cost.changed if name not in changed
            ]
            current = outcome.actual
            if (
                outcome.complete
                or not hardened
                or attempt >= self.hardening.readback_retries
            ):
                break
            attempt += 1
            retries += 1
        if not changed:
            return None, current, retries
        cost = ReconfigCost(
            time_s=time_s,
            energy_j=energy_j,
            flushed_l1=flushed_l1,
            flushed_l2=flushed_l2,
            changed=tuple(
                name for name in RUNTIME_PARAMETERS if name in changed
            ),
        )
        return cost, current, retries

    @staticmethod
    def _collect_stats(
        injector, faults_start, sanitizer, safe_machine,
        n_detected, n_readback,
    ) -> Dict[str, object]:
        """Robustness statistics of the run that just finished."""
        injected: Dict[str, int] = {}
        if injector is not None:
            for fault in injector.injected[faults_start:]:
                injected[fault.kind] = injected.get(fault.kind, 0) + 1
        return {
            "faults_injected": injected,
            "n_faults_injected": sum(injected.values()),
            "n_faults_detected": n_detected,
            "counters_substituted": (
                sanitizer.n_substituted if sanitizer is not None else 0
            ),
            "readback_retries": n_readback,
            "safe_mode_entries": (
                safe_machine.entries if safe_machine is not None else 0
            ),
            "safe_epochs": (
                safe_machine.safe_epochs if safe_machine is not None else 0
            ),
        }
