"""The SparseAdapt runtime controller (paper Figure 3a).

At the end of every epoch the controller (i) collects the hardware
telemetry, (ii) runs the predictive-model ensemble to get the proposed
configuration for the next epoch, (iii) filters the proposal through
the reconfiguration cost-aware policy, and (iv) applies the surviving
changes, charging the transition cost to the next epoch. The host-side
telemetry/decision latency (50-100 host cycles, Section 3.4) is
accounted once per epoch.

``telemetry_noise`` injects multiplicative Gaussian noise into the
counters before inference — a robustness study for real hardware whose
saturating counters and sampling windows are never exact. The trees
were trained on clean telemetry, so this measures how gracefully the
deployed controller degrades.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Optional

import numpy as np

from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.core.policies import HybridPolicy, ReconfigurationPolicy
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.kernels.base import KernelTrace
from repro.transmuter import params
from repro.transmuter.config import HardwareConfig
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    host_decision_overhead_s,
    reconfiguration_cost,
)

__all__ = ["SparseAdaptController"]

#: Host power attributed to the decision process, watts. The paper
#: notes telemetry/streaming happens "in the shadow of the workload"
#: (Section 3.3); only the incremental decision energy is charged.
_HOST_DECISION_POWER_W = 0.05


class SparseAdaptController:
    """Epoch-granular feedback controller driving the machine model."""

    def __init__(
        self,
        model: SparseAdaptModel,
        machine: TransmuterModel,
        mode: OptimizationMode,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        telemetry_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        if telemetry_noise < 0:
            raise ConfigError("telemetry_noise must be non-negative")
        self.model = model
        self.machine = machine
        self.mode = mode
        self.policy = policy or HybridPolicy()
        self.telemetry_noise = telemetry_noise
        self._noise_rng = np.random.default_rng(noise_seed)
        if initial_config is None:
            initial_config = HardwareConfig(l1_type=model.l1_type)
        if initial_config.l1_type != model.l1_type:
            raise ConfigError(
                "initial configuration and model disagree on the L1 type"
            )
        self.initial_config = initial_config

    # ------------------------------------------------------------------
    @property
    def bandwidth_gbps(self) -> float:
        return self.machine.memory.bandwidth_bytes_per_s / 1e9

    def run(self, trace: KernelTrace) -> ScheduleResult:
        """Execute a kernel trace under closed-loop control."""
        schedule = ScheduleResult(scheme="sparseadapt")
        config = self.initial_config
        pending_reconfig = None
        last_epoch_time = 0.0
        overhead = host_decision_overhead_s()
        for index, workload in enumerate(trace.epochs):
            result = self.machine.simulate_epoch(workload, config)
            schedule.append(
                EpochRecord(
                    index=index,
                    config=config,
                    result=result,
                    reconfig=pending_reconfig,
                )
            )
            last_epoch_time = result.time_s
            dirty_hint = workload.stores * params.WORD_BYTES
            # Telemetry -> inference -> policy -> reconfiguration.
            counters = self._observe(result.counters)
            predicted = self.model.predict(counters, config)
            applied = self.policy.filter(
                current=config,
                predicted=predicted,
                last_epoch_time_s=last_epoch_time,
                power=self.machine.power,
                bandwidth_gbps=self.bandwidth_gbps,
                dirty_bytes_hint=dirty_hint,
            )
            pending_reconfig = reconfiguration_cost(
                config,
                applied,
                self.machine.power,
                self.bandwidth_gbps,
                dirty_bytes_hint=dirty_hint,
            )
            if pending_reconfig.is_free:
                pending_reconfig = None
            config = applied
            schedule.overhead_time_s += overhead
            schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
        return schedule

    # ------------------------------------------------------------------
    def _observe(self, counters):
        """Telemetry as the host sees it (optionally noisy)."""
        if self.telemetry_noise <= 0.0:
            return counters
        values = counters.as_dict()
        noisy = {}
        for name, value in values.items():
            if name in ("clock_mhz", "l1_capacity_kb", "l2_capacity_kb"):
                noisy[name] = value  # configuration echoes are exact
                continue
            factor = 1.0 + self._noise_rng.normal(0.0, self.telemetry_noise)
            noisy[name] = max(0.0, value * factor)
        from repro.transmuter.counters import PerformanceCounters

        return PerformanceCounters(**noisy)
