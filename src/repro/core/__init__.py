"""SparseAdapt core: modes, telemetry, training, model, policies, runtime.

Public API::

    from repro.core import (
        OptimizationMode, SparseAdaptModel, SparseAdaptController,
        TransmuterRuntime, HybridPolicy, train_default_model,
    )
"""

from repro.core.controller import SparseAdaptController
from repro.core.hardening import (
    CounterSanitizer,
    HardeningConfig,
    SafeModeMachine,
)
from repro.core.ablation import (
    AblatedSparseAdaptModel,
    train_counters_only_model,
)
from repro.core.history import HistoryAwareController, quantize_signature
from repro.core.memorymode import (
    MemoryModeController,
    MemoryModeModel,
    train_memory_mode_model,
)
from repro.core.persistence import (
    load_memory_mode_model,
    load_model,
    model_from_dict,
    model_to_dict,
    save_memory_mode_model,
    save_model,
)
from repro.core.dataset import (
    PhaseSample,
    TrainingSet,
    build_training_set,
    find_best_config,
    representative_epochs,
    table3_phases,
)
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode, cost_value, metric_value
from repro.core.policies import (
    AggressivePolicy,
    ConservativePolicy,
    HybridPolicy,
    PolicyVerdict,
    ReconfigurationPolicy,
    policy_from_name,
)
from repro.core.runtime import OffloadOutcome, TransmuterRuntime
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.core.telemetry import build_features, feature_groups, feature_names
from repro.core.training import (
    DEFAULT_PARAM_GRID,
    QUICK_PARAM_GRID,
    clear_model_cache,
    train_default_model,
    train_model,
)

__all__ = [
    "OptimizationMode",
    "HistoryAwareController",
    "quantize_signature",
    "MemoryModeModel",
    "MemoryModeController",
    "train_memory_mode_model",
    "AblatedSparseAdaptModel",
    "train_counters_only_model",
    "save_model",
    "load_model",
    "save_memory_mode_model",
    "load_memory_mode_model",
    "model_to_dict",
    "model_from_dict",
    "metric_value",
    "cost_value",
    "SparseAdaptModel",
    "SparseAdaptController",
    "HardeningConfig",
    "CounterSanitizer",
    "SafeModeMachine",
    "TransmuterRuntime",
    "OffloadOutcome",
    "ScheduleResult",
    "EpochRecord",
    "ReconfigurationPolicy",
    "AggressivePolicy",
    "ConservativePolicy",
    "HybridPolicy",
    "policy_from_name",
    "PolicyVerdict",
    "PhaseSample",
    "TrainingSet",
    "build_training_set",
    "find_best_config",
    "representative_epochs",
    "table3_phases",
    "train_model",
    "train_default_model",
    "clear_model_cache",
    "DEFAULT_PARAM_GRID",
    "QUICK_PARAM_GRID",
    "build_features",
    "feature_names",
    "feature_groups",
]
