"""Schedule result containers shared by SparseAdapt and all baselines.

A *schedule* is the sequence of configurations a scheme chose for the
trace's epochs, together with the predicted per-epoch results and any
reconfiguration costs paid at epoch boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.modes import OptimizationMode, metric_value
from repro.errors import SimulationError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.machine import EpochResult
from repro.transmuter.reconfig import ReconfigCost

__all__ = ["EpochRecord", "ScheduleResult"]


@dataclass(frozen=True)
class EpochRecord:
    """One executed epoch: the chosen configuration, the machine-model
    outcome, and the transition cost paid *before* the epoch ran."""

    index: int
    config: HardwareConfig
    result: EpochResult
    reconfig: Optional[ReconfigCost] = None

    @property
    def time_s(self) -> float:
        extra = self.reconfig.time_s if self.reconfig else 0.0
        return self.result.time_s + extra

    @property
    def energy_j(self) -> float:
        extra = self.reconfig.energy_j if self.reconfig else 0.0
        return self.result.energy_j + extra

    def as_dict(self) -> dict:
        """JSON-friendly view of one epoch (trace tooling, ``--json``)."""
        return {
            "epoch": self.index,
            "config": {
                "l1_type": self.config.l1_type,
                "l1_sharing": self.config.l1_sharing,
                "l2_sharing": self.config.l2_sharing,
                "l1_kb": self.config.l1_kb,
                "l2_kb": self.config.l2_kb,
                "clock_mhz": self.config.clock_mhz,
                "prefetch": self.config.prefetch,
            },
            "time_s": self.result.time_s,
            "energy_j": self.result.energy_j,
            "gflops": self.result.gflops,
            "reconfig_time_s": self.reconfig.time_s if self.reconfig else 0.0,
            "reconfig_energy_j": (
                self.reconfig.energy_j if self.reconfig else 0.0
            ),
            "changed": list(self.reconfig.changed) if self.reconfig else [],
        }


@dataclass
class ScheduleResult:
    """Aggregate outcome of running a whole trace under one scheme."""

    scheme: str
    records: List[EpochRecord] = field(default_factory=list)
    overhead_time_s: float = 0.0  # host telemetry/decision time
    overhead_energy_j: float = 0.0
    #: Controller fault/hardening counters for this run (attached by the
    #: harness when the scheme ran under fault injection; ``None`` for
    #: fault-free runs and table-driven schemes).
    fault_stats: Optional[dict] = None

    # ------------------------------------------------------------------
    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    @property
    def n_reconfigurations(self) -> int:
        return sum(
            1
            for record in self.records
            if record.reconfig is not None and record.reconfig.changed
        )

    @property
    def total_flops(self) -> float:
        return sum(record.result.flops for record in self.records)

    @property
    def total_time_s(self) -> float:
        return (
            sum(record.time_s for record in self.records)
            + self.overhead_time_s
        )

    @property
    def total_energy_j(self) -> float:
        return (
            sum(record.energy_j for record in self.records)
            + self.overhead_energy_j
        )

    # ------------------------------------------------------------------
    @property
    def gflops(self) -> float:
        return self.total_flops / max(self.total_time_s, 1e-15) / 1e9

    @property
    def gflops_per_watt(self) -> float:
        return self.total_flops / max(self.total_energy_j, 1e-18) / 1e9

    @property
    def average_power_w(self) -> float:
        return self.total_energy_j / max(self.total_time_s, 1e-15)

    def metric(self, mode: OptimizationMode) -> float:
        """The mode's figure of merit for the whole schedule."""
        if not self.records:
            raise SimulationError("empty schedule has no metric")
        return metric_value(
            mode, self.total_flops, self.total_time_s, self.total_energy_j
        )

    def config_sequence(self) -> List[HardwareConfig]:
        """Configuration chosen for each epoch, in order."""
        return [record.config for record in self.records]

    def energy_breakdown(self) -> dict:
        """Component energies aggregated across the schedule, joules.

        ``reconfiguration`` collects the transition costs;
        ``host_overhead`` the telemetry/decision energy.
        """
        totals = {
            "core_dynamic": 0.0,
            "l1_dynamic": 0.0,
            "l2_dynamic": 0.0,
            "xbar_dynamic": 0.0,
            "dram": 0.0,
            "leakage": 0.0,
            "reconfiguration": 0.0,
        }
        for record in self.records:
            breakdown = record.result.energy
            totals["core_dynamic"] += breakdown.core_dynamic
            totals["l1_dynamic"] += breakdown.l1_dynamic
            totals["l2_dynamic"] += breakdown.l2_dynamic
            totals["xbar_dynamic"] += breakdown.xbar_dynamic
            totals["dram"] += breakdown.dram
            totals["leakage"] += breakdown.leakage
            if record.reconfig is not None:
                totals["reconfiguration"] += record.reconfig.energy_j
        totals["host_overhead"] = self.overhead_energy_j
        return totals

    def summary(self) -> dict:
        """Loggable scalar summary."""
        return {
            "scheme": self.scheme,
            "epochs": self.n_epochs,
            "reconfigurations": self.n_reconfigurations,
            "time_ms": self.total_time_s * 1e3,
            "energy_mj": self.total_energy_j * 1e3,
            "gflops": self.gflops,
            "gflops_per_watt": self.gflops_per_watt,
        }

    def as_dict(self, include_epochs: bool = False) -> dict:
        """Machine-readable export (``repro run --json``, trace tooling).

        The scalar totals always appear; ``include_epochs`` adds the
        full per-epoch timeline via :meth:`EpochRecord.as_dict`.
        """
        out = self.summary()
        out["overhead_time_s"] = self.overhead_time_s
        out["overhead_energy_j"] = self.overhead_energy_j
        out["energy_breakdown_j"] = self.energy_breakdown()
        if include_epochs:
            out["records"] = [record.as_dict() for record in self.records]
        return out
