"""Training pipeline for the SparseAdapt predictive model.

Trains one :class:`~repro.ml.decision_tree.DecisionTreeClassifier` per
runtime parameter, sweeping ``criterion``, ``max_depth``, and
``min_samples_leaf`` with 3-fold cross-validation (paper Section 5.1).
A process-wide cache keyed by the training recipe keeps benchmark and
example code from retraining identical models.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import TrainingSet, build_training_set, table3_phases
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.errors import ModelError
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.model_selection import GridSearchCV, KFold

__all__ = [
    "DEFAULT_PARAM_GRID",
    "QUICK_PARAM_GRID",
    "train_model",
    "train_default_model",
    "clear_model_cache",
]

#: Paper hyperparameter sweep (Section 5.1), trimmed to tractable sizes.
DEFAULT_PARAM_GRID: Dict[str, Sequence] = {
    "criterion": ("gini", "entropy"),
    "max_depth": (6, 10, 14),
    "min_samples_leaf": (1, 5, 20),
}

#: Fast grid for tests and examples.
QUICK_PARAM_GRID: Dict[str, Sequence] = {
    "criterion": ("gini",),
    "max_depth": (10,),
    "min_samples_leaf": (5,),
}

_MODEL_CACHE: Dict[tuple, SparseAdaptModel] = {}


def train_model(
    training_set: TrainingSet,
    l1_type: str = "cache",
    param_grid: Optional[Dict[str, Sequence]] = None,
    n_folds: int = 3,
    seed: int = 0,
) -> SparseAdaptModel:
    """Fit the per-parameter tree ensemble on a training set."""
    if training_set.n_examples < n_folds:
        raise ModelError("training set smaller than the number of folds")
    param_grid = param_grid or DEFAULT_PARAM_GRID
    trees: Dict[str, object] = {}
    chosen: Dict[str, dict] = {}
    parameters = list(training_set.labels)
    if l1_type == "spm":
        parameters = [p for p in parameters if p != "l1_kb"]
    for name in parameters:
        labels = training_set.labels[name]
        if np.unique(labels).size == 1:
            # Degenerate phase mix: a single-leaf tree is still valid.
            tree = DecisionTreeClassifier(max_depth=1, random_state=seed)
            tree.fit(training_set.features, labels)
            trees[name] = tree
            chosen[name] = {"constant": True}
            continue
        single_candidate = all(len(v) == 1 for v in param_grid.values())
        if single_candidate:
            params = {key: values[0] for key, values in param_grid.items()}
            tree = DecisionTreeClassifier(random_state=seed, **params)
            tree.fit(training_set.features, labels)
            trees[name] = tree
            chosen[name] = params
            continue
        search = GridSearchCV(
            DecisionTreeClassifier(random_state=seed),
            param_grid,
            KFold(n_splits=n_folds, shuffle=True, random_state=seed),
        )
        search.fit(training_set.features, labels)
        trees[name] = search.best_estimator_
        chosen[name] = dict(search.best_params_)
    return SparseAdaptModel(trees=trees, l1_type=l1_type, hyperparameters=chosen)


def train_default_model(
    mode: OptimizationMode,
    kernel: str = "spmspv",
    l1_type: str = "cache",
    quick: bool = True,
    k_samples: int = 24,
    seed: int = 0,
) -> SparseAdaptModel:
    """Train (or fetch from cache) the stock model for a mode/kernel.

    The stock model uses the reduced Table-3 sweep of
    :func:`repro.core.dataset.default_grid`. ``quick=True`` skips the
    hyperparameter search (single sensible setting) — appropriate for
    tests and examples; benchmarks regenerating Figure 9/10 use the
    full grid.
    """
    key = (mode, kernel, l1_type, quick, k_samples, seed)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    from repro.obs import profile as obs_profile

    with obs_profile.span("model_training"):
        phases = table3_phases(kernel, l1_type=l1_type, seed=seed)
        training_set = build_training_set(
            phases, mode, k_samples=k_samples, seed=seed
        )
        model = train_model(
            training_set,
            l1_type=l1_type,
            param_grid=QUICK_PARAM_GRID if quick else DEFAULT_PARAM_GRID,
            seed=seed,
        )
    _MODEL_CACHE[key] = model
    return model


def clear_model_cache() -> None:
    """Drop all cached stock models (used by tests)."""
    _MODEL_CACHE.clear()
