"""Controller hardening: counter sanitization and safe-mode degradation.

A deployed SparseAdapt controller reads saturating hardware counters
over a noisy sideband and commands reconfigurations it cannot directly
confirm. This module provides the defensive layer the hardened
controller installs in front of the predictive model:

* :class:`CounterSanitizer` — per-counter plausibility screening
  (NaN/inf, out-of-range, suspicious full-scale pins, stale reads,
  configuration-echo mismatches) with last-known-good substitution, so
  a corrupt telemetry vector never reaches the decision trees raw;
* :class:`SafeModeMachine` — a three-state degradation machine
  (``normal`` -> ``safe`` -> ``probe``): after a streak of faulty
  epochs the controller parks the machine in its static safe
  configuration, and after enough clean epochs it probes one adaptive
  epoch before fully re-engaging;
* :class:`HardeningConfig` — the tunables for both, with
  :meth:`HardeningConfig.disabled` providing the bit-exact passthrough
  used when the controller runs unhardened.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import (
    ECHO_COUNTERS,
    PLAUSIBLE_BOUNDS,
    PerformanceCounters,
)

__all__ = [
    "STATE_NORMAL",
    "STATE_SAFE",
    "STATE_PROBE",
    "HardeningConfig",
    "CounterSanitizer",
    "SafeModeMachine",
]

STATE_NORMAL = "normal"
STATE_SAFE = "safe"
STATE_PROBE = "probe"

#: Counters whose value pinned exactly at the upper plausibility bound
#: is fault evidence rather than a legitimate reading. Occupancies,
#: IPCs, and DRAM utilizations are min()-clamped by the machine model
#: and genuinely sit at 1.0; access rates, miss rates, prefetch ratios,
#: and crossbar contention never legitimately hit their full-scale
#: ceiling exactly.
_FULL_SCALE_SUSPECT = frozenset(
    (
        "l1_access_rate",
        "l1_miss_rate",
        "l1_prefetch_ratio",
        "l2_access_rate",
        "l2_miss_rate",
        "l2_prefetch_ratio",
        "xbar_contention_ratio",
    )
)


@dataclass(frozen=True)
class HardeningConfig:
    """Tunables of the hardened controller's defensive layer."""

    enabled: bool = True
    fault_streak_threshold: int = 3
    recovery_epochs: int = 2
    readback_retries: int = 1
    stale_detection: bool = True
    #: Substituted-counter count at which one epoch's telemetry is
    #: considered *severely* corrupt. Only severe epochs (this many
    #: substitutions, a stale vector, or a failed read-back) feed the
    #: safe-mode fault streak: a couple of implausible counters are
    #: repaired by last-known-good substitution and the repaired vector
    #: is safe to adapt on, so degrading to the static config for them
    #: would throw away adaptive gain for no protection.
    severe_issue_count: int = 4

    def __post_init__(self) -> None:
        if self.fault_streak_threshold < 1:
            raise ConfigError("fault_streak_threshold must be >= 1")
        if self.recovery_epochs < 1:
            raise ConfigError("recovery_epochs must be >= 1")
        if self.readback_retries < 0:
            raise ConfigError("readback_retries must be >= 0")
        if self.severe_issue_count < 1:
            raise ConfigError("severe_issue_count must be >= 1")

    @staticmethod
    def disabled() -> "HardeningConfig":
        """The unhardened passthrough (no sanitization, no safe mode)."""
        return HardeningConfig(enabled=False)


class CounterSanitizer:
    """Plausibility screen with last-known-good substitution.

    :meth:`sanitize` returns the vector the decision layer should see
    plus the list of issues found. Every implausible counter value is
    replaced by the last value of that counter that passed screening
    (or the midpoint of its plausible range before any clean reading
    exists). Stale detection compares the full observed vector against
    the previous epoch's observation — real telemetry jitters in every
    field, so an exact repeat means the sample window was missed.
    """

    def __init__(self, config: HardeningConfig) -> None:
        self.config = config
        self._last_good: Dict[str, float] = {}
        self._previous: Optional[Dict[str, float]] = None
        self.n_substituted = 0

    def _fallback(self, name: str) -> float:
        if name in self._last_good:
            return self._last_good[name]
        low, high = PLAUSIBLE_BOUNDS[name]
        return (low + high) / 2.0

    def sanitize(
        self,
        counters: PerformanceCounters,
        commanded: HardwareConfig,
    ) -> Tuple[PerformanceCounters, List[Dict[str, object]]]:
        """Screened counters plus the issues detected.

        ``commanded`` is the configuration the host believes it set;
        echo counters disagreeing with it are flagged (and the echo is
        trusted over the belief only by the read-back logic, not here —
        the sanitizer's job is detection and a clean feature vector).
        """
        values = counters.as_dict()
        issues: List[Dict[str, object]] = []

        if (
            self.config.stale_detection
            and self._previous is not None
            and values == self._previous
        ):
            issues.append({"issue": "stale", "counters": sorted(values)})
        self._previous = dict(values)

        expected_echo = {
            "l1_capacity_kb": float(commanded.l1_kb),
            "l2_capacity_kb": float(commanded.l2_kb),
            "clock_mhz": float(commanded.clock_mhz),
        }
        clean: Dict[str, float] = {}
        for name, value in values.items():
            issue: Optional[str] = None
            if math.isnan(value) or math.isinf(value):
                issue = "non_finite"
            else:
                low, high = PLAUSIBLE_BOUNDS[name]
                if not low <= value <= high:
                    issue = "out_of_range"
                elif name in _FULL_SCALE_SUSPECT and value == high:
                    issue = "full_scale_pin"
            if issue is None and name in ECHO_COUNTERS:
                if value != expected_echo[name]:
                    # The echo is plausible but disagrees with what the
                    # host commanded: report it, keep the echo (the
                    # hardware is the ground truth for echoes).
                    issues.append(
                        {
                            "issue": "echo_mismatch",
                            "counter": name,
                            "observed": value,
                            "expected": expected_echo[name],
                        }
                    )
            if issue is None:
                clean[name] = value
                self._last_good[name] = value
            else:
                substitute = self._fallback(name)
                clean[name] = substitute
                self.n_substituted += 1
                issues.append(
                    {
                        "issue": issue,
                        "counter": name,
                        "observed": value,
                        "substitute": substitute,
                    }
                )
        if not issues:
            return counters, issues
        return PerformanceCounters(**clean), issues


class SafeModeMachine:
    """The ``normal -> safe -> probe`` degradation state machine.

    Feed it one verdict per epoch via :meth:`observe`; read
    :attr:`adapting` to decide whether the controller may run its
    adaptive pipeline this epoch.

    * ``normal``: adapt freely. ``fault_streak_threshold`` consecutive
      faulty epochs enter ``safe``.
    * ``safe``: hold the static safe configuration; no inference. After
      ``recovery_epochs`` consecutive clean epochs, enter ``probe``.
    * ``probe``: run one adaptive epoch. Clean -> back to ``normal``;
      faulty -> straight back to ``safe``.
    """

    def __init__(self, config: HardeningConfig) -> None:
        self.config = config
        self.state = STATE_NORMAL
        self.fault_streak = 0
        self.clean_streak = 0
        self.entries = 0
        self.safe_epochs = 0

    @property
    def adapting(self) -> bool:
        """Whether the adaptive pipeline runs this epoch."""
        return self.state != STATE_SAFE

    def observe(self, faulty: bool) -> Optional[str]:
        """Advance one epoch; returns a transition name or ``None``.

        Transition names: ``"enter"`` (into safe mode), ``"probe"``
        (safe -> trial epoch), ``"exit"`` (probe succeeded, back to
        normal), ``"reenter"`` (probe failed).
        """
        if faulty:
            self.fault_streak += 1
            self.clean_streak = 0
        else:
            self.fault_streak = 0
            self.clean_streak += 1

        if self.state == STATE_NORMAL:
            if self.fault_streak >= self.config.fault_streak_threshold:
                self.state = STATE_SAFE
                self.entries += 1
                return "enter"
        elif self.state == STATE_SAFE:
            self.safe_epochs += 1
            if self.clean_streak >= self.config.recovery_epochs:
                self.state = STATE_PROBE
                return "probe"
        else:  # probe
            if faulty:
                self.state = STATE_SAFE
                self.entries += 1
                return "reenter"
            self.state = STATE_NORMAL
            return "exit"
        return None
