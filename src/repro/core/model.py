"""The SparseAdapt predictive model: one decision tree per parameter.

The model is "an ensemble of independent functions f_i" (Section 4.1)
under the conditional-independence assumption: each runtime parameter
gets its own classifier mapping the telemetry feature vector to that
parameter's best value. Inference is a handful of tree traversals —
cheap enough to run every epoch on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.telemetry import build_features, feature_groups, feature_names
from repro.errors import ModelError
from repro.obs import profile as obs_profile
from repro.ml.metrics import grouped_importance
from repro.transmuter.config import (
    RUNTIME_PARAMETERS,
    SPM_FIXED_L1_KB,
    HardwareConfig,
)
from repro.transmuter.counters import PerformanceCounters

__all__ = ["SparseAdaptModel"]


@dataclass
class SparseAdaptModel:
    """Fitted per-parameter classifier ensemble.

    Attributes
    ----------
    trees:
        Mapping from runtime parameter name to a fitted classifier
        (anything exposing ``predict``/``feature_importances_``).
    l1_type:
        The compile-time L1 memory type this model was trained for.
    hyperparameters:
        The selected hyperparameters per tree (for inspection).
    """

    trees: Dict[str, object]
    l1_type: str = "cache"
    hyperparameters: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = set(self.predicted_parameters())
        missing = expected - set(self.trees)
        if missing:
            raise ModelError(f"missing trees for parameters: {sorted(missing)}")

    # ------------------------------------------------------------------
    def predicted_parameters(self) -> List[str]:
        """Runtime parameters this model predicts (SPM pins l1_kb)."""
        if self.l1_type == "spm":
            return [p for p in RUNTIME_PARAMETERS if p != "l1_kb"]
        return list(RUNTIME_PARAMETERS)

    def predict(
        self,
        counters: PerformanceCounters,
        current: HardwareConfig,
    ) -> HardwareConfig:
        """Best configuration for the next epoch given this epoch's
        telemetry and the configuration it ran on."""
        if current.l1_type != self.l1_type:
            raise ModelError(
                f"model trained for l1_type={self.l1_type!r}, "
                f"got {current.l1_type!r}"
            )
        with obs_profile.span("forest_inference"):
            row = build_features(counters, current)
            tables = self.compiled_tables()
            values = {}
            if tables is None:
                batch = row.reshape(1, -1)
                for name in self.predicted_parameters():
                    prediction = self.trees[name].predict(batch)[0]
                    values[name] = self._coerce(name, prediction)
            else:
                row_list = row.tolist()
                for name in self.predicted_parameters():
                    table = tables.get(name)
                    if table is None:  # estimator without a compiled form
                        prediction = self.trees[name].predict(
                            row.reshape(1, -1)
                        )[0]
                    else:
                        prediction = table.predict_row(row_list)
                    values[name] = self._coerce(name, prediction)
            if self.l1_type == "spm":
                values["l1_kb"] = SPM_FIXED_L1_KB
            return HardwareConfig(l1_type=self.l1_type, **values)

    def compiled_tables(self) -> Optional[Dict[str, object]]:
        """Flat decision tables for this ensemble, or ``None``.

        Compiled lazily on first use when the fast path is enabled and
        cached on the instance; the cache is invalidated automatically
        when any per-parameter estimator object is replaced (retraining
        builds new estimators, so identity tracks model changes).
        """
        from repro import fastpath

        if not fastpath.enabled():
            return None
        token = tuple(
            (name, id(self.trees[name]))
            for name in self.predicted_parameters()
        )
        cached = getattr(self, "_compiled_cache", None)
        if cached is not None and cached[0] == token:
            return cached[1]
        from repro.fastpath.tables import compile_forest

        tables = compile_forest(self)
        self._compiled_cache = (token, tables)
        return tables

    def invalidate_compiled(self) -> None:
        """Drop the compiled-table cache (e.g. after editing trees)."""
        self._compiled_cache = None

    def predict_with_provenance(
        self,
        counters: PerformanceCounters,
        current: HardwareConfig,
    ):
        """Like :meth:`predict`, also returning per-parameter provenance.

        Returns ``(config, provenance)`` where ``provenance`` maps each
        predicted parameter to a JSON-friendly dict::

            {"parameter": "l1_kb", "current": 16, "predicted": 64,
             "kind": "tree", "margin": 0.83, "depth": 2,
             "path": [{"depth": 0, "feature": "l1_miss_rate",
                       "feature_index": 2, "threshold": 0.24,
                       "value": 0.31, "direction": "gt"}, ...],
             "leaf": {...}}

        The prediction is derived from the same leaf the traversal
        reaches, so the returned configuration is identical to
        :meth:`predict` on the same inputs — provenance collection can
        never change a decision. Estimators without ``decision_path``
        degrade to ``path=None`` and a plain ``predict`` call.
        """
        if current.l1_type != self.l1_type:
            raise ModelError(
                f"model trained for l1_type={self.l1_type!r}, "
                f"got {current.l1_type!r}"
            )
        with obs_profile.span("forest_inference"):
            return self._predict_with_provenance(counters, current)

    def _predict_with_provenance(
        self,
        counters: PerformanceCounters,
        current: HardwareConfig,
    ):
        row = build_features(counters, current)
        names = feature_names()
        values: Dict[str, object] = {}
        provenance: Dict[str, dict] = {}
        for name in self.predicted_parameters():
            tree = self.trees[name]
            if hasattr(tree, "decision_path"):
                path = tree.decision_path(row)
                if "trees" in path:  # forest: ensemble vote
                    raw_prediction = path["prediction"]
                    margin = path["margin"]
                    steps = None
                    leaf = {"votes": path["votes"]}
                    kind = "forest"
                    member_paths = [
                        self._describe_steps(p["steps"], names)
                        for p in path["trees"]
                    ]
                else:
                    raw_prediction = path["leaf"]["prediction"]
                    margin = path["leaf"].get("margin")
                    steps = self._describe_steps(path["steps"], names)
                    leaf = dict(path["leaf"])
                    kind = "tree"
                    member_paths = None
            else:  # estimator without path introspection
                raw_prediction = tree.predict(row.reshape(1, -1))[0]
                margin = None
                steps = None
                leaf = None
                kind = type(tree).__name__
                member_paths = None
            predicted = self._coerce(name, raw_prediction)
            values[name] = predicted
            record = {
                "parameter": name,
                "current": current.get(name),
                "predicted": predicted,
                "kind": kind,
                "margin": margin,
                "depth": len(steps) if steps is not None else None,
                "path": steps,
                "leaf": leaf,
            }
            if member_paths is not None:
                record["tree_paths"] = member_paths
            provenance[name] = record
        if self.l1_type == "spm":
            values["l1_kb"] = SPM_FIXED_L1_KB
        return HardwareConfig(l1_type=self.l1_type, **values), provenance

    @staticmethod
    def _describe_steps(steps, names: List[str]) -> List[dict]:
        """Path steps with feature indices resolved to telemetry names."""
        return [
            {
                "depth": step["depth"],
                "feature": names[step["feature"]],
                "feature_index": step["feature"],
                "threshold": step["threshold"],
                "value": step["value"],
                "direction": step["direction"],
            }
            for step in steps
        ]

    @staticmethod
    def _coerce(name: str, value):
        """Cast numpy label types back to the config's native types."""
        if name in ("l1_sharing", "l2_sharing"):
            return str(value)
        if name == "clock_mhz":
            return float(value)
        return int(value)

    # ------------------------------------------------------------------
    def feature_importance(self, parameter: str) -> np.ndarray:
        """Per-feature Gini importance of one parameter's tree."""
        if parameter not in self.trees:
            raise ModelError(f"no tree for parameter {parameter!r}")
        importances = self.trees[parameter].feature_importances_
        if importances is None:
            raise ModelError(f"tree for {parameter!r} is not fitted")
        return importances

    def grouped_feature_importance(
        self, parameter: str
    ) -> Dict[str, float]:
        """Figure-10 style importance grouped by counter class."""
        return grouped_importance(
            self.feature_importance(parameter), feature_groups()
        )

    def importance_table(self) -> Dict[str, Dict[str, float]]:
        """Grouped importances for every predicted parameter."""
        return {
            name: self.grouped_feature_importance(name)
            for name in self.predicted_parameters()
        }

    @staticmethod
    def feature_names() -> List[str]:
        """Names of the feature vector the trees consume."""
        return feature_names()

    def describe(self) -> str:
        """One line per tree: depth and leaf count."""
        lines = []
        for name in self.predicted_parameters():
            tree = self.trees[name]
            depth = tree.depth() if hasattr(tree, "depth") else "?"
            leaves = tree.n_leaves() if hasattr(tree, "n_leaves") else "?"
            lines.append(f"{name}: depth={depth} leaves={leaves}")
        return "\n".join(lines)
