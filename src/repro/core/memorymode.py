"""Dynamic memory-mode (cache <-> SPM) adaptation — paper Section 7.

The baseline SparseAdapt fixes the L1 memory type at compile time,
which "leaves out some scope for optimization when different parts of
the program show amenability to a cache or SPM"; the paper points at
Stash-like hardware as the enabler. This module implements that
extension:

* :class:`MemoryModeModel` — the per-type tree ensembles plus a
  seventh classifier that predicts, from the telemetry, which L1
  memory type suits the next epoch;
* :func:`train_memory_mode_model` — trains both ensembles and the
  type classifier from the Table-3 sweep run under *both* L1 types
  (the type label is whichever type's best configuration achieves the
  higher metric for the phase);
* :class:`MemoryModeController` — a controller that may cross the
  type boundary, paying the coarse-grained checkpoint + code-switch +
  L1 re-orchestration cost, guarded by a cost tolerance so the switch
  only happens when the epoch is long enough to amortize it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.controller import _HOST_DECISION_POWER_W, SparseAdaptController
from repro.core.dataset import build_training_set, find_best_config, table3_phases
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode, metric_value
from repro.core.policies import ReconfigurationPolicy
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.core.telemetry import build_features
from repro.core.training import QUICK_PARAM_GRID, train_model
from repro.errors import ConfigError, ModelError
from repro.kernels.base import KernelTrace
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.transmuter import params
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import PerformanceCounters
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    host_decision_overhead_s,
    reconfiguration_cost,
)

__all__ = [
    "MemoryModeModel",
    "train_memory_mode_model",
    "MemoryModeController",
]


@dataclass
class MemoryModeModel:
    """Per-type ensembles plus the memory-type classifier."""

    cache_model: SparseAdaptModel
    spm_model: SparseAdaptModel
    type_tree: DecisionTreeClassifier

    def __post_init__(self) -> None:
        if self.cache_model.l1_type != "cache":
            raise ModelError("cache_model must be trained for l1_type=cache")
        if self.spm_model.l1_type != "spm":
            raise ModelError("spm_model must be trained for l1_type=spm")

    # ------------------------------------------------------------------
    @staticmethod
    def _type_features(
        counters: PerformanceCounters, current: HardwareConfig
    ) -> np.ndarray:
        base = build_features(counters, current)
        is_spm = 1.0 if current.l1_type == "spm" else 0.0
        return np.concatenate([base, [is_spm]])

    def predict_type(
        self, counters: PerformanceCounters, current: HardwareConfig
    ) -> str:
        """Which L1 memory type the next epoch should run under."""
        row = self._type_features(counters, current).reshape(1, -1)
        return str(self.type_tree.predict(row)[0])

    def predict(
        self, counters: PerformanceCounters, current: HardwareConfig
    ) -> HardwareConfig:
        """Best configuration for the next epoch, possibly crossing the
        memory-type boundary."""
        target_type = self.predict_type(counters, current)
        model = self.cache_model if target_type == "cache" else self.spm_model
        if current.l1_type == target_type:
            return model.predict(counters, current)
        # Cross-boundary: ask the target-type ensemble, seeding it with
        # the current config re-expressed in the target type.
        from repro.baselines.static import spm_variant

        if target_type == "spm":
            seed_config = spm_variant(current)
        else:
            from dataclasses import replace

            seed_config = replace(current, l1_type="cache")
        return model.predict(counters, seed_config)


def train_memory_mode_model(
    mode: OptimizationMode,
    kernel: str = "spmspv",
    quick: bool = True,
    k_samples: int = 24,
    seed: int = 0,
) -> MemoryModeModel:
    """Train both per-type ensembles and the type classifier."""
    grid = QUICK_PARAM_GRID if quick else None
    type_rows = []
    type_labels = []
    per_type_models: Dict[str, SparseAdaptModel] = {}
    for l1_type in ("cache", "spm"):
        phases = table3_phases(kernel, l1_type=l1_type, seed=seed)
        training_set = build_training_set(
            phases, mode, k_samples=k_samples, seed=seed
        )
        per_type_models[l1_type] = train_model(
            training_set, l1_type=l1_type, param_grid=grid, seed=seed
        )
        # Type labels: compare the best achievable metric under each
        # type for every phase; every sampled example of the phase
        # inherits the winning type as its label.
        rng = np.random.default_rng(seed + 1)
        for phase in phases:
            phase_seed = int(rng.integers(0, 2**31 - 1))
            best_by_type = {}
            for candidate_type in ("cache", "spm"):
                best = find_best_config(
                    phase.machine,
                    phase.workload,
                    mode,
                    l1_type=candidate_type,
                    k_samples=max(8, k_samples // 2),
                    seed=phase_seed,
                )
                result = phase.machine.simulate_epoch(phase.workload, best)
                best_by_type[candidate_type] = metric_value(
                    mode,
                    max(phase.workload.flops, 1.0),
                    result.time_s,
                    result.energy_j,
                )
            winner = max(best_by_type, key=best_by_type.get)
            # One representative example per phase (observed on the
            # phase's own l1_type baseline configuration).
            observe_config = HardwareConfig(l1_type=l1_type)
            observed = phase.machine.simulate_epoch(
                phase.workload, observe_config
            )
            type_rows.append(
                MemoryModeModel._type_features(
                    observed.counters, observe_config
                )
            )
            type_labels.append(winner)
    type_tree = DecisionTreeClassifier(max_depth=8, random_state=seed)
    type_tree.fit(np.vstack(type_rows), np.asarray(type_labels))
    return MemoryModeModel(
        cache_model=per_type_models["cache"],
        spm_model=per_type_models["spm"],
        type_tree=type_tree,
    )


class MemoryModeController(SparseAdaptController):
    """Controller that may switch the L1 memory type at runtime.

    The type switch is coarse-grained (checkpoint + code swap + L1
    re-orchestration), so it is guarded by ``switch_tolerance``: it is
    applied only when its time cost stays within that fraction of the
    previous epoch's duration.
    """

    def __init__(
        self,
        model: MemoryModeModel,
        machine: TransmuterModel,
        mode: OptimizationMode,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        switch_tolerance: float = 2.0,
    ) -> None:
        # The base-class constructor expects a SparseAdaptModel; seed it
        # with the per-type ensemble matching the initial configuration.
        initial_config = initial_config or HardwareConfig(l1_type="cache")
        seed_model = (
            model.cache_model
            if initial_config.l1_type == "cache"
            else model.spm_model
        )
        super().__init__(seed_model, machine, mode, policy, initial_config)
        if switch_tolerance < 0:
            raise ConfigError("switch_tolerance must be non-negative")
        self.memory_model = model
        self.switch_tolerance = switch_tolerance
        self.n_type_switches = 0

    # ------------------------------------------------------------------
    def run(self, trace: KernelTrace) -> ScheduleResult:
        schedule = ScheduleResult(scheme="sparseadapt-memorymode")
        config = self.initial_config
        pending_reconfig = None
        overhead = host_decision_overhead_s()
        for index, workload in enumerate(trace.epochs):
            result = self.machine.simulate_epoch(workload, config)
            schedule.append(
                EpochRecord(
                    index=index,
                    config=config,
                    result=result,
                    reconfig=pending_reconfig,
                )
            )
            dirty_hint = workload.stores * params.WORD_BYTES
            predicted = self.memory_model.predict(result.counters, config)

            applied = None
            if predicted.l1_type != config.l1_type:
                switch_cost = reconfiguration_cost(
                    config,
                    predicted,
                    self.machine.power,
                    self.bandwidth_gbps,
                    dirty_bytes_hint=dirty_hint,
                    allow_memory_mode=True,
                )
                if (
                    switch_cost.time_s
                    <= self.switch_tolerance * result.time_s
                ):
                    applied = predicted
                    self.n_type_switches += 1
            if applied is None:
                # Same-type adaptation (either no switch was proposed,
                # or the switch is too expensive right now).
                model = (
                    self.memory_model.cache_model
                    if config.l1_type == "cache"
                    else self.memory_model.spm_model
                )
                same_type_prediction = model.predict(result.counters, config)
                applied = self.policy.filter(
                    current=config,
                    predicted=same_type_prediction,
                    last_epoch_time_s=result.time_s,
                    power=self.machine.power,
                    bandwidth_gbps=self.bandwidth_gbps,
                    dirty_bytes_hint=dirty_hint,
                )

            pending_reconfig = reconfiguration_cost(
                config,
                applied,
                self.machine.power,
                self.bandwidth_gbps,
                dirty_bytes_hint=dirty_hint,
                allow_memory_mode=True,
            )
            if pending_reconfig.is_free:
                pending_reconfig = None
            config = applied
            schedule.overhead_time_s += overhead
            schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
        return schedule
