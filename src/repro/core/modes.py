"""Optimization modes (paper Section 1).

SparseAdapt operates under one of two objectives:

* **Energy-Efficient** — maximize GFLOPS/W. Since GFLOPS/W equals
  ``flops / energy`` and the program's flops are fixed, this is
  equivalent to minimizing total energy.
* **Power-Performance** — maximize GFLOPS^3/W, i.e.
  ``flops^3 / (time^2 * energy)``; equivalent to minimizing
  ``time^2 * energy`` (an ED^2-like product favouring performance).
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError

__all__ = ["OptimizationMode", "metric_value", "cost_value"]


class OptimizationMode(enum.Enum):
    """The two SparseAdapt objectives."""

    ENERGY_EFFICIENT = "energy-efficient"
    POWER_PERFORMANCE = "power-performance"

    @property
    def metric_name(self) -> str:
        if self is OptimizationMode.ENERGY_EFFICIENT:
            return "GFLOPS/W"
        return "GFLOPS^3/W"


def metric_value(
    mode: OptimizationMode, flops: float, time_s: float, energy_j: float
) -> float:
    """The mode's figure of merit (higher is better)."""
    if time_s <= 0 or energy_j <= 0:
        raise SimulationError("time and energy must be positive")
    gflops = flops / time_s / 1e9
    watts = energy_j / time_s
    if mode is OptimizationMode.ENERGY_EFFICIENT:
        return gflops / watts
    return gflops**3 / watts


def cost_value(mode: OptimizationMode, time_s: float, energy_j: float) -> float:
    """Equivalent *minimization* objective for fixed flops.

    Energy-Efficient minimizes energy; Power-Performance minimizes
    ``time^2 * energy``. Used by the greedy and oracle schedulers,
    where additive/scalarizable costs are needed.
    """
    if time_s < 0 or energy_j < 0:
        raise SimulationError("time and energy must be non-negative")
    if mode is OptimizationMode.ENERGY_EFFICIENT:
        return energy_j
    return time_s * time_s * energy_j
