"""History-based prediction (paper Section 7, "Bridging the Gap").

The paper's proposed extension: "explore using telemetry data from
multiple past epochs to learn a history-based pattern of program
execution, borrowing ideas from branch prediction and prefetching."

:class:`HistoryAwareController` implements that idea on top of the
stock tree ensemble:

* each epoch's telemetry is quantized into a compact *signature*
  (bandwidth pressure, miss rates, IPC, occupancy buckets);
* a pattern table — indexed by the window of the last ``history``
  signatures, like a branch predictor's history register — remembers
  which configuration ended up being applied the last time this exact
  telemetry pattern was observed, together with the efficiency it
  achieved;
* on a pattern hit whose remembered outcome was at least as good as
  the current epoch's, the remembered configuration is applied
  directly (anticipating the recurring phase one epoch sooner and
  damping prediction oscillation); otherwise the controller falls back
  to the tree-model + policy path and the table learns the new
  outcome.

The table is purely online — no extra offline training data is needed,
matching how branch predictors deploy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.controller import _HOST_DECISION_POWER_W, SparseAdaptController
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode, metric_value
from repro.core.policies import ReconfigurationPolicy
from repro.core.schedule import EpochRecord, ScheduleResult
from repro.errors import ConfigError
from repro.kernels.base import KernelTrace
from repro.transmuter import params
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import PerformanceCounters
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.reconfig import (
    host_decision_overhead_s,
    reconfiguration_cost,
)

__all__ = ["quantize_signature", "HistoryAwareController"]

#: Quantization grid: counter name -> bucket edges.
_SIGNATURE_BUCKETS = {
    "dram_read_utilization": (0.25, 0.5, 0.75, 0.95),
    "dram_write_utilization": (0.25, 0.5, 0.75, 0.95),
    "l1_miss_rate": (0.05, 0.15, 0.35, 0.6),
    "l2_miss_rate": (0.1, 0.3, 0.6, 0.85),
    "l1_occupancy": (0.25, 0.5, 0.9),
    "gpe_ipc": (0.2, 0.5, 0.8),
    "xbar_contention_ratio": (0.05, 0.2),
}


def quantize_signature(counters: PerformanceCounters) -> Tuple[int, ...]:
    """Bucketize an epoch's telemetry into a hashable phase signature."""
    values = counters.as_dict()
    signature = []
    for name, edges in _SIGNATURE_BUCKETS.items():
        value = values[name]
        bucket = sum(1 for edge in edges if value > edge)
        signature.append(bucket)
    return tuple(signature)


class HistoryAwareController(SparseAdaptController):
    """SparseAdapt controller with a branch-predictor-style pattern table.

    Parameters
    ----------
    history:
        Number of past epoch signatures forming the table index (the
        "history register" length); 1 degenerates to per-signature
        memoization.
    """

    def __init__(
        self,
        model: SparseAdaptModel,
        machine: TransmuterModel,
        mode: OptimizationMode,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        history: int = 2,
    ) -> None:
        super().__init__(model, machine, mode, policy, initial_config)
        if history < 1:
            raise ConfigError("history window must be >= 1")
        self.history = history
        self.pattern_table: Dict[
            Tuple[Tuple[int, ...], ...], Tuple[HardwareConfig, float]
        ] = {}
        self.pattern_hits = 0
        self.pattern_lookups = 0

    # ------------------------------------------------------------------
    def run(self, trace: KernelTrace) -> ScheduleResult:
        """Execute a trace under history-augmented closed-loop control."""
        schedule = ScheduleResult(scheme="sparseadapt-history")
        config = self.initial_config
        pending_reconfig = None
        overhead = host_decision_overhead_s()
        window: Deque[Tuple[int, ...]] = deque(maxlen=self.history)

        for index, workload in enumerate(trace.epochs):
            result = self.machine.simulate_epoch(workload, config)
            schedule.append(
                EpochRecord(
                    index=index,
                    config=config,
                    result=result,
                    reconfig=pending_reconfig,
                )
            )
            window.append(quantize_signature(result.counters))
            epoch_metric = metric_value(
                self.mode,
                max(workload.flops, 1.0),
                result.time_s,
                result.energy_j,
            )
            dirty_hint = workload.stores * params.WORD_BYTES

            applied = None
            key = tuple(window)
            if len(window) == self.history:
                self.pattern_lookups += 1
                remembered = self.pattern_table.get(key)
                if remembered is not None:
                    remembered_config, remembered_metric = remembered
                    if remembered_metric >= epoch_metric:
                        self.pattern_hits += 1
                        applied = remembered_config

            if applied is None:
                predicted = self.model.predict(result.counters, config)
                applied = self.policy.filter(
                    current=config,
                    predicted=predicted,
                    last_epoch_time_s=result.time_s,
                    power=self.machine.power,
                    bandwidth_gbps=self.bandwidth_gbps,
                    dirty_bytes_hint=dirty_hint,
                )

            if len(window) == self.history:
                # Learn/refresh: the configuration chosen after this
                # pattern, tagged with the efficiency the pattern's
                # epoch achieved (to avoid replaying poor choices).
                self.pattern_table[key] = (applied, epoch_metric)

            pending_reconfig = reconfiguration_cost(
                config,
                applied,
                self.machine.power,
                self.bandwidth_gbps,
                dirty_bytes_hint=dirty_hint,
            )
            if pending_reconfig.is_free:
                pending_reconfig = None
            config = applied
            schedule.overhead_time_s += overhead
            schedule.overhead_energy_j += overhead * _HOST_DECISION_POWER_W
        return schedule

    @property
    def pattern_hit_rate(self) -> float:
        """Fraction of lookups served by the pattern table."""
        if self.pattern_lookups == 0:
            return 0.0
        return self.pattern_hits / self.pattern_lookups
