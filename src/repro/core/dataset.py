"""Training-set construction (paper Figure 4 and Section 5.1).

For every program phase P (a steady-state epoch workload) and machine
setting (external bandwidth), the "best" configuration is found in
three steps:

1. **Random sampling** — evaluate K sampled configurations, keep the
   best.
2. **Neighbour evaluation** — evaluate the one-step hyper-sphere around
   it, keep the best.
3. **Dimension sweep** — from there, sweep each configuration dimension
   in isolation and combine the per-dimension optima (valid under the
   conditional-independence assumption).

Each of the K sampled configurations then yields one training example:
features are the counters observed *on that configuration* plus the
configuration's own parameters; the label is the best configuration —
this is the paper's key trick for multiplying the training data and
removing the profiling configuration (Section 4.2).

Phases are produced by the Table-3 parameter sweep: uniform random
matrices across dimension, density, and external memory bandwidth,
traced by the real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.modes import OptimizationMode, metric_value
from repro.core.telemetry import build_features, feature_names
from repro.errors import ModelError
from repro.kernels.base import KernelTrace
from repro.kernels.spmspm import trace_spmspm
from repro.kernels.spmspv import trace_spmspv
from repro.sparse import generators
from repro.transmuter.config import (
    RUNTIME_PARAMETERS,
    HardwareConfig,
    neighbors,
    sample_configs,
)
from repro.transmuter.machine import TransmuterModel
from repro.transmuter.workload import EpochWorkload

__all__ = [
    "PhaseSample",
    "TrainingSet",
    "find_best_config",
    "representative_epochs",
    "table3_phases",
    "build_training_set",
    "default_grid",
]


@dataclass(frozen=True)
class PhaseSample:
    """One training phase: a steady-state workload on a machine setting."""

    workload: EpochWorkload
    machine: TransmuterModel
    l1_type: str = "cache"


@dataclass
class TrainingSet:
    """Feature matrix plus one label vector per runtime parameter."""

    features: np.ndarray
    labels: Dict[str, np.ndarray]
    names: List[str] = field(default_factory=feature_names)

    @property
    def n_examples(self) -> int:
        return int(self.features.shape[0])

    def merged_with(self, other: "TrainingSet") -> "TrainingSet":
        """Concatenate two training sets (same feature layout)."""
        if self.names != other.names:
            raise ModelError("cannot merge training sets with different features")
        return TrainingSet(
            features=np.vstack([self.features, other.features]),
            labels={
                key: np.concatenate([self.labels[key], other.labels[key]])
                for key in self.labels
            },
            names=self.names,
        )


def _epoch_metric(
    machine: TransmuterModel,
    workload: EpochWorkload,
    config: HardwareConfig,
    mode: OptimizationMode,
) -> float:
    result = machine.simulate_epoch(workload, config)
    return metric_value(
        mode, max(workload.flops, 1.0), result.time_s, result.energy_j
    )


def _batch_results(
    machine: TransmuterModel,
    workload: EpochWorkload,
    configs: Sequence[HardwareConfig],
) -> List:
    """Simulate one workload under many configs, batched when allowed."""
    from repro import fastpath

    if len(configs) > 1 and fastpath.batch_active():
        from repro.fastpath.epochs import simulate_configs

        return simulate_configs(machine, workload, list(configs))
    return [machine.simulate_epoch(workload, cfg) for cfg in configs]


def _argbest(
    machine: TransmuterModel,
    workload: EpochWorkload,
    configs: Sequence[HardwareConfig],
    mode: OptimizationMode,
) -> HardwareConfig:
    """First configuration with the strictly greatest metric.

    Mirrors ``max(configs, key=...)``: on ties the earliest candidate
    wins, so batched and scalar searches pick the same configuration.
    """
    results = _batch_results(machine, workload, configs)
    flops = max(workload.flops, 1.0)
    best = configs[0]
    best_score = metric_value(
        mode, flops, results[0].time_s, results[0].energy_j
    )
    for config, result in zip(configs[1:], results[1:]):
        score = metric_value(mode, flops, result.time_s, result.energy_j)
        if score > best_score:
            best_score = score
            best = config
    return best


def find_best_config(
    machine: TransmuterModel,
    workload: EpochWorkload,
    mode: OptimizationMode,
    l1_type: str = "cache",
    k_samples: int = 24,
    seed: Optional[int] = None,
) -> HardwareConfig:
    """Three-step best-configuration search of Figure 4a."""
    samples = sample_configs(k_samples, l1_type=l1_type, seed=seed)
    best = _argbest(machine, workload, samples, mode)
    # Step 2: one-step neighbourhood.
    candidates = [best] + neighbors(best)
    best = _argbest(machine, workload, candidates, mode)
    # Step 3: independent dimension sweeps from the neighbourhood optimum.
    from repro.transmuter import config as config_space

    values_by_parameter = {
        "l1_sharing": config_space.SHARING_MODES,
        "l2_sharing": config_space.SHARING_MODES,
        "l1_kb": config_space.CAPACITIES_KB,
        "l2_kb": config_space.CAPACITIES_KB,
        "clock_mhz": config_space.CLOCKS_MHZ,
        "prefetch": config_space.PREFETCH_LEVELS,
    }
    # The sweeps are independent by construction, so all candidates
    # across all parameters can be simulated as one batch.
    sweep: List[tuple] = []
    for parameter in RUNTIME_PARAMETERS:
        if l1_type == "spm" and parameter == "l1_kb":
            continue
        for value in values_by_parameter[parameter]:
            sweep.append((parameter, value, best.with_value(parameter, value)))
    results = _batch_results(machine, workload, [c for _, _, c in sweep])
    flops = max(workload.flops, 1.0)
    scores = {
        (parameter, value): metric_value(
            mode, flops, result.time_s, result.energy_j
        )
        for (parameter, value, _), result in zip(sweep, results)
    }
    chosen = {}
    for parameter in RUNTIME_PARAMETERS:
        if l1_type == "spm" and parameter == "l1_kb":
            chosen[parameter] = best.l1_kb
            continue
        best_value = None
        best_score = -np.inf
        for value in values_by_parameter[parameter]:
            score = scores[(parameter, value)]
            if score > best_score:
                best_score = score
                best_value = value
        chosen[parameter] = best_value
    return HardwareConfig(l1_type=l1_type, **chosen)


def representative_epochs(
    trace: KernelTrace, per_phase: int = 1
) -> List[EpochWorkload]:
    """Steady-state representatives: the middle epoch(s) of each phase.

    The paper runs each phase "until the program behavior stabilizes"
    and samples it once (Section 5.1); the mid-phase epochs are the
    stabilized ones.
    """
    by_phase: Dict[str, List[EpochWorkload]] = {}
    for epoch in trace.epochs:
        by_phase.setdefault(epoch.phase, []).append(epoch)
    out: List[EpochWorkload] = []
    for epochs in by_phase.values():
        middle = len(epochs) // 2
        half = max(1, per_phase) // 2
        lo = max(0, middle - half)
        out.extend(epochs[lo : lo + max(1, per_phase)])
    return out


def default_grid(kernel: str) -> Dict[str, Sequence]:
    """Reduced Table-3 sweep kept tractable for pure-Python training.

    The paper sweeps dimensions 128 -> 1k (SpMSpM) / 256 -> 8k (SpMSpV),
    densities 0.2 -> 13 %, and bandwidths 0.01 -> 100 GB/s. The defaults
    here cover the same ranges with fewer grid points.
    """
    if kernel == "spmspm":
        return {
            "dims": (64, 128, 256),
            "densities": (0.005, 0.02, 0.08),
            "bandwidths": (0.1, 1.0, 10.0, 100.0),
        }
    if kernel == "spmspv":
        return {
            "dims": (256, 1024, 4096),
            "densities": (0.002, 0.01, 0.05),
            "bandwidths": (0.1, 1.0, 10.0, 100.0),
        }
    raise ModelError(f"unknown kernel {kernel!r}")


def table3_phases(
    kernel: str,
    l1_type: str = "cache",
    grid: Optional[Dict[str, Sequence]] = None,
    n_tiles: int = 2,
    gpes_per_tile: int = 8,
    seed: int = 0,
) -> List[PhaseSample]:
    """Generate training phases per the Table-3 parameter sweeps."""
    grid = grid or default_grid(kernel)
    rng = np.random.default_rng(seed)
    phases: List[PhaseSample] = []
    for dim in grid["dims"]:
        for density in grid["densities"]:
            matrix_seed = int(rng.integers(0, 2**31 - 1))
            matrix = generators.uniform_random(dim, dim, density, matrix_seed)
            if kernel == "spmspm":
                trace = trace_spmspm(
                    matrix.to_csc(), matrix.transpose().to_csr()
                )
            else:
                vector = generators.random_vector(dim, 0.5, matrix_seed + 1)
                trace = trace_spmspv(matrix.to_csc(), vector)
            workloads = representative_epochs(trace)
            for bandwidth in grid["bandwidths"]:
                machine = TransmuterModel(
                    n_tiles=n_tiles,
                    gpes_per_tile=gpes_per_tile,
                    bandwidth_gbps=float(bandwidth),
                )
                for workload in workloads:
                    phases.append(PhaseSample(workload, machine, l1_type))
    return phases


def build_training_set(
    phases: Sequence[PhaseSample],
    mode: OptimizationMode,
    k_samples: int = 24,
    seed: int = 0,
) -> TrainingSet:
    """Build the Figure-4b training set from phase samples.

    For each phase, K sampled configurations are executed; each yields
    one example mapping (its counters, its own parameters) to the best
    configuration found for that phase.
    """
    if not phases:
        raise ModelError("no phases given")
    rng = np.random.default_rng(seed)
    feature_rows: List[np.ndarray] = []
    label_rows: Dict[str, List] = {name: [] for name in RUNTIME_PARAMETERS}
    for phase in phases:
        phase_seed = int(rng.integers(0, 2**31 - 1))
        best = find_best_config(
            phase.machine,
            phase.workload,
            mode,
            l1_type=phase.l1_type,
            k_samples=k_samples,
            seed=phase_seed,
        )
        samples = sample_configs(
            k_samples, l1_type=phase.l1_type, seed=phase_seed
        )
        for config, result in zip(
            samples, _batch_results(phase.machine, phase.workload, samples)
        ):
            feature_rows.append(build_features(result.counters, config))
            for name in RUNTIME_PARAMETERS:
                label_rows[name].append(best.get(name))
    return TrainingSet(
        features=np.vstack(feature_rows),
        labels={
            name: np.asarray(values) for name, values in label_rows.items()
        },
    )
