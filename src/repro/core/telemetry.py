"""Telemetry pre-processing: counters + current config -> feature vector.

The paper's key insight over ProfileAdapt (Section 4.2) is feeding the
*current configuration parameters* into the predictive model alongside
the performance counters, which removes the need for a profiling
configuration. The runtime also performs "lightweight pre-processing
... such as normalization and feature set augmentation" (Section 3.3);
the augmentation here adds a few architecture-derived combinations
(total bandwidth pressure, traffic intensity) that help shallow trees.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import COUNTER_GROUPS, PerformanceCounters

__all__ = [
    "build_features",
    "feature_names",
    "feature_groups",
]

_AUGMENTED = [
    "aug_dram_total_utilization",
    "aug_l1_traffic_intensity",
    "aug_l2_pressure",
]


def _augment(counters: PerformanceCounters) -> np.ndarray:
    """Derived features (Section 3.3's feature-set augmentation)."""
    return np.array(
        [
            counters.dram_read_utilization + counters.dram_write_utilization,
            counters.l1_access_rate * counters.l1_miss_rate,
            counters.l2_occupancy * counters.l2_miss_rate,
        ]
    )


def build_features(
    counters: PerformanceCounters, config: HardwareConfig
) -> np.ndarray:
    """Feature vector for the predictive model."""
    return np.concatenate(
        [counters.as_features(), _augment(counters), config.as_features()]
    )


def feature_names() -> List[str]:
    """Names parallel to :func:`build_features`."""
    return (
        PerformanceCounters.feature_names()
        + list(_AUGMENTED)
        + HardwareConfig.feature_names()
    )


def feature_groups() -> List[str]:
    """Counter-class group of each feature (Figure 10 aggregation).

    Configuration-echo features are grouped as ``Config``; augmented
    features inherit the class of their dominant source counter.
    """
    groups = [COUNTER_GROUPS[name] for name in PerformanceCounters.feature_names()]
    groups += ["Memory Ctrl", "L1 R-DCache", "L2 R-DCache"]
    groups += ["Config"] * len(HardwareConfig.feature_names())
    return groups
