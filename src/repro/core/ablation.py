"""Ablations of SparseAdapt's design choices.

The central one is the **configuration echo** (paper Section 4.2): the
key difference from ProfileAdapt is feeding the *current configuration
parameters* into the predictive model alongside the counters, which is
what removes the profiling configuration. Ablating those features
quantifies their value: a counters-only model must implicitly guess
what hardware produced the telemetry it sees.

``AblatedSparseAdaptModel`` zeroes the configuration-echo columns both
at training and at inference, so the trees can never split on them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import TrainingSet
from repro.core.model import SparseAdaptModel
from repro.core.telemetry import feature_names
from repro.core.training import QUICK_PARAM_GRID, train_model
from repro.errors import ModelError
from repro.transmuter.config import HardwareConfig
from repro.transmuter.counters import PerformanceCounters

__all__ = [
    "config_feature_indices",
    "mask_config_features",
    "AblatedSparseAdaptModel",
    "train_counters_only_model",
]


def config_feature_indices() -> np.ndarray:
    """Column indices of the configuration-echo features."""
    names = feature_names()
    return np.array(
        [i for i, name in enumerate(names) if name.startswith("cfg_")]
    )


def mask_config_features(features: np.ndarray) -> np.ndarray:
    """Zero the configuration-echo columns of a feature matrix."""
    features = np.array(features, dtype=np.float64, copy=True)
    if features.ndim == 1:
        features = features.reshape(1, -1)
    features[:, config_feature_indices()] = 0.0
    return features


class AblatedSparseAdaptModel(SparseAdaptModel):
    """Per-parameter ensemble blind to the configuration echo."""

    def predict(
        self,
        counters: PerformanceCounters,
        current: HardwareConfig,
    ) -> HardwareConfig:
        from repro.core.telemetry import build_features
        from repro.transmuter.config import SPM_FIXED_L1_KB

        if current.l1_type != self.l1_type:
            raise ModelError(
                f"model trained for l1_type={self.l1_type!r}, "
                f"got {current.l1_type!r}"
            )
        row = mask_config_features(build_features(counters, current))
        values = {}
        for name in self.predicted_parameters():
            prediction = self.trees[name].predict(row)[0]
            values[name] = self._coerce(name, prediction)
        if self.l1_type == "spm":
            values["l1_kb"] = SPM_FIXED_L1_KB
        return HardwareConfig(l1_type=self.l1_type, **values)


def train_counters_only_model(
    training_set: TrainingSet,
    l1_type: str = "cache",
    param_grid: Optional[Dict[str, Sequence]] = None,
    seed: int = 0,
) -> AblatedSparseAdaptModel:
    """Train the ablated (counters-only) model on the same training set."""
    masked = TrainingSet(
        features=mask_config_features(training_set.features),
        labels=training_set.labels,
        names=training_set.names,
    )
    full = train_model(
        masked,
        l1_type=l1_type,
        param_grid=param_grid or QUICK_PARAM_GRID,
        seed=seed,
    )
    return AblatedSparseAdaptModel(
        trees=full.trees,
        l1_type=full.l1_type,
        hyperparameters=full.hyperparameters,
    )
