"""Host runtime facade: offload kernels to the modeled Transmuter.

This is the library's highest-level entry point, mirroring the paper's
host/device split (Figure 2): the host "executes Python code and is
responsible for offloading parallelizable kernels to Transmuter". A
:class:`TransmuterRuntime` owns a machine model, an optimization mode,
and a control scheme; its kernel methods compute the *numerically
exact* result with the reference routines and simultaneously predict
the accelerator's behaviour by driving the controller over the kernel's
workload trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.core.controller import SparseAdaptController
from repro.core.model import SparseAdaptModel
from repro.core.modes import OptimizationMode
from repro.core.policies import ReconfigurationPolicy
from repro.core.schedule import ScheduleResult
from repro.core.training import train_default_model
from repro.errors import ConfigError
from repro.graph.bfs import BFSResult, bfs
from repro.graph.sssp import SSSPResult, sssp
from repro.kernels.base import (
    SPMSPM_EPOCH_FP_OPS,
    SPMSPV_EPOCH_FP_OPS,
    KernelTrace,
)
from repro.kernels.spmspm import trace_spmspm
from repro.kernels.spmspv import trace_spmspv
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmspm_reference, spmspv_reference
from repro.sparse.vector import SparseVector
from repro.transmuter.config import HardwareConfig
from repro.transmuter.machine import TransmuterModel

__all__ = ["OffloadOutcome", "TransmuterRuntime"]


@dataclass
class OffloadOutcome:
    """Result of one offloaded kernel: numerics plus predicted metrics."""

    result: object
    schedule: ScheduleResult
    trace: KernelTrace

    @property
    def gflops(self) -> float:
        return self.schedule.gflops

    @property
    def gflops_per_watt(self) -> float:
        return self.schedule.gflops_per_watt


class TransmuterRuntime:
    """Host-side runtime dispatching kernels under SparseAdapt control."""

    def __init__(
        self,
        machine: Optional[TransmuterModel] = None,
        mode: OptimizationMode = OptimizationMode.ENERGY_EFFICIENT,
        model: Optional[SparseAdaptModel] = None,
        policy: Optional[ReconfigurationPolicy] = None,
        initial_config: Optional[HardwareConfig] = None,
        l1_type: str = "cache",
    ) -> None:
        self.machine = machine or TransmuterModel()
        self.mode = mode
        self.l1_type = model.l1_type if model is not None else l1_type
        self._model = model
        self.policy = policy
        self.initial_config = initial_config

    # ------------------------------------------------------------------
    @property
    def model(self) -> SparseAdaptModel:
        """The predictive model (trained lazily on first use)."""
        if self._model is None:
            self._model = train_default_model(
                self.mode, kernel="spmspv", l1_type=self.l1_type
            )
        return self._model

    def _controller(self) -> SparseAdaptController:
        return SparseAdaptController(
            model=self.model,
            machine=self.machine,
            mode=self.mode,
            policy=self.policy,
            initial_config=self.initial_config,
        )

    def run_trace(self, trace: KernelTrace) -> ScheduleResult:
        """Run an arbitrary pre-built workload trace under control."""
        return self._controller().run(trace)

    def _offload(self, kernel: str, result, trace: KernelTrace) -> OffloadOutcome:
        """Drive the controller over a kernel trace, instrumented.

        Each offload is one ``offload`` span (kernel type, trace length,
        achieved GFLOPS and GFLOPS/W) plus an always-on per-kernel
        offload counter; the span body is the controlled run itself.
        """
        recorder = obs.get_recorder()
        with recorder.span(
            "offload", kernel=kernel, trace=trace.name, n_epochs=trace.n_epochs
        ) as span:
            schedule = self.run_trace(trace)
            span.set(
                gflops=schedule.gflops,
                gflops_per_watt=schedule.gflops_per_watt,
                reconfigurations=schedule.n_reconfigurations,
            )
        obs.metrics.counter(
            "runtime.offloads", "kernels offloaded to the modeled device"
        ).labels(kernel=kernel).inc()
        if recorder.enabled:
            recorder.event(
                "runtime.offload",
                kernel=kernel,
                trace=trace.name,
                n_epochs=trace.n_epochs,
                gflops=schedule.gflops,
                gflops_per_watt=schedule.gflops_per_watt,
                time_s=schedule.total_time_s,
                energy_j=schedule.total_energy_j,
                reconfigurations=schedule.n_reconfigurations,
            )
        return OffloadOutcome(result, schedule, trace)

    # ------------------------------------------------------------------
    # Kernel offload API
    # ------------------------------------------------------------------
    def spmspm(
        self,
        a: COOMatrix,
        b: Optional[COOMatrix] = None,
        epoch_fp_ops: float = SPMSPM_EPOCH_FP_OPS,
        compute_result: bool = True,
    ) -> OffloadOutcome:
        """Sparse-sparse matrix multiply ``C = A @ B`` (B defaults to
        ``A.T``, the paper's evaluation setting)."""
        b = b if b is not None else a.transpose()
        if a.shape[1] != b.shape[0]:
            raise ConfigError(f"shape mismatch {a.shape} @ {b.shape}")
        a_csc = a.to_csc()
        b_csr = b.to_csr()
        trace = trace_spmspm(a_csc, b_csr, epoch_fp_ops)
        result = spmspm_reference(a_csc, b_csr) if compute_result else None
        return self._offload("spmspm", result, trace)

    def spmspv(
        self,
        a: COOMatrix,
        x: SparseVector,
        epoch_fp_ops: float = SPMSPV_EPOCH_FP_OPS,
        compute_result: bool = True,
    ) -> OffloadOutcome:
        """Sparse matrix - sparse vector multiply ``y = A @ x``."""
        a_csc = a.to_csc()
        trace = trace_spmspv(a_csc, x, epoch_fp_ops)
        result = spmspv_reference(a_csc, x) if compute_result else None
        return self._offload("spmspv", result, trace)

    def bfs(self, graph: COOMatrix, source: int = 0) -> OffloadOutcome:
        """Breadth-first search over an adjacency matrix."""
        outcome: BFSResult = bfs(graph.to_csc(), source)
        return self._offload("bfs", outcome, outcome.trace)

    def sssp(self, graph: COOMatrix, source: int = 0) -> OffloadOutcome:
        """Single-source shortest paths over a weighted adjacency matrix."""
        outcome: SSSPResult = sssp(graph.to_csc(), source)
        return self._offload("sssp", outcome, outcome.trace)
