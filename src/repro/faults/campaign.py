"""Fault campaigns: sweep a schedule's rates, report gain degradation.

A campaign answers the deployment question "how much of the adaptive
gain survives as the machine gets flakier?". One base
:class:`~repro.faults.spec.FaultSchedule` is scaled to several rate
factors; at every factor the controller runs the same kernel trace —
hardened and (optionally) unhardened — and each row reports the
efficiency gain over the static BASELINE plus how much of the clean
adaptive gain is retained. Everything is seeded, so the same schedule
and seed produce byte-identical campaign results (the CI determinism
guard relies on this).

The per-rate sweep executes through the shared
:class:`~repro.runner.executor.SuiteRunner`, so fault campaigns get the
same deadline watchdog, retry, and quarantine discipline as
``repro suite-run``: a rate factor that hangs or crashes becomes a
``failure`` row instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.hardening import HardeningConfig
from repro.core.modes import OptimizationMode
from repro.errors import FaultError
from repro.faults.spec import FaultSchedule

__all__ = ["CampaignResult", "run_campaign", "format_campaign_table"]


@dataclass
class CampaignResult:
    """Degradation sweep of one schedule over one kernel trace."""

    kernel: str
    matrix_id: str
    mode: str
    schedule: dict
    baseline_gflops_per_watt: float
    clean_gain: float
    rows: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "matrix_id": self.matrix_id,
            "mode": self.mode,
            "schedule": self.schedule,
            "baseline_gflops_per_watt": self.baseline_gflops_per_watt,
            "clean_gain": self.clean_gain,
            "rows": self.rows,
        }


def _retention(gain: float, clean_gain: float) -> Optional[float]:
    """Fraction of the clean *excess* gain over BASELINE retained."""
    if clean_gain <= 1.0:
        return None
    return (gain - 1.0) / (clean_gain - 1.0)


def run_campaign(
    schedule: FaultSchedule,
    rates: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    kernel: str = "spmspv",
    matrix_id: str = "P3",
    scale: float = 0.3,
    mode: OptimizationMode = OptimizationMode.ENERGY_EFFICIENT,
    hardening: Optional[HardeningConfig] = None,
    include_unhardened: bool = True,
    runner_config=None,
) -> CampaignResult:
    """Sweep ``schedule`` scaled by every factor in ``rates``.

    ``rates`` are multipliers on the schedule's per-spec fire rates
    (1.0 = the schedule as written, 0.0 = fault-free). The row metric
    is the efficiency gain (GFLOPS/W over BASELINE) in Energy-Efficient
    mode and the performance gain (GFLOPS over BASELINE) in
    Power-Performance mode.

    ``runner_config`` (a :class:`~repro.runner.SupervisorConfig`)
    tunes the supervision of the per-rate jobs — deadline, retry
    budget, backoff; the default supervises without a deadline, which
    adds no threads and keeps results byte-identical to the
    pre-runner driver. Host-level fault kinds (``job_hang`` /
    ``job_crash``) present in ``schedule`` are interpreted per rate-job
    by the runner; the controller-level injector ignores them.
    """
    # Imported here: the harness sits above repro.faults in the layer
    # order (the controller imports the fault modules).
    from repro.baselines import BASELINE, run_static
    from repro.core.controller import SparseAdaptController
    from repro.core.training import train_default_model
    from repro.experiments.harness import build_trace, default_policy_for
    from repro.runner.executor import Job, SuiteRunner
    from repro.runner.plan import job_key
    from repro.transmuter.machine import TransmuterModel

    if not isinstance(schedule, FaultSchedule):
        raise FaultError(
            f"expected a FaultSchedule, got {type(schedule).__name__}"
        )
    if len(rates) == 0:
        raise FaultError("campaign needs at least one rate factor")
    for factor in rates:
        if not isinstance(factor, (int, float)) or factor < 0:
            raise FaultError(
                f"rate factors must be non-negative numbers, got {factor!r}"
            )

    machine = TransmuterModel()
    model = train_default_model(mode, kernel=kernel)
    trace = build_trace(kernel, matrix_id, scale=scale)
    baseline = run_static(machine, trace, BASELINE)

    def metric(result) -> float:
        if mode is OptimizationMode.ENERGY_EFFICIENT:
            return result.gflops_per_watt / baseline.gflops_per_watt
        return result.gflops / baseline.gflops

    def controlled(faults, harden_config):
        controller = SparseAdaptController(
            model=model,
            machine=machine,
            mode=mode,
            policy=default_policy_for(kernel),
            initial_config=BASELINE,
            faults=faults,
            hardening=harden_config,
        )
        result = controller.run(trace)
        return result, controller.last_run_stats

    clean_result, _ = controlled(None, HardeningConfig.disabled())
    clean_gain = metric(clean_result)

    result = CampaignResult(
        kernel=kernel,
        matrix_id=matrix_id,
        mode=mode.value,
        schedule=schedule.as_dict(),
        baseline_gflops_per_watt=baseline.gflops_per_watt,
        clean_gain=clean_gain,
    )

    def rate_job(factor: float):
        def fn() -> Dict[str, object]:
            scaled = schedule.scaled(factor)
            faults = scaled if len(scaled) else None
            row: Dict[str, object] = {
                "rate_scale": float(factor),
                "rates": {
                    f"{spec.kind}[{i}]": spec.rate
                    for i, spec in enumerate(scaled.specs)
                },
            }
            for label, harden_config in (
                ("hardened", hardening or HardeningConfig()),
                ("unhardened", HardeningConfig.disabled()),
            ):
                if label == "unhardened" and not include_unhardened:
                    continue
                run, stats = controlled(faults, harden_config)
                gain = metric(run)
                row[label] = {
                    "gain": gain,
                    "retention": _retention(gain, clean_gain),
                    "reconfigurations": run.n_reconfigurations,
                    **(stats or {}),
                }
            return row

        return fn

    jobs = [
        Job(
            key=job_key(
                {
                    "type": "fault-campaign",
                    "schedule": schedule.as_dict(),
                    "factor": float(factor),
                    "kernel": kernel,
                    "matrix": matrix_id,
                    "scale": scale,
                    "mode": mode.value,
                    "unhardened": include_unhardened,
                }
            ),
            label=f"rate={factor:g}",
            fn=rate_job(factor),
            index=index,
            meta={"rate_scale": float(factor)},
        )
        for index, factor in enumerate(rates)
    ]
    runner = SuiteRunner(config=runner_config, faults=schedule)
    report = runner.run(jobs, name=f"faults-{kernel}-{matrix_id}")
    for row_record in report.rows:
        if row_record["status"] == "ok":
            result.rows.append(row_record["result"])
        else:
            result.rows.append(
                {
                    "rate_scale": row_record["rate_scale"],
                    "failure": dict(row_record["failure"]),
                    "attempts": row_record["attempts"],
                }
            )
    return result


def format_campaign_table(result: CampaignResult) -> str:
    """Render a campaign as the ``repro faults`` degradation table."""
    lines = [
        f"Fault campaign — {result.kernel} {result.matrix_id} "
        f"({result.mode} mode)",
        f"clean adaptive gain over BASELINE: {result.clean_gain:6.3f}x",
        "",
        f"{'rate':>6}  {'variant':<10} {'gain':>7} {'retain':>7} "
        f"{'inj':>5} {'det':>5} {'safe-ep':>7} {'reconf':>6}",
    ]
    for row in result.rows:
        failure = row.get("failure")
        if failure is not None:
            lines.append(
                f"{row['rate_scale']:>6.2f}  {'QUARANTINED':<10} "
                f"[{failure.get('kind')}] {failure.get('error')} "
                f"({row.get('attempts', 1)} attempts)"
            )
            continue
        for label in ("hardened", "unhardened"):
            stats = row.get(label)
            if stats is None:
                continue
            retention = stats["retention"]
            lines.append(
                f"{row['rate_scale']:>6.2f}  {label:<10} "
                f"{stats['gain']:>6.3f}x "
                f"{('  n/a' if retention is None else f'{retention:6.1%}'):>7} "
                f"{stats['n_faults_injected']:>5d} "
                f"{stats['n_faults_detected']:>5d} "
                f"{stats['safe_epochs']:>7d} "
                f"{stats['reconfigurations']:>6d}"
            )
    return "\n".join(lines)
