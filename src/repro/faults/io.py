"""Storage-fault injection: an I/O shim under every durability path.

Every durability-critical I/O operation in the repository — the
write/fsync/replace steps of :func:`repro.obs.sinks.atomic_writer`,
directory fsyncs, run-ledger appends and compaction, result-group
publishing in :mod:`repro.runner.store`, and the lease protocol of
:mod:`repro.runner.lease` — routes through a process-wide *shim*
installed here. Three shims exist:

* the default :class:`IOShim` — a validating passthrough whose
  ``active`` flag is False so hot paths can skip per-write wrapping;
* :class:`IOFaultInjector` — a seeded, :class:`FaultSchedule`-driven
  executor for the storage fault kinds (``io_enospc``, ``io_eio``,
  ``io_torn_write``, ``io_rename_lost``, ``io_fsync_lie``);
* :class:`CrashPointShim` — crashes *hard* at the N-th shimmed
  operation, snapshotting the store tree at that instant so the
  :class:`CrashPointRunner` fuzzer can restore exactly the bytes a
  SIGKILL would have left (in-process unwinding runs cleanup handlers
  a real crash would skip; the snapshot undoes them).

Call sites name themselves with a *site* string from :data:`SITES`.
The shim rejects unknown sites, which is what lets the crash-point
fuzzer assert — mechanically, not by hand — that it exercised every
durability call site in the codebase: a site that exists in code but
not in :data:`SITES` raises at runtime, and a site in :data:`SITES`
that the fuzz campaign never reaches fails the coverage assertion.

Stdlib-only plus :mod:`repro.errors` and :mod:`repro.faults.spec`;
call sites in low layers (sinks, lease) import this module lazily at
call time to keep their import graphs flat.
"""

from __future__ import annotations

import errno
import os
import random
import shutil
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.errors import FaultError
from repro.faults.spec import IO_FAULTS, FaultSchedule, FaultSpec

__all__ = [
    "SITES",
    "IOShim",
    "RecordingShim",
    "CrashPointShim",
    "IOFaultInjector",
    "InjectedIOFault",
    "SimulatedCrash",
    "CrashPointOutcome",
    "CrashPointResult",
    "CrashPointRunner",
    "get_shim",
    "install",
    "installed",
]

#: Every durability-critical call site routed through the shim. A call
#: with a site not listed here raises :class:`FaultError` — adding a
#: new durable write to the codebase therefore *requires* registering
#: it, and the crash-point fuzzer asserts it covers this exact set.
SITES: Tuple[str, ...] = (
    "sinks.atomic.write",
    "sinks.atomic.fsync",
    "sinks.atomic.replace",
    "sinks.dir.fsync",
    "ledger.append.write",
    "ledger.append.fsync",
    "ledger.compact.write",
    "ledger.compact.fsync",
    "ledger.compact.replace",
    "store.publish.write",
    "store.publish.fsync",
    "store.publish.link",
    "lease.claim.write",
    "lease.renew.write",
    "lease.renew.replace",
    "lease.reclaim.rename",
)

_SITE_SET: FrozenSet[str] = frozenset(SITES)

#: Which shimmed operation each site performs (documentation + test
#: cross-check; the shim itself keys behavior on the op, not the site).
SITE_OPS: Dict[str, str] = {
    "sinks.atomic.write": "write",
    "sinks.atomic.fsync": "fsync",
    "sinks.atomic.replace": "replace",
    "sinks.dir.fsync": "fsync",
    "ledger.append.write": "write",
    "ledger.append.fsync": "fsync",
    "ledger.compact.write": "write",
    "ledger.compact.fsync": "fsync",
    "ledger.compact.replace": "replace",
    "store.publish.write": "write",
    "store.publish.fsync": "fsync",
    "store.publish.link": "link",
    "lease.claim.write": "write",
    "lease.renew.write": "write",
    "lease.renew.replace": "replace",
    "lease.reclaim.rename": "rename",
}


def _check_site(site: str) -> None:
    if site not in _SITE_SET:
        raise FaultError(
            f"unknown I/O shim site {site!r}; register it in "
            "repro.faults.io.SITES so fault and crash-point coverage "
            "stay complete"
        )


class IOShim:
    """Validating passthrough: performs each operation verbatim.

    ``active`` is False only on this default shim; call sites with a
    per-byte cost (wrapping a file handle around every ``write``) may
    consult it and skip the wrap entirely, keeping the disabled path
    at its pre-shim cost. ``fsync``/``replace``/``link``/``rename``
    are one call per durable artifact and always route through.
    """

    active: bool = False

    def write(self, handle: TextIO, text: str, site: str) -> None:
        _check_site(site)
        handle.write(text)

    def fsync(self, fd: int, site: str) -> None:
        _check_site(site)
        os.fsync(fd)

    def replace(
        self,
        src: Union[str, Path],
        dst: Union[str, Path],
        site: str,
    ) -> None:
        _check_site(site)
        os.replace(src, dst)

    def link(
        self,
        src: Union[str, Path],
        dst: Union[str, Path],
        site: str,
    ) -> None:
        _check_site(site)
        os.link(src, dst)

    def rename(
        self,
        src: Union[str, Path],
        dst: Union[str, Path],
        site: str,
    ) -> None:
        _check_site(site)
        os.rename(src, dst)


_DEFAULT = IOShim()
_SHIM: IOShim = _DEFAULT


def get_shim() -> IOShim:
    """The process-wide shim all durability call sites route through."""
    return _SHIM


def install(shim: Optional[IOShim]) -> IOShim:
    """Install ``shim`` process-wide (None restores the passthrough).

    Returns the previously installed shim so callers can restore it.
    """
    global _SHIM
    previous = _SHIM
    _SHIM = shim if shim is not None else _DEFAULT
    return previous


@contextmanager
def installed(shim: IOShim) -> Iterator[IOShim]:
    """Install ``shim`` for the duration of the block, then restore."""
    previous = install(shim)
    try:
        yield shim
    finally:
        install(previous)


class SimulatedCrash(BaseException):
    """A hard crash at a shimmed I/O operation.

    Derives from :class:`BaseException` so job-level ``except
    Exception`` retry/quarantine machinery never swallows it — a
    simulated power cut must unwind the whole campaign, exactly like
    SIGKILL ends the process. Carries the operation, site, global op
    index, and a byte-level snapshot of the store tree taken at the
    instant of the crash; the fuzzer restores the snapshot *after*
    unwinding so cleanup handlers (tmp unlinks, buffered flushes on
    close) that a real kill would skip are undone.
    """

    def __init__(
        self,
        op: str,
        site: str,
        index: int,
        snapshot: Dict[str, Optional[bytes]],
    ) -> None:
        super().__init__(f"simulated crash at op {index} ({op} @ {site})")
        self.op = op
        self.site = site
        self.index = index
        self.snapshot = snapshot


class RecordingShim(IOShim):
    """Performs every operation and records the (op, site) trace.

    The trace enumerates the crash points of a campaign: the fuzzer
    runs once under this shim to learn how many shimmed operations a
    clean run performs and which sites they hit.
    """

    active = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ops: List[Tuple[str, str]] = []
        self.sites_seen: set = set()

    def _record(self, op: str, site: str) -> None:
        with self._lock:
            self.ops.append((op, site))
            self.sites_seen.add(site)

    def write(self, handle: TextIO, text: str, site: str) -> None:
        self._record("write", site)
        super().write(handle, text, site)

    def fsync(self, fd: int, site: str) -> None:
        self._record("fsync", site)
        super().fsync(fd, site)

    def replace(self, src, dst, site: str) -> None:
        self._record("replace", site)
        super().replace(src, dst, site)

    def link(self, src, dst, site: str) -> None:
        self._record("link", site)
        super().link(src, dst, site)

    def rename(self, src, dst, site: str) -> None:
        self._record("rename", site)
        super().rename(src, dst, site)


def _snapshot_tree(root: Union[str, Path]) -> Dict[str, Optional[bytes]]:
    """Byte-level snapshot of every file and directory under ``root``.

    Maps relative paths to file bytes (None for directories). Taken at
    the instant of a simulated crash so the tree can be restored after
    Python's orderly unwinding has run cleanup a real crash would skip.
    """
    root = Path(root)
    snapshot: Dict[str, Optional[bytes]] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        base = Path(dirpath)
        for name in dirnames:
            snapshot[os.path.relpath(base / name, root)] = None
        for name in filenames:
            path = base / name
            try:
                snapshot[os.path.relpath(path, root)] = path.read_bytes()
            except OSError:  # pragma: no cover - racing unlink
                pass
    return snapshot


def _restore_tree(
    root: Union[str, Path], snapshot: Dict[str, Optional[bytes]]
) -> None:
    """Reset ``root`` to exactly the snapshotted files and bytes."""
    root = Path(root)
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)
    for rel in sorted(snapshot):
        path = root / rel
        data = snapshot[rel]
        if data is None:
            path.mkdir(parents=True, exist_ok=True)
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(data)


class CrashPointShim(IOShim):
    """Crashes hard at the ``crash_at``-th shimmed operation.

    ``variant`` selects what the dying operation leaves behind:

    * ``"after"`` — the operation completes (writes are flushed to the
      OS) and the process dies immediately afterwards;
    * ``"torn"`` — a write persists only a prefix of its record before
      the process dies (non-write operations fall back to ``after``).

    The crash is a :class:`SimulatedCrash` carrying a snapshot of
    ``root`` taken at the moment of death.
    """

    active = True

    def __init__(
        self,
        root: Union[str, Path],
        crash_at: int,
        variant: str = "after",
    ) -> None:
        if variant not in ("after", "torn"):
            raise FaultError(
                f"unknown crash variant {variant!r} "
                "(expected 'after' or 'torn')"
            )
        self.root = Path(root)
        self.crash_at = int(crash_at)
        self.variant = variant
        self._lock = threading.Lock()
        self._count = 0

    def _tick(self) -> Tuple[int, bool]:
        with self._lock:
            index = self._count
            self._count += 1
            return index, index == self.crash_at

    def _crash(self, op: str, site: str, index: int) -> None:
        raise SimulatedCrash(op, site, index, _snapshot_tree(self.root))

    def write(self, handle: TextIO, text: str, site: str) -> None:
        _check_site(site)
        index, crash = self._tick()
        if not crash:
            handle.write(text)
            return
        if self.variant == "torn" and text:
            handle.write(text[: max(1, len(text) // 2)])
        else:
            handle.write(text)
        try:
            handle.flush()
        except OSError:  # pragma: no cover - defensive
            pass
        self._crash("write", site, index)

    def fsync(self, fd: int, site: str) -> None:
        _check_site(site)
        index, crash = self._tick()
        os.fsync(fd)
        if crash:
            self._crash("fsync", site, index)

    def replace(self, src, dst, site: str) -> None:
        _check_site(site)
        index, crash = self._tick()
        os.replace(src, dst)
        if crash:
            self._crash("replace", site, index)

    def link(self, src, dst, site: str) -> None:
        _check_site(site)
        index, crash = self._tick()
        os.link(src, dst)
        if crash:
            self._crash("link", site, index)

    def rename(self, src, dst, site: str) -> None:
        _check_site(site)
        index, crash = self._tick()
        os.rename(src, dst)
        if crash:
            self._crash("rename", site, index)


@dataclass(frozen=True)
class InjectedIOFault:
    """One storage fault the injector fired (for reports and tests)."""

    kind: str
    op: str
    site: str
    index: int


#: Which fault kinds can fire on which shimmed operation.
_OP_KINDS: Dict[str, Tuple[str, ...]] = {
    "write": ("io_enospc", "io_eio", "io_torn_write"),
    "fsync": ("io_fsync_lie", "io_eio"),
    "replace": ("io_rename_lost", "io_eio"),
    "link": ("io_rename_lost", "io_eio"),
    "rename": ("io_rename_lost", "io_eio"),
}


class IOFaultInjector(IOShim):
    """Seeded, schedule-driven executor for the ``io_*`` fault kinds.

    Mirrors the discipline of :class:`repro.faults.injector.
    FaultInjector`: each spec gets its own RNG stream derived from the
    schedule seed and the spec's position (or the spec's pinned
    ``seed``), the global shimmed-operation index plays the role of
    the epoch for ``start_epoch``/``end_epoch`` windows, a draw is
    consumed per applicable operation per spec, and ``rate >= 1.0``
    fires without consuming a draw. Non-``io_*`` specs in the schedule
    are ignored, so one mixed schedule can drive every layer at once.

    Fault behaviors:

    * ``io_enospc`` / ``io_eio`` — raise :class:`OSError` with the
      matching errno before the operation happens;
    * ``io_torn_write`` — persist a seeded prefix of the record, then
      raise ``EIO``;
    * ``io_rename_lost`` — silently skip the replace/link/rename (the
      caller believes it succeeded; the directory entry never lands);
    * ``io_fsync_lie`` — silently skip the fsync (durability promised
      but not delivered).
    """

    active = True

    def __init__(self, schedule: FaultSchedule) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                "IOFaultInjector needs a FaultSchedule, got "
                f"{type(schedule).__name__}"
            )
        self.schedule = schedule
        self._lock = threading.Lock()
        self._index = 0
        self.fired: List[InjectedIOFault] = []
        self.counts: Dict[str, int] = {}
        self._streams: List[Tuple[FaultSpec, random.Random]] = []
        for position, spec in enumerate(schedule.specs):
            if spec.kind not in IO_FAULTS:
                continue
            seed = (
                spec.seed
                if spec.seed is not None
                else schedule.seed * 1_000_003 + position
            )
            self._streams.append((spec, random.Random(seed)))

    def _fire(
        self, op: str, site: str
    ) -> Tuple[int, Optional[FaultSpec], Optional[random.Random]]:
        """Advance the op index; return the first spec that fires."""
        with self._lock:
            index = self._index
            self._index += 1
            for spec, rng in self._streams:
                if spec.kind not in _OP_KINDS[op]:
                    continue
                if not spec.applies_to(index):
                    continue
                if spec.rate >= 1.0:
                    fires = True
                else:
                    fires = rng.random() < spec.rate
                if fires:
                    self.fired.append(
                        InjectedIOFault(spec.kind, op, site, index)
                    )
                    self.counts[spec.kind] = self.counts.get(spec.kind, 0) + 1
                    return index, spec, rng
            return index, None, None

    def write(self, handle: TextIO, text: str, site: str) -> None:
        _check_site(site)
        index, spec, rng = self._fire("write", site)
        if spec is None:
            handle.write(text)
            return
        if spec.kind == "io_enospc":
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC at {site} (op {index})"
            )
        if spec.kind == "io_eio":
            raise OSError(errno.EIO, f"injected EIO at {site} (op {index})")
        # io_torn_write: persist a seeded prefix, then fail the write.
        assert rng is not None
        cut = rng.randrange(0, max(1, len(text)))
        if cut:
            handle.write(text[:cut])
            try:
                handle.flush()
            except OSError:  # pragma: no cover - defensive
                pass
        raise OSError(
            errno.EIO, f"injected torn write at {site} (op {index})"
        )

    def fsync(self, fd: int, site: str) -> None:
        _check_site(site)
        index, spec, _rng = self._fire("fsync", site)
        if spec is None:
            os.fsync(fd)
            return
        if spec.kind == "io_eio":
            raise OSError(errno.EIO, f"injected EIO at {site} (op {index})")
        # io_fsync_lie: report success without syncing.

    def _entry_op(self, op: str, perform: Callable[[], None], site: str) -> None:
        _check_site(site)
        index, spec, _rng = self._fire(op, site)
        if spec is None:
            perform()
            return
        if spec.kind == "io_eio":
            raise OSError(errno.EIO, f"injected EIO at {site} (op {index})")
        # io_rename_lost: the directory entry silently never lands.

    def replace(self, src, dst, site: str) -> None:
        self._entry_op("replace", lambda: os.replace(src, dst), site)

    def link(self, src, dst, site: str) -> None:
        self._entry_op("link", lambda: os.link(src, dst), site)

    def rename(self, src, dst, site: str) -> None:
        self._entry_op("rename", lambda: os.rename(src, dst), site)


@dataclass(frozen=True)
class CrashPointOutcome:
    """One crash point's verdict: did resume converge byte-identically?"""

    index: int
    variant: str
    op: str
    site: str
    crashed: bool
    identical: bool
    detail: str = ""


@dataclass
class CrashPointResult:
    """Everything a fuzzing sweep learned about a campaign."""

    ops: List[Tuple[str, str]]
    sites_covered: FrozenSet[str]
    outcomes: List[CrashPointOutcome] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return all(o.identical for o in self.outcomes)

    def failures(self) -> List[CrashPointOutcome]:
        return [o for o in self.outcomes if not o.identical]


class CrashPointRunner:
    """Enumerate every shimmed operation of a campaign and crash there.

    ``campaign(root)`` runs the campaign under ``root`` from whatever
    state ``root`` holds (fresh or mid-crash — i.e. it must be the
    resumable entry point); ``report(root)`` returns the path of the
    finalized report whose bytes define convergence; ``repair(root)``
    (optional) is invoked between crash and resume — typically
    ``repro fsck --repair`` — and must be a no-op on a clean store;
    ``resume`` defaults to ``campaign``.

    :meth:`run` first executes one clean campaign under a
    :class:`RecordingShim` to learn the operation trace and reference
    report bytes, then for every operation index replays the campaign
    in a fresh directory under a :class:`CrashPointShim`, restores the
    crash snapshot after unwinding, repairs, resumes with the shim
    uninstalled, and compares the report byte-for-byte. Write
    operations are fuzzed twice — crash-after and torn-prefix.
    """

    def __init__(
        self,
        campaign: Callable[[Path], None],
        report: Callable[[Path], Path],
        repair: Optional[Callable[[Path], None]] = None,
        resume: Optional[Callable[[Path], None]] = None,
    ) -> None:
        self.campaign = campaign
        self.report = report
        self.repair = repair
        self.resume = resume or campaign

    def baseline(
        self, root: Union[str, Path]
    ) -> Tuple[List[Tuple[str, str]], FrozenSet[str], bytes]:
        """One clean run: the op trace, sites seen, and report bytes."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        shim = RecordingShim()
        with installed(shim):
            self.campaign(root)
        reference = Path(self.report(root)).read_bytes()
        return list(shim.ops), frozenset(shim.sites_seen), reference

    def _points(
        self, ops: Sequence[Tuple[str, str]]
    ) -> List[Tuple[int, str]]:
        points: List[Tuple[int, str]] = []
        for index, (op, _site) in enumerate(ops):
            points.append((index, "after"))
            if op == "write":
                points.append((index, "torn"))
        return points

    def run(
        self,
        base_dir: Union[str, Path],
        points: Optional[Sequence[Tuple[int, str]]] = None,
    ) -> CrashPointResult:
        """Fuzz every crash point (or the given subset) of the campaign."""
        base_dir = Path(base_dir)
        base_dir.mkdir(parents=True, exist_ok=True)
        ops, sites, reference = self.baseline(base_dir / "clean")
        result = CrashPointResult(ops=ops, sites_covered=sites)
        if points is None:
            points = self._points(ops)
        for index, variant in points:
            root = base_dir / f"cp{index:04d}{variant[0]}"
            root.mkdir(parents=True, exist_ok=True)
            shim = CrashPointShim(root, crash_at=index, variant=variant)
            crashed = False
            op, site = ops[index] if index < len(ops) else ("?", "?")
            try:
                with installed(shim):
                    self.campaign(root)
            except SimulatedCrash as crash:
                crashed = True
                op, site = crash.op, crash.site
                _restore_tree(root, crash.snapshot)
            if self.repair is not None:
                self.repair(root)
            if crashed:
                self.resume(root)
            actual = Path(self.report(root)).read_bytes()
            identical = actual == reference
            result.outcomes.append(
                CrashPointOutcome(
                    index=index,
                    variant=variant,
                    op=op,
                    site=site,
                    crashed=crashed,
                    identical=identical,
                    detail="" if identical else "report diverged",
                )
            )
        return result
