"""Deterministic fault injection for robustness studies.

The package splits *description* from *execution*: a
:class:`FaultSchedule` is a frozen, serializable description of what
goes wrong (which fault kinds, at what per-epoch rates, how severe,
over which epoch windows), and a :class:`FaultInjector` is the stateful
seeded executor a controller run drives. The same schedule + seed
always reproduces the same faults.

See ``docs/robustness.md`` for the fault taxonomy, the on-disk spec
format, and a campaign walkthrough.
"""

from repro.faults.campaign import CampaignResult, format_campaign_table, run_campaign
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.spec import (
    COUNTER_FAULTS,
    FAULT_KINDS,
    HOST_FAULTS,
    IO_FAULTS,
    MACHINE_FAULTS,
    RECONFIG_FAULTS,
    STORE_FAULTS,
    FaultSchedule,
    FaultSpec,
    mixed_schedule,
    noise_schedule,
)

__all__ = [
    "COUNTER_FAULTS",
    "FAULT_KINDS",
    "HOST_FAULTS",
    "IO_FAULTS",
    "MACHINE_FAULTS",
    "RECONFIG_FAULTS",
    "STORE_FAULTS",
    "CampaignResult",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "InjectedFault",
    "format_campaign_table",
    "mixed_schedule",
    "noise_schedule",
    "run_campaign",
]
