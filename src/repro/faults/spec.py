"""Fault taxonomy and declarative fault schedules.

A :class:`FaultSpec` describes *what* fails, *when*, and *how severely*;
a :class:`FaultSchedule` bundles several specs with one master seed so a
whole campaign is reproducible bit-for-bit. Specs are data, not
behaviour: :mod:`repro.faults.injector` interprets them at runtime.

Fault kinds (see ``docs/robustness.md`` for the full taxonomy):

=====================  ====================================================
Kind                   Effect when it fires
=====================  ====================================================
``counter_noise``      Multiplicative Gaussian noise (sigma = severity) on
                       every non-echo counter — the legacy
                       ``telemetry_noise`` behaviour as a fault kind.
``counter_dropout``    Each non-echo counter is lost with probability
                       ``severity``; a lost counter reads NaN (default) or
                       zero (``params: {"mode": "zero"}``).
``counter_saturation`` Each counter is pinned to its full-scale
                       plausibility bound with probability ``severity``
                       (a saturated/clipped hardware counter).
``counter_stale``      The whole counter vector is replaced by the
                       previous epoch's raw values (a missed sample
                       window replaying the old latch contents).
``reconfig_drop``      A commanded reconfiguration is silently not
                       applied; the hardware keeps its old configuration.
``reconfig_partial``   Each changed parameter independently fails to land
                       with probability ``severity`` (e.g. DVFS applies
                       but the cache resize doesn't).
``bandwidth_throttle`` Off-chip bandwidth is scaled by ``1 - severity``
                       for ``params: {"duration": N}`` epochs (transient
                       HBM contention/refresh storm).
``thermal_clamp``      The effective clock is capped at
                       ``params: {"clamp_mhz": f}`` for ``duration``
                       epochs (thermal DVFS clamp window).
``job_hang``           Host-level: a campaign job stalls for
                       ``params: {"seconds": s}`` before doing any work
                       (a wedged kernel/driver); the suite runner's
                       deadline watchdog is what catches it.
``job_crash``          Host-level: a campaign job dies mid-run with a
                       retryable error (a segfaulted worker, from the
                       supervisor's point of view).
``job_oom``            Host-level: a campaign job aborts under memory
                       pressure (:class:`MemoryError`); the suite runner
                       quarantines it immediately — rerunning the same
                       job at the same scale would just OOM again.
``lease_lost``         Fabric-level: a store worker's lease on the job it
                       is running vanishes mid-execution (an aggressive
                       reclaim, an operator ``rm``); the worker must
                       detect the loss and discard its partial output —
                       convergence is preserved by first-wins publishing.
``clock_skew``         Fabric-level: the claiming worker's wall clock is
                       offset by ``params: {"seconds": s}`` (positive or
                       negative), so the lease deadlines it writes and
                       reads disagree with its peers' — exercising early
                       reclaim and double-run harmlessness.
``io_enospc``          Storage-level: a durability-critical write fails
                       with ``ENOSPC`` (the disk filled up mid-campaign).
``io_eio``             Storage-level: a durability-critical write, fsync,
                       or rename fails with ``EIO`` (a dying disk or a
                       flaky network mount).
``io_torn_write``      Storage-level: a write persists only a prefix of
                       its record before failing — the torn line a crash
                       or torn page leaves behind; readers must skip or
                       quarantine it, never half-read it.
``io_rename_lost``     Storage-level: an ``os.replace``/``os.link``/
                       ``os.rename`` silently does not take effect (a
                       power cut rolled back the non-durable rename);
                       the temporary file is left as an orphan.
``io_fsync_lie``       Storage-level: ``fsync`` reports success without
                       syncing (lying volatile write caches), so code
                       must never treat an fsync return as proof beyond
                       what a checksum can verify.
=====================  ====================================================

The ``job_*`` kinds are interpreted by :mod:`repro.runner`, not by
the :class:`~repro.faults.injector.FaultInjector` — their window and
rate apply per campaign *job attempt* instead of per epoch. The
fabric kinds (``lease_lost``/``clock_skew``) are interpreted by
:mod:`repro.runner.store` workers, per claimed job. The storage kinds
(``io_*``) are interpreted by the :class:`repro.faults.io` shim, per
durability-critical I/O operation. A schedule may mix host-level,
fabric-level, storage-level, and hardware kinds; each layer consumes
its own.

``rate`` is the per-epoch probability that a spec fires inside its
``[start_epoch, end_epoch)`` window; a rate of 1.0 fires every epoch
*without consuming a random draw*, which is what lets the deprecated
``telemetry_noise`` shim reproduce its historical noise stream exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import FaultError
from repro.transmuter.config import CLOCKS_MHZ

__all__ = [
    "COUNTER_FAULTS",
    "RECONFIG_FAULTS",
    "MACHINE_FAULTS",
    "HOST_FAULTS",
    "STORE_FAULTS",
    "IO_FAULTS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "noise_schedule",
    "mixed_schedule",
]

COUNTER_FAULTS: Tuple[str, ...] = (
    "counter_noise",
    "counter_dropout",
    "counter_saturation",
    "counter_stale",
)
RECONFIG_FAULTS: Tuple[str, ...] = ("reconfig_drop", "reconfig_partial")
MACHINE_FAULTS: Tuple[str, ...] = ("bandwidth_throttle", "thermal_clamp")
#: Host-level kinds, interpreted per job attempt by ``repro.runner``.
HOST_FAULTS: Tuple[str, ...] = ("job_hang", "job_crash", "job_oom")
#: Fabric-level kinds, interpreted per claimed job by
#: ``repro.runner.store`` workers (kept out of ``HOST_FAULTS`` so the
#: supervisor's injector never mistakes a lease fault for a job crash).
STORE_FAULTS: Tuple[str, ...] = ("lease_lost", "clock_skew")
#: Storage-level kinds, interpreted per durability-critical I/O
#: operation by the :mod:`repro.faults.io` shim.
IO_FAULTS: Tuple[str, ...] = (
    "io_enospc",
    "io_eio",
    "io_torn_write",
    "io_rename_lost",
    "io_fsync_lie",
)

#: Every fault kind the framework understands (hardware + host level).
FAULT_KINDS: Tuple[str, ...] = (
    COUNTER_FAULTS
    + RECONFIG_FAULTS
    + MACHINE_FAULTS
    + HOST_FAULTS
    + STORE_FAULTS
    + IO_FAULTS
)

#: Allowed keys of ``FaultSpec.params`` per kind.
_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "counter_dropout": ("mode",),
    "bandwidth_throttle": ("duration",),
    "thermal_clamp": ("duration", "clamp_mhz"),
    "job_hang": ("seconds",),
    "clock_skew": ("seconds",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: what fails, when, and how severely.

    ``seed`` pins this spec's private random stream; when ``None`` the
    stream is derived from the schedule seed and the spec's position,
    so two specs of the same kind never share draws.
    """

    kind: str
    rate: float = 1.0
    severity: float = 1.0
    start_epoch: int = 0
    end_epoch: Optional[int] = None
    seed: Optional[int] = None
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if not isinstance(self.rate, (int, float)) or isinstance(
            self.rate, bool
        ):
            raise FaultError(f"fault rate must be a number, got {self.rate!r}")
        if not 0.0 <= float(self.rate) <= 1.0:
            raise FaultError(
                f"fault rate must be in [0, 1], got {self.rate!r}"
            )
        if not isinstance(self.severity, (int, float)) or isinstance(
            self.severity, bool
        ):
            raise FaultError(
                f"fault severity must be a number, got {self.severity!r}"
            )
        if not 0.0 < float(self.severity) <= 1.0:
            raise FaultError(
                f"fault severity must be in (0, 1], got {self.severity!r}"
            )
        if self.start_epoch < 0:
            raise FaultError(
                f"start_epoch must be non-negative, got {self.start_epoch}"
            )
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise FaultError(
                f"end_epoch ({self.end_epoch}) must be greater than "
                f"start_epoch ({self.start_epoch})"
            )
        allowed = _PARAM_KEYS.get(self.kind, ())
        for key in self.params:
            if key not in allowed:
                raise FaultError(
                    f"unknown param {key!r} for fault kind {self.kind!r}"
                )
        if self.kind == "counter_dropout":
            mode = self.params.get("mode", "nan")
            if mode not in ("nan", "zero"):
                raise FaultError(
                    f"counter_dropout mode must be 'nan' or 'zero', "
                    f"got {mode!r}"
                )
        if self.kind in MACHINE_FAULTS:
            duration = self.params.get("duration", 3)
            if not isinstance(duration, int) or duration < 1:
                raise FaultError(
                    f"duration must be a positive integer, got {duration!r}"
                )
        if self.kind == "thermal_clamp":
            clamp = self.params.get("clamp_mhz", 250.0)
            if clamp not in CLOCKS_MHZ:
                raise FaultError(
                    f"clamp_mhz must be one of {CLOCKS_MHZ}, got {clamp!r}"
                )
        if self.kind == "job_hang":
            seconds = self.params.get("seconds", 30.0)
            if (
                not isinstance(seconds, (int, float))
                or isinstance(seconds, bool)
                or seconds <= 0
            ):
                raise FaultError(
                    f"job_hang seconds must be a positive number, "
                    f"got {seconds!r}"
                )
        if self.kind == "clock_skew":
            seconds = self.params.get("seconds", 30.0)
            if (
                not isinstance(seconds, (int, float))
                or isinstance(seconds, bool)
                or seconds == 0
            ):
                raise FaultError(
                    f"clock_skew seconds must be a non-zero number "
                    f"(positive = fast clock, negative = slow), "
                    f"got {seconds!r}"
                )

    # ------------------------------------------------------------------
    def applies_to(self, epoch: int) -> bool:
        """Whether ``epoch`` lies inside this spec's active window."""
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch

    def scaled(self, factor: float) -> "FaultSpec":
        """Copy with the fire rate multiplied by ``factor`` (capped at 1)."""
        if factor < 0:
            raise FaultError(f"rate factor must be non-negative, got {factor}")
        return FaultSpec(
            kind=self.kind,
            rate=min(1.0, self.rate * factor),
            severity=self.severity,
            start_epoch=self.start_epoch,
            end_epoch=self.end_epoch,
            seed=self.seed,
            params=dict(self.params),
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (spec files, trace payloads)."""
        out: dict = {"kind": self.kind, "rate": self.rate}
        if self.severity != 1.0:
            out["severity"] = self.severity
        if self.start_epoch:
            out["start_epoch"] = self.start_epoch
        if self.end_epoch is not None:
            out["end_epoch"] = self.end_epoch
        if self.seed is not None:
            out["seed"] = self.seed
        if self.params:
            out["params"] = dict(self.params)
        return out

    @staticmethod
    def from_dict(raw: Mapping) -> "FaultSpec":
        """Parse one spec entry, rejecting unknown keys."""
        if not isinstance(raw, Mapping):
            raise FaultError(f"fault spec must be an object, got {raw!r}")
        known = (
            "kind",
            "rate",
            "severity",
            "start_epoch",
            "end_epoch",
            "seed",
            "params",
        )
        for key in raw:
            if key not in known:
                raise FaultError(f"unknown fault spec key {key!r}")
        if "kind" not in raw:
            raise FaultError("fault spec is missing the 'kind' key")
        return FaultSpec(
            kind=raw["kind"],
            rate=raw.get("rate", 1.0),
            severity=raw.get("severity", 1.0),
            start_epoch=raw.get("start_epoch", 0),
            end_epoch=raw.get("end_epoch"),
            seed=raw.get("seed"),
            params=dict(raw.get("params", {})),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A reproducible set of fault sources driving one run or campaign."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError(f"schedule seed must be an int, got {self.seed!r}")
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(
                    f"schedule entries must be FaultSpec, got {spec!r}"
                )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(spec.kind for spec in self.specs)

    def scaled(self, factor: float) -> "FaultSchedule":
        """Copy with every spec's rate multiplied by ``factor``."""
        return FaultSchedule(
            specs=tuple(spec.scaled(factor) for spec in self.specs),
            seed=self.seed,
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.as_dict() for spec in self.specs],
        }

    @staticmethod
    def from_dict(raw: Mapping) -> "FaultSchedule":
        """Parse ``{"seed": ..., "faults": [...]}``; strict on keys."""
        if not isinstance(raw, Mapping):
            raise FaultError(
                f"fault schedule must be an object, got {type(raw).__name__}"
            )
        for key in raw:
            if key not in ("seed", "faults"):
                raise FaultError(f"unknown fault schedule key {key!r}")
        if "faults" not in raw:
            raise FaultError("fault schedule is missing the 'faults' list")
        faults = raw["faults"]
        if not isinstance(faults, Iterable) or isinstance(faults, (str, bytes)):
            raise FaultError("'faults' must be a list of fault specs")
        return FaultSchedule(
            specs=tuple(FaultSpec.from_dict(entry) for entry in faults),
            seed=raw.get("seed", 0),
        )

    @staticmethod
    def from_file(path: Union[str, "object"]) -> "FaultSchedule":
        """Load a JSON spec file; every failure is a :class:`FaultError`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            raise FaultError(f"no such fault spec file: {path}") from None
        except IsADirectoryError:
            raise FaultError(f"{path} is a directory, not a spec file") from None
        except json.JSONDecodeError as exc:
            raise FaultError(f"malformed fault spec {path}: {exc}") from None
        except OSError as exc:
            raise FaultError(f"cannot read fault spec {path}: {exc}") from None
        return FaultSchedule.from_dict(raw)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
def noise_schedule(sigma: float, seed: int = 0) -> FaultSchedule:
    """The legacy ``telemetry_noise`` behaviour as a fault schedule.

    The single ``counter_noise`` spec fires every epoch (rate 1.0, so no
    fire draws are consumed) and pins its private stream to ``seed``,
    which makes the produced counter perturbations bit-identical to the
    historical ``SparseAdaptController(telemetry_noise=sigma,
    noise_seed=seed)`` stream.
    """
    if sigma <= 0:
        raise FaultError(f"noise sigma must be positive, got {sigma}")
    return FaultSchedule(
        specs=(
            FaultSpec(
                kind="counter_noise", rate=1.0, severity=sigma, seed=seed
            ),
        ),
        seed=seed,
    )


def mixed_schedule(
    rate: float,
    seed: int = 0,
    noise_sigma: float = 0.1,
    dropout_mode: str = "nan",
) -> FaultSchedule:
    """A representative all-kinds campaign schedule at one base rate.

    Every fault family is present: the counter faults fire independently
    at ``rate``, the reconfiguration faults at ``rate``, and the two
    transient machine events at ``rate / 2`` with short windows. Used by
    ``repro faults --mixed``, ``bench_robustness.py`` and the CI
    determinism guard.
    """
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"fault rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return FaultSchedule(specs=(), seed=seed)
    return FaultSchedule(
        specs=(
            FaultSpec("counter_noise", rate=rate, severity=noise_sigma),
            FaultSpec(
                "counter_dropout",
                rate=rate,
                severity=0.5,
                params={"mode": dropout_mode},
            ),
            FaultSpec("counter_saturation", rate=rate, severity=0.5),
            FaultSpec("counter_stale", rate=rate),
            FaultSpec("reconfig_drop", rate=rate),
            FaultSpec("reconfig_partial", rate=rate, severity=0.5),
            FaultSpec(
                "bandwidth_throttle",
                rate=rate / 2.0,
                severity=0.5,
                params={"duration": 3},
            ),
            FaultSpec(
                "thermal_clamp",
                rate=rate / 2.0,
                params={"duration": 3, "clamp_mhz": 250.0},
            ),
        ),
        seed=seed,
    )
