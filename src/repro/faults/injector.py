"""Deterministic runtime interpretation of a :class:`FaultSchedule`.

A :class:`FaultInjector` owns one private RNG stream per spec (derived
from the schedule seed and the spec position, or pinned by the spec's
own ``seed``), so adding, removing, or reordering unrelated specs never
perturbs another spec's draws, and the same schedule + seed always
produces the same faults on the same run.

The controller drives the injector at three points of every epoch:

1. :meth:`environment` — *before* the epoch is simulated: transient
   machine events (bandwidth throttle, thermal clamp) become an
   :class:`~repro.transmuter.machine.EpochEnvironment`;
2. :meth:`observe` — *after* the epoch: counter faults corrupt the
   telemetry the host reads;
3. :meth:`reconfig_failures` — at the decision boundary: which of the
   commanded parameter changes silently fail to land
   (:func:`repro.transmuter.reconfig.apply_transition` then reports the
   configuration the hardware actually reached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FaultError
from repro.faults.spec import (
    COUNTER_FAULTS,
    MACHINE_FAULTS,
    RECONFIG_FAULTS,
    FaultSchedule,
)
from repro.transmuter.config import RUNTIME_PARAMETERS, HardwareConfig
from repro.transmuter.counters import (
    ECHO_COUNTERS,
    PLAUSIBLE_BOUNDS,
    PerformanceCounters,
)
from repro.transmuter.machine import EpochEnvironment

__all__ = ["InjectedFault", "FaultInjector"]

#: Bandwidth is never throttled below this remaining fraction — a DRAM
#: channel in a refresh storm still makes forward progress.
MIN_BANDWIDTH_REMAINING = 0.05


@dataclass(frozen=True)
class InjectedFault:
    """One fault occurrence, for reporting and trace payloads."""

    epoch: int
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"epoch": self.epoch, "kind": self.kind, **self.detail}


class FaultInjector:
    """Stateful, seeded executor of one fault schedule."""

    def __init__(self, schedule: FaultSchedule) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                f"expected a FaultSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self._rngs = [
            np.random.default_rng(
                spec.seed
                if spec.seed is not None
                else [schedule.seed, index]
            )
            for index, spec in enumerate(schedule.specs)
        ]
        enumerated = list(enumerate(schedule.specs))
        self._counter_specs = [
            (i, s) for i, s in enumerated if s.kind in COUNTER_FAULTS
        ]
        self._reconfig_specs = [
            (i, s) for i, s in enumerated if s.kind in RECONFIG_FAULTS
        ]
        self._machine_specs = [
            (i, s) for i, s in enumerated if s.kind in MACHINE_FAULTS
        ]
        #: Machine-event windows: spec index -> first epoch *past* the window.
        self._active_until = {i: 0 for i, _ in self._machine_specs}
        self._previous_raw: Optional[Dict[str, float]] = None
        self.injected: List[InjectedFault] = []

    # ------------------------------------------------------------------
    @property
    def n_injected(self) -> int:
        return len(self.injected)

    def counts(self) -> Dict[str, int]:
        """Injected fault occurrences by kind."""
        out: Dict[str, int] = {}
        for fault in self.injected:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    def _fires(self, index: int, spec, epoch: int) -> bool:
        """Whether ``spec`` fires at ``epoch``; a rate of 1.0 burns no draw."""
        if not spec.applies_to(epoch):
            return False
        if spec.rate >= 1.0:
            return True
        return float(self._rngs[index].random()) < spec.rate

    def _record(self, epoch: int, kind: str, **detail) -> InjectedFault:
        fault = InjectedFault(epoch=epoch, kind=kind, detail=detail)
        self.injected.append(fault)
        return fault

    # ------------------------------------------------------------------
    # 1. Machine events (before the epoch runs)
    # ------------------------------------------------------------------
    def environment(self, epoch: int) -> Optional[EpochEnvironment]:
        """Transient machine conditions for this epoch, or ``None``.

        Call exactly once per epoch, in epoch order: event windows are
        stateful (a fired event stays active for its ``duration``), and
        new onset draws happen only outside an active window.
        """
        bandwidth_scale = 1.0
        clock_cap: Optional[float] = None
        for index, spec in self._machine_specs:
            active = epoch < self._active_until[index]
            if not active and self._fires(index, spec, epoch):
                duration = int(spec.params.get("duration", 3))
                self._active_until[index] = epoch + duration
                active = True
                self._record(epoch, spec.kind, duration=duration)
            if not active:
                continue
            if spec.kind == "bandwidth_throttle":
                remaining = max(
                    MIN_BANDWIDTH_REMAINING, 1.0 - spec.severity
                )
                bandwidth_scale = min(bandwidth_scale, remaining)
            else:  # thermal_clamp
                clamp = float(spec.params.get("clamp_mhz", 250.0))
                clock_cap = clamp if clock_cap is None else min(clock_cap, clamp)
        if bandwidth_scale == 1.0 and clock_cap is None:
            return None
        return EpochEnvironment(
            bandwidth_scale=bandwidth_scale, clock_cap_mhz=clock_cap
        )

    # ------------------------------------------------------------------
    # 2. Counter faults (the telemetry the host reads)
    # ------------------------------------------------------------------
    def observe(
        self, epoch: int, counters: PerformanceCounters
    ) -> Tuple[PerformanceCounters, List[InjectedFault]]:
        """The counter vector as the host sees it, plus faults fired.

        Specs apply in schedule order, so later specs compose on top of
        earlier ones. ``counter_stale`` replays the *raw* (pre-fault)
        vector of the previous epoch — the latch contents a missed
        sample window would return.
        """
        values = counters.as_dict()
        previous = self._previous_raw
        self._previous_raw = dict(values)
        fired: List[InjectedFault] = []
        for index, spec in self._counter_specs:
            if not self._fires(index, spec, epoch):
                continue
            rng = self._rngs[index]
            if spec.kind == "counter_noise":
                for name in list(values):
                    if name in ECHO_COUNTERS:
                        continue
                    factor = 1.0 + rng.normal(0.0, spec.severity)
                    values[name] = max(0.0, values[name] * factor)
                fired.append(
                    self._record(epoch, spec.kind, sigma=spec.severity)
                )
            elif spec.kind == "counter_dropout":
                mode = spec.params.get("mode", "nan")
                lost = [
                    name
                    for name in values
                    if name not in ECHO_COUNTERS
                    and float(rng.random()) < spec.severity
                ]
                for name in lost:
                    values[name] = float("nan") if mode == "nan" else 0.0
                if lost:
                    fired.append(
                        self._record(
                            epoch, spec.kind, counters=lost, mode=mode
                        )
                    )
            elif spec.kind == "counter_saturation":
                pinned = [
                    name
                    for name in values
                    if float(rng.random()) < spec.severity
                ]
                for name in pinned:
                    values[name] = PLAUSIBLE_BOUNDS[name][1]
                if pinned:
                    fired.append(
                        self._record(epoch, spec.kind, counters=pinned)
                    )
            else:  # counter_stale
                if previous is not None:
                    values = dict(previous)
                    fired.append(self._record(epoch, spec.kind))
        if not fired:
            return counters, fired
        return PerformanceCounters(**values), fired

    # ------------------------------------------------------------------
    # 3. Reconfiguration faults (the command/apply boundary)
    # ------------------------------------------------------------------
    def reconfig_failures(
        self,
        epoch: int,
        current: HardwareConfig,
        target: HardwareConfig,
        attempt: int = 0,
    ) -> Tuple[str, ...]:
        """Commanded parameter changes that silently fail to land.

        Each call is one command attempt; a hardened controller's
        read-back retry calls again with ``attempt`` incremented and
        gets a fresh draw (a transient apply failure can succeed on
        retry; a persistent one keeps failing).
        """
        changed = [
            name
            for name in RUNTIME_PARAMETERS
            if current.get(name) != target.get(name)
        ]
        if not changed:
            return ()
        dropped: set = set()
        for index, spec in self._reconfig_specs:
            if not self._fires(index, spec, epoch):
                continue
            rng = self._rngs[index]
            if spec.kind == "reconfig_drop":
                failed = list(changed)
            else:  # reconfig_partial
                failed = [
                    name
                    for name in changed
                    if float(rng.random()) < spec.severity
                ]
            if failed:
                dropped.update(failed)
                self._record(
                    epoch,
                    spec.kind,
                    parameters=failed,
                    attempt=attempt,
                )
        return tuple(name for name in RUNTIME_PARAMETERS if name in dropped)
