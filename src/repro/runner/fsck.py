"""``repro fsck``: scan and repair durable campaign state.

A store's correctness backbone is ``results/`` — every published group
carries a sha256 trailer, the canonical ledger is reconstructible from
``store.json`` plus the groups, and leases are advisory. That makes a
*self-healing* checker possible: anything damaged can either be
verified intact, rebuilt from the backbone, or quarantined back to
open so workers deterministically re-run it. Nothing is ever
half-read silently.

Two modes, chosen by the target path:

* **store mode** (a directory holding ``store.json``) — checks
  crashed-write tmp residue, every result group (parse + trailer +
  terminal record), every lease file (torn / dangling / expired /
  stale), the canonical ledger (header, torn lines, trailer), and the
  ledger↔results cross-reference (a terminal ledger row whose group
  vanished).
* **ledger mode** (a JSONL file) — header, torn lines, checksum
  trailer, and sibling tmp residue.

``repair=True`` applies the per-finding repair: residue and dead
leases are unlinked, damaged groups move to ``fsck-quarantine/`` (the
job reopens), damaged ledgers are rewritten through the existing
compaction path or rebuilt header-only from ``store.json``, and
missing groups are republished from the canonical ledger's terminal
row. Repair assumes a *quiesced* store — run it only when no worker
is active, exactly like fsck on an unmounted filesystem.

Exit-code contract (:meth:`FsckReport.exit_code`): 0 clean, 1
corruption found that repair cannot (or did not) fix, 3 repairable
damage found without ``--repair``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError, StorageError
from repro.runner.ledger import (
    LEDGER_VERSION,
    TERMINAL_TYPES,
    RunLedger,
    compact_ledger,
    read_ledger_records,
    verify_trailer,
)

__all__ = [
    "Finding",
    "FsckReport",
    "run_fsck",
    "format_fsck_report",
]

#: Where repair moves damaged artifacts inside a store.
QUARANTINE_DIR = "fsck-quarantine"


@dataclass
class Finding:
    """One piece of detected damage and what became of it."""

    kind: str
    path: str
    detail: str
    repairable: bool
    repaired: bool = False
    action: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "repairable": self.repairable,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """Everything one scan (and optional repair pass) found."""

    target: str
    mode: str  # "store" | "ledger"
    repair: bool
    findings: List[Finding] = field(default_factory=list)
    checked: Dict[str, int] = field(default_factory=dict)

    def add(
        self,
        kind: str,
        path: Union[str, Path],
        detail: str,
        repairable: bool,
    ) -> Finding:
        finding = Finding(kind, str(path), detail, repairable)
        self.findings.append(finding)
        return finding

    @property
    def clean(self) -> bool:
        return not self.findings

    def unrepaired(self) -> List[Finding]:
        return [f for f in self.findings if not f.repaired]

    def exit_code(self) -> int:
        """The unified CLI contract: 0 clean / 1 corruption that repair
        cannot or did not fix / 3 repairable damage without --repair."""
        if not self.findings:
            return 0
        if self.repair:
            return 1 if any(
                not f.repaired for f in self.findings
            ) else 0
        if any(f.repairable for f in self.findings):
            return 3
        return 1

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "mode": self.mode,
            "repair": self.repair,
            "clean": self.clean,
            "exit_code": self.exit_code(),
            "checked": dict(sorted(self.checked.items())),
            "findings": [f.as_dict() for f in self.findings],
        }


# ---------------------------------------------------------------------------
# Repair plumbing
# ---------------------------------------------------------------------------
def _quarantine(root: Path, path: Path) -> Path:
    """Move a damaged artifact into ``<root>/fsck-quarantine/``."""
    pen = root / QUARANTINE_DIR
    pen.mkdir(exist_ok=True)
    dest = pen / path.name
    counter = 0
    while dest.exists():
        counter += 1
        dest = pen / f"{path.name}.{counter}"
    path.rename(dest)
    return dest


def _unlink(finding: Finding, path: Path) -> None:
    try:
        path.unlink()
    except OSError as exc:  # pragma: no cover - racing writer
        finding.action = f"unlink failed: {exc}"
        return
    finding.repaired = True
    finding.action = "unlinked"


# ---------------------------------------------------------------------------
# Ledger checks (shared by both modes)
# ---------------------------------------------------------------------------
def _scan_ledger_file(
    report: FsckReport,
    path: Path,
    expect_plan_key: Optional[str] = None,
) -> dict:
    """Scan one ledger file; returns ``{header, records, findings}``.

    Appends findings to ``report`` but performs no repair — the caller
    owns repair because the right fix differs by mode (a store can
    rebuild a headerless ledger from ``store.json``; a bare ledger
    cannot).
    """
    out: dict = {"header": None, "records": [], "torn": 0}
    try:
        records, torn = read_ledger_records(path)
    except ConfigError as exc:
        report.add(
            "ledger_unreadable", path, str(exc), repairable=False
        )
        return out
    out["records"] = records
    out["torn"] = torn
    report.checked["ledger_records"] = (
        report.checked.get("ledger_records", 0) + len(records)
    )
    header = next(
        (r for r in records if r.get("type") == "header"), None
    )
    out["header"] = header
    if header is None:
        report.add(
            "ledger_headerless",
            path,
            "no header record survives; resume would refuse this ledger",
            # A store can rebuild its canonical ledger header from
            # store.json; a bare ledger has no source of truth left.
            repairable=expect_plan_key is not None,
        )
        return out
    if header.get("version") != LEDGER_VERSION:
        report.add(
            "ledger_version",
            path,
            f"unsupported ledger version {header.get('version')!r}",
            repairable=False,
        )
    if (
        expect_plan_key is not None
        and header.get("plan_key") != expect_plan_key
    ):
        report.add(
            "ledger_foreign",
            path,
            "header plan_key does not match the store registration",
            repairable=False,
        )
    if torn:
        report.add(
            "ledger_torn",
            path,
            f"{torn} damaged line(s) skipped on load",
            repairable=True,
        )
    trailer = verify_trailer(path)
    if trailer["present"] and not trailer["ok"]:
        report.add(
            "ledger_trailer_mismatch",
            path,
            "checksum trailer does not match the preceding bytes",
            repairable=True,
        )
    return out


def _repair_ledger(
    report: FsckReport,
    path: Path,
    store=None,
) -> None:
    """Apply the ledger repairs recorded in ``report`` for ``path``."""
    mine = [
        f
        for f in report.findings
        if f.path == str(path) and not f.repaired
    ]
    headerless = [f for f in mine if f.kind == "ledger_headerless"]
    rewritable = [
        f
        for f in mine
        if f.kind in ("ledger_torn", "ledger_trailer_mismatch")
    ]
    if headerless and store is not None:
        # The canonical ledger is reconstructible: results/ holds every
        # settled group and finalize re-merges idempotently, so a
        # header-only rebuild loses nothing.
        damaged = _quarantine(store.root, path)
        RunLedger(
            path,
            plan_key=store.plan_key,
            plan_name=store.plan_name,
            exclusive=True,
            header_extra={"jobs": store.n_jobs, "store": True},
        ).close()
        for f in headerless:
            f.repaired = True
            f.action = f"quarantined to {damaged.name}; header rebuilt"
        for f in rewritable:
            # The damaged bytes went to quarantine with the old file.
            f.repaired = True
            f.action = "superseded by header rebuild"
        return
    if rewritable:
        try:
            stats = compact_ledger(path)
        except ConfigError as exc:
            for f in rewritable:
                f.action = f"compaction failed: {exc}"
            return
        for f in rewritable:
            f.repaired = True
            f.action = (
                f"compacted to {stats['records_after']} records "
                f"(sha256 {stats['sha256'][:12]}…)"
            )


# ---------------------------------------------------------------------------
# Residue (crashed-write tmp orphans)
# ---------------------------------------------------------------------------
def _scan_residue(
    report: FsckReport,
    directories: List[Path],
    prefix: Optional[str] = None,
) -> None:
    from repro.runner.store import _RESIDUE_RE

    for directory in directories:
        try:
            entries = sorted(directory.iterdir())
        except OSError:
            continue
        for entry in entries:
            if not _RESIDUE_RE.search(entry.name):
                continue
            if prefix is not None and not entry.name.startswith(prefix):
                continue  # unrelated residue is not ours to judge
            report.checked["tmp_orphans"] = (
                report.checked.get("tmp_orphans", 0) + 1
            )
            finding = report.add(
                "tmp_orphan",
                entry,
                "crashed-write residue (never committed)",
                repairable=True,
            )
            if report.repair:
                _unlink(finding, entry)


# ---------------------------------------------------------------------------
# Store mode
# ---------------------------------------------------------------------------
def _scan_store(report: FsckReport, root: Path) -> None:
    from repro.runner.lease import LeaseManager
    from repro.runner.store import FINALIZE_KEY, ExperimentStore

    try:
        store = ExperimentStore.attach(root)
    except ConfigError as exc:
        report.add("store_unreadable", root, str(exc), repairable=False)
        return

    _scan_residue(
        report, [store.root, store.results_dir, store.leases_dir]
    )

    # -- result groups ----------------------------------------------------
    try:
        group_files = sorted(store.results_dir.glob("*.jsonl"))
    except OSError:  # pragma: no cover - defensive
        group_files = []
    for path in group_files:
        key = path.name[: -len(".jsonl")]
        report.checked["groups"] = report.checked.get("groups", 0) + 1
        if key not in store.jobs:
            finding = report.add(
                "group_foreign",
                path,
                "result group for a job not in this store's grid",
                repairable=True,
            )
        else:
            try:
                records = store.read_result(key)
            except StorageError as exc:
                finding = report.add(
                    "group_corrupt", path, str(exc), repairable=True
                )
            else:
                terminal = any(
                    r.get("type") in TERMINAL_TYPES
                    and r.get("key") == key
                    for r in records or ()
                )
                if terminal:
                    continue
                finding = report.add(
                    "group_no_terminal",
                    path,
                    "group parses but holds no terminal record for "
                    "its own key",
                    repairable=True,
                )
        if report.repair:
            dest = _quarantine(store.root, path)
            finding.repaired = True
            finding.action = (
                f"quarantined to {dest.name}; job reopened"
            )

    # -- leases -----------------------------------------------------------
    manager = LeaseManager(store.leases_dir)
    now = manager.now()
    try:
        lease_files = sorted(store.leases_dir.glob("*.json"))
    except OSError:  # pragma: no cover - defensive
        lease_files = []
    for path in lease_files:
        report.checked["leases"] = report.checked.get("leases", 0) + 1
        lease = manager._read_path(path)
        if lease is None:
            continue  # vanished under us (racing release)
        if lease.owner == "?torn":
            finding = report.add(
                "lease_torn",
                path,
                "lease file is unparseable (crash mid-claim)",
                repairable=True,
            )
        elif path.stem != FINALIZE_KEY and store.has_result(path.stem):
            finding = report.add(
                "lease_dangling",
                path,
                f"job already published a result "
                f"(owner {lease.owner})",
                repairable=True,
            )
        elif now >= lease.deadline:
            finding = report.add(
                "lease_expired",
                path,
                f"deadline passed {now - lease.deadline:.1f}s ago "
                f"(owner {lease.owner})",
                repairable=True,
            )
        else:
            finding = report.add(
                "lease_stale",
                path,
                f"unexpired lease without a result (owner "
                f"{lease.owner}); repair assumes a quiesced store",
                repairable=True,
            )
        if report.repair:
            _unlink(finding, path)

    # -- canonical ledger -------------------------------------------------
    ledger_path = store.ledger_path
    if not ledger_path.exists():
        finding = report.add(
            "ledger_missing",
            ledger_path,
            "canonical ledger absent (crash between registration "
            "steps); rebuildable from store.json",
            repairable=True,
        )
        if report.repair:
            RunLedger(
                ledger_path,
                plan_key=store.plan_key,
                plan_name=store.plan_name,
                exclusive=True,
                header_extra={"jobs": store.n_jobs, "store": True},
            ).close()
            finding.repaired = True
            finding.action = "header rebuilt from store.json"
        ledger_records: List[dict] = []
    else:
        scanned = _scan_ledger_file(
            report, ledger_path, expect_plan_key=store.plan_key
        )
        ledger_records = scanned["records"]
        if report.repair:
            _repair_ledger(report, ledger_path, store=store)

    # -- ledger <-> results cross-reference -------------------------------
    terminals: Dict[str, dict] = {}
    for record in ledger_records:
        if record.get("type") in TERMINAL_TYPES:
            key = record.get("key")
            if isinstance(key, str):
                terminals.setdefault(key, record)
    for key, record in sorted(terminals.items()):
        if key not in store.jobs or store.has_result(key):
            continue
        finding = report.add(
            "result_missing",
            store.result_path(key),
            "ledger holds a terminal row but the result group is "
            "gone; republishable from the ledger",
            repairable=True,
        )
        if report.repair:
            if store.publish(key, [record]):
                finding.repaired = True
                finding.action = "republished from ledger terminal row"
            else:  # pragma: no cover - racing publisher
                finding.action = "a concurrent publisher beat us"


# ---------------------------------------------------------------------------
# Ledger mode
# ---------------------------------------------------------------------------
def _scan_bare_ledger(report: FsckReport, path: Path) -> None:
    _scan_residue(report, [path.parent], prefix=path.name)
    _scan_ledger_file(report, path)
    if report.repair:
        _repair_ledger(report, path, store=None)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def run_fsck(
    target: Union[str, Path], repair: bool = False
) -> FsckReport:
    """Scan (and with ``repair`` fix) a store directory or ledger file.

    Raises :class:`~repro.errors.ConfigError` when ``target`` is
    neither — CLI callers funnel that into the one-line ``error:``
    contract.
    """
    target = Path(target)
    if target.is_dir():
        if not (target / "store.json").is_file():
            raise ConfigError(
                f"{target} is not an experiment store "
                "(missing store.json)"
            )
        report = FsckReport(
            target=str(target), mode="store", repair=repair
        )
        _scan_store(report, target)
        return report
    if target.is_file():
        report = FsckReport(
            target=str(target), mode="ledger", repair=repair
        )
        _scan_bare_ledger(report, target)
        return report
    raise ConfigError(
        f"no store directory or ledger file at {target}"
    )


def format_fsck_report(report: FsckReport) -> str:
    """Human-readable fsck summary."""
    lines = [
        f"fsck {report.mode} {report.target}"
        + (" (repair)" if report.repair else ""),
    ]
    checked = ", ".join(
        f"{count} {name}"
        for name, count in sorted(report.checked.items())
    )
    lines.append(f"  checked: {checked or 'nothing'}")
    if report.clean:
        lines.append("  clean: no damage found")
        return "\n".join(lines)
    for finding in report.findings:
        status = (
            "repaired"
            if finding.repaired
            else ("repairable" if finding.repairable else "UNREPAIRABLE")
        )
        lines.append(
            f"  [{status}] {finding.kind}: {finding.path}"
        )
        lines.append(f"      {finding.detail}")
        if finding.action:
            lines.append(f"      -> {finding.action}")
    n_repaired = sum(1 for f in report.findings if f.repaired)
    lines.append(
        f"  {len(report.findings)} finding(s), {n_repaired} repaired"
        f" -> exit {report.exit_code()}"
    )
    if report.exit_code() == 3:
        lines.append("  run again with --repair to fix")
    return "\n".join(lines)
