"""Worker-side execution of campaign shards.

Parallel campaigns cannot ship closures to child processes, so the
unit that crosses the process boundary is a :class:`PortableJob`: a
JSON-native description (kind + payload) that each worker rebuilds
into a live :class:`~repro.runner.executor.Job` with
:func:`build_job`. Three kinds exist:

* ``evaluate`` — the scientific workload: a
  :class:`~repro.runner.plan.JobSpec` dict, evaluated through the
  experiment harness exactly as a serial ``repro suite-run`` would;
* ``sleep`` — a deterministic timed job (tests and the workers-speedup
  benchmark use it to measure scheduling without compute noise);
* ``fail`` — a job that raises a chosen error (adversarial tests of
  the quarantine/retry taxonomy across process boundaries).

:func:`run_worker_shard` is the ``ProcessPoolExecutor`` entry point:
given a picklable payload (worker rank, shard ledger path, supervisor
config, fault schedule, job list) it runs its jobs under the standard
:class:`~repro.runner.executor.SuiteRunner` supervision — per-job
deadline watchdog, bounded retries, host-fault injection, quarantine —
appending every record to its private ``<ledger>.w<k>`` shard. The
parent never trusts the returned summary for results; the fsynced
shard is the source of truth it merges
(:func:`repro.runner.ledger.merge_shards`). Workers run with tracing
forced off (a forked child must not interleave writes into the
parent's trace sink); the parent emits the ``runner.worker.*``
lifecycle events instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError, RetryableError

__all__ = ["PortableJob", "build_job", "plan_portable_jobs", "run_worker_shard"]

#: Portable job kinds the worker can rebuild.
PORTABLE_KINDS = ("evaluate", "sleep", "fail")


@dataclass(frozen=True)
class PortableJob:
    """A job description that survives pickling across processes."""

    kind: str
    key: str
    label: str
    index: int
    payload: Dict[str, object] = field(default_factory=dict)
    deadline_s: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PORTABLE_KINDS:
            raise ConfigError(
                f"unknown portable job kind {self.kind!r} "
                f"(expected one of {', '.join(PORTABLE_KINDS)})"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": self.key,
            "label": self.label,
            "index": self.index,
            "payload": dict(self.payload),
            "deadline_s": self.deadline_s,
            "meta": dict(self.meta),
        }

    @staticmethod
    def from_dict(raw: dict) -> "PortableJob":
        return PortableJob(
            kind=raw["kind"],
            key=raw["key"],
            label=raw["label"],
            index=raw["index"],
            payload=dict(raw.get("payload", {})),
            deadline_s=raw.get("deadline_s"),
            meta=dict(raw.get("meta", {})),
        )


# ---------------------------------------------------------------------------
def _evaluate_fn(payload: dict) -> Callable[[], dict]:
    """The job body of one plan entry: build trace, evaluate, report
    gains. Identical to what the serial runner executes — the payload
    is a :class:`JobSpec` dict, revalidated on the worker side."""

    def fn() -> dict:
        from repro.core import load_model
        from repro.core.hardening import HardeningConfig
        from repro.core.modes import OptimizationMode
        from repro.core.policies import parse_policy
        from repro.experiments.harness import (
            EvaluationContext,
            build_trace,
            default_policy_for,
            evaluate_schemes,
            gains_over,
            oracle_regret,
        )
        from repro.faults.spec import FaultSchedule
        from repro.obs import profile as obs_profile
        from repro.runner.plan import JobSpec
        from repro.transmuter.machine import TransmuterModel

        spec = JobSpec.from_dict(payload)
        mode = (
            OptimizationMode.ENERGY_EFFICIENT
            if spec.mode == "ee"
            else OptimizationMode.POWER_PERFORMANCE
        )
        # One root frame per evaluate job, so every instrumented
        # component below (trace building, schemes, kernel sim, ...)
        # nests under it in the campaign flamegraph.
        with obs_profile.span("evaluate_job"):
            trace = build_trace(
                spec.kernel, spec.matrix, scale=spec.scale, seed=spec.seed
            )
            policy = (
                parse_policy(spec.policy)
                if spec.policy is not None
                else default_policy_for(
                    "spmspm" if spec.kernel == "spmspm" else "spmspv"
                )
            )
            context = EvaluationContext(
                trace=trace,
                machine=TransmuterModel(
                    bandwidth_gbps=spec.bandwidth_gbps
                ),
                mode=mode,
                l1_type=spec.l1_type,
                model=(
                    load_model(spec.model)
                    if spec.model is not None
                    else None
                ),
                policy=policy,
                seed=spec.seed,
                faults=(
                    FaultSchedule.from_dict(spec.faults)
                    if spec.faults is not None
                    else None
                ),
                hardening=(
                    HardeningConfig.disabled()
                    if spec.hardening is False
                    else None
                ),
            )
            results = evaluate_schemes(context, spec.schemes)
            gains = gains_over(results)
            table = None
            if spec.regret:
                from repro.baselines import EpochTable

                with obs_profile.span("epoch_table"):
                    table = EpochTable(
                        context.machine,
                        trace,
                        n_samples=context.n_samples,
                        l1_type=spec.l1_type,
                        seed=spec.seed,
                        include=list(context.static_points().values()),
                    )
        schemes: Dict[str, dict] = {}
        for name, values in gains.items():
            schedule = results[name]
            entry = {
                metric: float(value) for metric, value in values.items()
            }
            entry["time_s"] = float(schedule.total_time_s)
            entry["energy_j"] = float(schedule.total_energy_j)
            entry["edp_js"] = float(
                schedule.total_energy_j * schedule.total_time_s
            )
            entry["avg_power_w"] = float(schedule.average_power_w)
            entry["reconfigurations"] = int(schedule.n_reconfigurations)
            if schedule.fault_stats is not None:
                entry["fault_stats"] = dict(schedule.fault_stats)
            if table is not None:
                entry["oracle_regret_pct"] = float(
                    oracle_regret(schedule, table, mode)["regret_pct"]
                )
            schemes[name] = entry
        return {"n_epochs": int(trace.n_epochs), "schemes": schemes}

    return fn


def _sleep_fn(payload: dict) -> Callable[[], dict]:
    seconds = float(payload.get("seconds", 0.0))
    value = payload.get("value", 0)

    def fn() -> dict:
        if seconds > 0:
            time.sleep(seconds)
        return {"value": value}

    return fn


def _fail_fn(payload: dict) -> Callable[[], dict]:
    message = str(payload.get("error", "injected failure"))
    retryable = bool(payload.get("retryable", False))
    #: Attempts that fail before the job starts succeeding (0 = always).
    fail_attempts = payload.get("fail_attempts")
    state = {"calls": 0}

    def fn() -> dict:
        state["calls"] += 1
        if fail_attempts is None or state["calls"] <= int(fail_attempts):
            if retryable:
                raise RetryableError(message)
            raise ValueError(message)
        return {"value": payload.get("value", 0)}

    return fn


_BUILDERS: Dict[str, Callable[[dict], Callable[[], dict]]] = {
    "evaluate": _evaluate_fn,
    "sleep": _sleep_fn,
    "fail": _fail_fn,
}


def build_job(portable: PortableJob):
    """Rebuild a live :class:`Job` from its portable description."""
    from repro.runner.executor import Job

    return Job(
        key=portable.key,
        label=portable.label,
        fn=_BUILDERS[portable.kind](dict(portable.payload)),
        index=portable.index,
        deadline_s=portable.deadline_s,
        meta=dict(portable.meta),
    )


def plan_portable_jobs(plan) -> List[PortableJob]:
    """Every job of a :class:`CampaignPlan` as portable descriptions."""
    return [
        PortableJob(
            kind="evaluate",
            key=spec.key(),
            label=spec.label(),
            index=index,
            payload=spec.as_dict(),
            deadline_s=spec.deadline_s,
            meta=_job_meta(spec),
        )
        for index, spec in enumerate(plan.jobs)
    ]


def _job_meta(spec) -> Dict[str, object]:
    """Ledger-row metadata for one plan entry. Spec-compiled jobs carry
    their candidate/workload/seed identity (``repro compare`` groups
    rows by these); plain plans keep the historical three keys so their
    ledger bytes are unchanged."""
    meta: Dict[str, object] = {
        "kernel": spec.kernel,
        "matrix": spec.matrix,
        "mode": spec.mode,
    }
    if spec.candidate is not None:
        meta["candidate"] = spec.candidate
        meta["workload"] = spec.workload or spec.matrix
        meta["seed"] = spec.seed
        meta["scheme"] = spec.candidate_scheme
    return meta


# ---------------------------------------------------------------------------
def run_worker_shard(payload: dict) -> dict:
    """``ProcessPoolExecutor`` entry point: run one worker's shard.

    ``payload`` is JSON-native: ``worker`` (rank), ``shard_path``,
    ``plan_key``/``plan_name``, ``config`` (SupervisorConfig fields),
    ``faults`` (schedule dict or None), and ``jobs`` (portable dicts).
    Every record lands in the fsynced shard ledger; the returned
    summary is bookkeeping only (rank, wall time, interrupt flag) —
    the parent reads results from the shard so that a worker killed
    mid-return loses nothing that was durably written.
    """
    from repro import obs
    from repro.faults.spec import FaultSchedule
    from repro.obs import profile as obs_profile
    from repro.runner.executor import CampaignInterrupted, SuiteRunner
    from repro.runner.ledger import RunLedger
    from repro.runner.supervisor import SupervisorConfig

    # A forked child inherits the parent's installed recorder and its
    # open sink handle; concurrent appends from N processes would
    # interleave mid-record. Workers therefore run untraced. The same
    # goes for an inherited profiler (its tree would die with the
    # fork): when the campaign is profiled, each worker runs a fresh
    # profiler of its own and ships the span tree back in the summary
    # for the parent to merge.
    obs.install(None)
    profiler = obs_profile.Profiler() if payload.get("profile") else None
    obs_profile.install(profiler)

    worker = int(payload["worker"])
    config = SupervisorConfig(**payload.get("config", {}))
    faults = (
        FaultSchedule.from_dict(payload["faults"])
        if payload.get("faults") is not None
        else None
    )
    jobs = [
        build_job(PortableJob.from_dict(raw)) for raw in payload["jobs"]
    ]
    ledger = RunLedger(
        payload["shard_path"],
        plan_key=payload["plan_key"],
        plan_name=payload.get("plan_name", "campaign"),
        worker=worker,
        overwrite=True,
    )
    runner = SuiteRunner(
        config=config, ledger=ledger, faults=faults, worker=worker
    )
    started = time.perf_counter()
    summary = {
        "worker": worker,
        "n_jobs": len(jobs),
        "interrupted": False,
    }
    try:
        report = runner.run(jobs, name=payload.get("plan_name", "campaign"))
        counts = report.counts()
        summary["ok"] = counts.get("ok", 0)
        summary["failed"] = counts.get("failed", 0)
    except CampaignInterrupted as exc:
        # SIGINT reached this worker (terminal fan-out or parent kill):
        # the shard is already closed and crash-consistent; tell the
        # parent so it can checkpoint the campaign as interrupted.
        summary["interrupted"] = True
        summary["completed"] = exc.completed
    summary["duration_s"] = round(time.perf_counter() - started, 6)
    if profiler is not None:
        profiler.stop()
        summary["profile"] = profiler.as_dict()
    return summary
