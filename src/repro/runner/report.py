"""Post-hoc campaign analytics: summarize and diff run ledgers.

``repro suite-report`` answers the questions an operator has *after* a
campaign — how many jobs landed, what was retried, what got
quarantined and why, how the work spread across workers — without
re-running anything. Everything here reads the ledger the way the
resume path does (:func:`repro.runner.ledger.read_ledger_records`:
tolerant of torn lines, first-terminal-wins), so the numbers reported
are exactly the state a ``--resume`` would trust.

Diffing compares the *stable* view of two campaigns' terminal rows —
wall-clock fields stripped, keyed by content-addressed job key — so two
ledgers of the same plan produced at different worker counts or
kill/resume histories diff clean, and any real divergence (a changed
result, a job failing in one run only) is surfaced per job.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.runner.ledger import (
    TERMINAL_TYPES,
    read_ledger_records,
)

__all__ = [
    "summarize_ledger",
    "diff_ledgers",
    "format_ledger_summary",
    "format_ledger_diff",
]

#: Row keys carrying wall-clock values; excluded from diff comparison.
_VOLATILE_KEYS = ("duration_s",)


def _strip_volatile(value):
    if isinstance(value, dict):
        return {
            key: _strip_volatile(nested)
            for key, nested in value.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [_strip_volatile(item) for item in value]
    return value


def _load(path: Union[str, Path]) -> List[dict]:
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"no such ledger: {path}")
    records, skipped = read_ledger_records(path)
    if not any(r.get("type") == "header" for r in records):
        raise ConfigError(f"{path} is not a run ledger (missing header)")
    # Stash the torn-line count on the list via a sentinel record so the
    # summarizer reports it without re-reading the file.
    records.append({"type": "_torn", "count": skipped})
    return records


def summarize_ledger(path: Union[str, Path]) -> dict:
    """One campaign ledger (or worker shard) distilled to a dict.

    The summary covers job counts by terminal status, retry volume,
    quarantine taxonomy, jobs still in flight (started, never
    finished — what a resume would re-run), torn lines skipped, and —
    for parallel campaigns — the per-worker attribution recorded by the
    merge step.
    """
    records = _load(path)
    header: dict = {}
    torn = 0
    started: Dict[str, int] = {}
    retries: Dict[str, int] = {}
    terminal: Dict[str, dict] = {}
    merges: List[dict] = []
    for record in records:
        kind = record.get("type")
        if kind == "header" and not header:
            header = record
        elif kind == "_torn":
            torn = int(record.get("count", 0))
        elif kind == "start":
            key = record.get("key")
            if isinstance(key, str):
                started[key] = started.get(key, 0) + 1
        elif kind == "retry":
            key = record.get("key")
            if isinstance(key, str):
                retries[key] = retries.get(key, 0) + 1
        elif kind in TERMINAL_TYPES:
            key = record.get("key")
            if isinstance(key, str):
                terminal.setdefault(key, record)
        elif kind == "merge":
            merges.append(record)

    counts = {"ok": 0, "failed": 0}
    quarantined: Dict[str, int] = {}
    total_attempts = 0
    total_duration = 0.0
    for record in terminal.values():
        row = record.get("row") or {}
        status = "ok" if row.get("status") == "ok" else "failed"
        counts[status] += 1
        total_attempts += int(row.get("attempts", 1))
        total_duration += float(row.get("duration_s", 0.0))
        if status == "failed":
            kind = (row.get("failure") or {}).get("kind", "unknown")
            quarantined[kind] = quarantined.get(kind, 0) + 1
    in_flight = sorted(key for key in started if key not in terminal)

    by_worker: List[dict] = []
    workers: Optional[int] = None
    for merge in merges:
        # Later merge records supersede earlier ones (a resumed parallel
        # campaign appends one per parallel pass).
        workers = merge.get("workers", workers)
        if merge.get("by_worker"):
            by_worker = list(merge["by_worker"])

    return {
        "path": str(path),
        "plan_name": header.get("plan_name"),
        "plan_key": header.get("plan_key"),
        "worker": header.get("worker"),
        "jobs": {
            "total": len(terminal),
            "ok": counts["ok"],
            "failed": counts["failed"],
            "in_flight": len(in_flight),
        },
        "attempts": total_attempts,
        "retries": sum(retries.values()),
        "retried_jobs": len(retries),
        "quarantined": dict(sorted(quarantined.items())),
        "in_flight_keys": in_flight,
        "torn_lines": torn,
        "duration_s": round(total_duration, 6),
        "workers": workers,
        "by_worker": by_worker,
    }


def diff_ledgers(
    path_a: Union[str, Path], path_b: Union[str, Path]
) -> dict:
    """Compare two campaign ledgers' terminal rows, stable view only.

    Jobs are matched by content-addressed key; wall-clock fields are
    stripped before comparison, so two runs of the same plan diff empty
    regardless of worker count or kill/resume history. Returns per-job
    divergence lists (``only_a``/``only_b``/``changed``) plus the two
    summaries.
    """

    def terminal_rows(path) -> Dict[str, dict]:
        rows: Dict[str, dict] = {}
        for record in _load(path):
            if record.get("type") in TERMINAL_TYPES:
                key = record.get("key")
                if isinstance(key, str) and key not in rows:
                    rows[key] = _strip_volatile(record.get("row") or {})
        return rows

    rows_a = terminal_rows(path_a)
    rows_b = terminal_rows(path_b)
    only_a = sorted(set(rows_a) - set(rows_b))
    only_b = sorted(set(rows_b) - set(rows_a))
    changed: List[dict] = []
    same = 0
    for key in sorted(set(rows_a) & set(rows_b)):
        if rows_a[key] == rows_b[key]:
            same += 1
            continue
        changed.append(
            {
                "key": key,
                "label": rows_a[key].get("label", key),
                "a": {
                    "status": rows_a[key].get("status"),
                    "attempts": rows_a[key].get("attempts"),
                    "failure": rows_a[key].get("failure"),
                },
                "b": {
                    "status": rows_b[key].get("status"),
                    "attempts": rows_b[key].get("attempts"),
                    "failure": rows_b[key].get("failure"),
                },
            }
        )

    def label_of(rows, key):
        return rows[key].get("label", key)

    return {
        "a": summarize_ledger(path_a),
        "b": summarize_ledger(path_b),
        "identical": not (only_a or only_b or changed),
        "same": same,
        "only_a": [
            {"key": key, "label": label_of(rows_a, key)} for key in only_a
        ],
        "only_b": [
            {"key": key, "label": label_of(rows_b, key)} for key in only_b
        ],
        "changed": changed,
    }


# ---------------------------------------------------------------------------
def format_ledger_summary(summary: dict) -> str:
    """Render one ledger summary as the ``repro suite-report`` text."""
    jobs = summary["jobs"]
    name = summary.get("plan_name") or "campaign"
    lines = [
        f"Ledger {summary['path']} — plan {name!r}"
        + (
            f" (worker shard {summary['worker']})"
            if summary.get("worker") is not None
            else ""
        ),
        f"  jobs      : {jobs['total']} terminal "
        f"({jobs['ok']} ok, {jobs['failed']} failed), "
        f"{jobs['in_flight']} in flight",
        f"  attempts  : {summary['attempts']} total, "
        f"{summary['retries']} retries across "
        f"{summary['retried_jobs']} job(s)",
    ]
    if summary["quarantined"]:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in summary["quarantined"].items()
        )
        lines.append(f"  quarantine: {kinds}")
    if summary["torn_lines"]:
        lines.append(
            f"  torn lines: {summary['torn_lines']} skipped on load"
        )
    lines.append(f"  job time  : {summary['duration_s']:.3f}s summed")
    if summary.get("workers"):
        lines.append(f"  workers   : {summary['workers']}")
        for entry in summary.get("by_worker", []):
            if "error" in entry:
                lines.append(
                    f"    w{entry.get('worker')}: "
                    f"DIED ({entry['error']})"
                )
            else:
                lines.append(
                    f"    w{entry.get('worker')}: "
                    f"{entry.get('jobs', 0)} jobs "
                    f"({entry.get('ok', 0)} ok, "
                    f"{entry.get('failed', 0)} failed) "
                    f"in {entry.get('duration_s', 0.0):.3f}s"
                    + (
                        " [interrupted]"
                        if entry.get("interrupted")
                        else ""
                    )
                )
    if summary["in_flight_keys"]:
        lines.append(
            "  resume would re-run: "
            + ", ".join(summary["in_flight_keys"])
        )
    return "\n".join(lines)


def format_ledger_diff(diff: dict) -> str:
    """Render a two-ledger diff as the ``repro suite-report --diff`` text."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"Diff {a['path']} vs {b['path']}",
        f"  plans     : {a.get('plan_name')!r} vs {b.get('plan_name')!r}"
        + (
            ""
            if a.get("plan_key") == b.get("plan_key")
            else "  (DIFFERENT PLANS)"
        ),
        f"  identical : {diff['identical']} "
        f"({diff['same']} matching job(s))",
    ]
    for side, entries in (("only in a", diff["only_a"]),
                          ("only in b", diff["only_b"])):
        if entries:
            lines.append(
                f"  {side:<10}: "
                + ", ".join(entry["label"] for entry in entries)
            )
    for entry in diff["changed"]:
        lines.append(
            f"  changed   : {entry['label']} — "
            f"a={entry['a']['status']}/{entry['a']['attempts']}att "
            f"b={entry['b']['status']}/{entry['b']['attempts']}att"
        )
    return "\n".join(lines)
