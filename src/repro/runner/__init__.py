"""Resilient suite runner: checkpointed, resumable, supervised campaigns.

The unit of scientific work in the paper is the full R01–R16 suite
sweep, not a single run — and a campaign of dozens of jobs must survive
a hung kernel, a poisoned input, or a Ctrl-C without losing everything.
This package is the host-side execution layer that guarantees it:

* :mod:`repro.runner.plan` — declarative campaign plans (JSON files or
  the built-in Table-5 plan) and content-addressed job keys;
* :mod:`repro.runner.ledger` — the durable, fsynced JSONL run ledger
  that makes any campaign resumable;
* :mod:`repro.runner.supervisor` — per-job deadline watchdog, retry
  backoff, and the host-level (``job_hang``/``job_crash``) fault
  injector;
* :mod:`repro.runner.executor` — the :class:`SuiteRunner` tying them
  together, plus :func:`run_plan` behind ``repro suite-run``.

``repro faults`` and ``repro experiment`` route their multi-job work
through the same :class:`SuiteRunner`, so supervision, retries, and
ledgers behave identically everywhere. See ``docs/robustness.md``.
"""

from repro.runner.executor import (
    CampaignInterrupted,
    Job,
    JobFailure,
    SuiteReport,
    SuiteRunner,
    format_suite_table,
    run_plan,
)
from repro.runner.ledger import RunLedger
from repro.runner.plan import CampaignPlan, JobSpec, job_key, table5_plan
from repro.runner.supervisor import (
    HostFaultInjector,
    SupervisorConfig,
    call_with_deadline,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignPlan",
    "HostFaultInjector",
    "Job",
    "JobFailure",
    "JobSpec",
    "RunLedger",
    "SuiteReport",
    "SuiteRunner",
    "SupervisorConfig",
    "call_with_deadline",
    "format_suite_table",
    "job_key",
    "run_plan",
    "table5_plan",
]
