"""Resilient suite runner: checkpointed, resumable, supervised campaigns.

The unit of scientific work in the paper is the full R01–R16 suite
sweep, not a single run — and a campaign of dozens of jobs must survive
a hung kernel, a poisoned input, or a Ctrl-C without losing everything.
This package is the host-side execution layer that guarantees it:

* :mod:`repro.runner.plan` — declarative campaign plans (JSON files or
  the built-in Table-5 plan) and content-addressed job keys;
* :mod:`repro.runner.ledger` — the durable, fsynced JSONL run ledger
  that makes any campaign resumable, plus the per-worker shard
  read/merge machinery behind parallel campaigns;
* :mod:`repro.runner.supervisor` — per-job deadline watchdog, retry
  backoff, and the host-level (``job_hang``/``job_crash``/``job_oom``)
  fault injector;
* :mod:`repro.runner.worker` — portable job descriptions and the
  child-process entry point parallel campaigns fan out to;
* :mod:`repro.runner.executor` — the :class:`SuiteRunner` tying them
  together (serial or ``workers=N`` sharded), plus :func:`run_plan`
  behind ``repro suite-run``;
* :mod:`repro.runner.report` — post-hoc ledger summaries and diffs
  behind ``repro suite-report``;
* :mod:`repro.runner.lease` — atomic lease files (claim, renew,
  reclaim) for cooperating worker processes;
* :mod:`repro.runner.store` — the multi-host campaign fabric: a shared
  file-backed experiment store any number of independently-launched
  ``repro worker`` processes claim jobs from, behind
  ``repro suite-run --store``;
* :mod:`repro.runner.fsck` — the ``repro fsck`` scanner/repairer for
  store trees and ledgers (torn records, trailer mismatches, orphan
  tmp files, dead leases, missing result groups).

``repro faults`` and ``repro experiment`` route their multi-job work
through the same :class:`SuiteRunner`, so supervision, retries, and
ledgers behave identically everywhere. See ``docs/robustness.md``.
"""

from repro.runner.executor import (
    CampaignInterrupted,
    Job,
    JobFailure,
    SuiteReport,
    SuiteRunner,
    format_suite_table,
    run_plan,
)
from repro.runner.lease import (
    DEFAULT_LEASE_TTL_S,
    Lease,
    LeaseManager,
    default_owner,
)
from repro.runner.ledger import (
    RunLedger,
    compact_ledger,
    list_shards,
    merge_shards,
    read_ledger_records,
    read_shard,
    recover_shards,
    shard_path,
    verify_trailer,
)
from repro.runner.fsck import (
    Finding,
    FsckReport,
    format_fsck_report,
    run_fsck,
)
from repro.runner.plan import CampaignPlan, JobSpec, job_key, table5_plan
from repro.runner.store import (
    ExperimentStore,
    build_schedule,
    predicted_cost,
    run_store_worker,
)
from repro.runner.supervisor import (
    HostFaultInjector,
    SupervisorConfig,
    call_with_deadline,
)
from repro.runner.worker import (
    PortableJob,
    build_job,
    plan_portable_jobs,
    run_worker_shard,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignPlan",
    "DEFAULT_LEASE_TTL_S",
    "ExperimentStore",
    "Finding",
    "FsckReport",
    "HostFaultInjector",
    "Job",
    "JobFailure",
    "JobSpec",
    "Lease",
    "LeaseManager",
    "PortableJob",
    "RunLedger",
    "SuiteReport",
    "SuiteRunner",
    "SupervisorConfig",
    "build_job",
    "build_schedule",
    "call_with_deadline",
    "compact_ledger",
    "default_owner",
    "format_fsck_report",
    "format_suite_table",
    "job_key",
    "list_shards",
    "merge_shards",
    "plan_portable_jobs",
    "predicted_cost",
    "read_ledger_records",
    "read_shard",
    "recover_shards",
    "run_fsck",
    "run_plan",
    "run_store_worker",
    "run_worker_shard",
    "shard_path",
    "table5_plan",
    "verify_trailer",
]
