"""The durable run ledger: what makes a campaign resumable.

A :class:`RunLedger` is an append-only JSONL file recording the life of
every job in a campaign: ``start`` when an attempt begins, ``retry``
when a retryable failure schedules another attempt, and a terminal
``done`` (with the full result row) or ``quarantined`` (with the
structured failure). Every append is flushed and fsynced, so the ledger
survives a killed process up to the last completed write; a torn final
line (the one write a crash can interrupt) is detected and ignored on
load.

Resume semantics: jobs with a *terminal* row are finished — ``done``
rows are replayed into the aggregate report byte-for-byte, and
``quarantined`` rows are likewise trusted (re-running a job that
exhausted its retry budget would just hang/fail again). Jobs with only
``start``/``retry`` rows were in flight when the process died and are
re-run from scratch. Identity is the content-addressed job key
(:func:`repro.runner.plan.job_key`), so editing unrelated jobs in a
plan does not invalidate completed work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.obs.sinks import encode_record

__all__ = ["LEDGER_VERSION", "RunLedger"]

LEDGER_VERSION = 1


class RunLedger:
    """Append-only, fsynced JSONL record of one campaign's progress."""

    def __init__(
        self,
        path: Union[str, Path],
        plan_key: str,
        plan_name: str = "campaign",
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.plan_key = plan_key
        self.plan_name = plan_name
        #: Terminal rows by job key (``done`` and ``quarantined`` records).
        self.completed: Dict[str, dict] = {}
        #: Keys that have a ``start`` but no terminal row (were in flight).
        self.in_flight: List[str] = []
        exists = self.path.exists()
        if exists and not resume:
            raise ConfigError(
                f"ledger {self.path} already exists; pass --resume to "
                f"continue that campaign or point --ledger elsewhere"
            )
        if not exists and resume:
            raise ConfigError(
                f"cannot resume: no ledger at {self.path}"
            )
        if exists:
            self._load()
        self._handle = self.path.open("a", encoding="utf-8")
        if not exists:
            self._append(
                {
                    "type": "header",
                    "version": LEDGER_VERSION,
                    "plan_name": plan_name,
                    "plan_key": plan_key,
                }
            )

    # ------------------------------------------------------------------
    def _load(self) -> None:
        started: Dict[str, bool] = {}
        header: Optional[dict] = None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final write from a killed process; everything
                    # before it is intact, so stop here and move on.
                    break
                kind = record.get("type")
                if kind == "header":
                    header = record
                elif kind == "start":
                    started[record["key"]] = True
                elif kind in ("done", "quarantined"):
                    self.completed[record["key"]] = record
        if header is None:
            raise ConfigError(
                f"{self.path} is not a run ledger (missing header)"
            )
        if header.get("version") != LEDGER_VERSION:
            raise ConfigError(
                f"unsupported ledger version {header.get('version')!r} "
                f"in {self.path}"
            )
        if header.get("plan_key") != self.plan_key:
            raise ConfigError(
                f"ledger {self.path} belongs to a different plan "
                f"({header.get('plan_name')!r}); use a fresh ledger path"
            )
        self.in_flight = [
            key for key in started if key not in self.completed
        ]

    def _append(self, record: dict) -> None:
        """One durable line: write, flush, fsync."""
        self._handle.write(encode_record(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def job_started(self, key: str, index: int, attempt: int) -> None:
        self._append(
            {"type": "start", "key": key, "index": index, "attempt": attempt}
        )

    def job_retried(
        self, key: str, attempt: int, error: str, backoff_s: float
    ) -> None:
        self._append(
            {
                "type": "retry",
                "key": key,
                "attempt": attempt,
                "error": error,
                "backoff_s": round(backoff_s, 6),
            }
        )

    def job_done(self, key: str, row: dict) -> None:
        record = {"type": "done", "key": key, "row": row}
        self._append(record)
        self.completed[key] = record

    def job_quarantined(self, key: str, row: dict) -> None:
        record = {"type": "quarantined", "key": key, "row": row}
        self._append(record)
        self.completed[key] = record

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
