"""The durable run ledger: what makes a campaign resumable — and, since
the runner went parallel, the shared journal N workers checkpoint into.

A :class:`RunLedger` is an append-only JSONL file recording the life of
every job in a campaign: ``start`` when an attempt begins, ``retry``
when a retryable failure schedules another attempt, and a terminal
``done`` (with the full result row) or ``quarantined`` (with the
structured failure). Every append is flushed and fsynced, so the ledger
survives a killed process up to the last completed write; torn lines
(the one write a crash can interrupt — or, adversarially, any
mid-file corruption) are detected, skipped, and counted on load.

Resume semantics: jobs with a *terminal* row are finished — ``done``
rows are replayed into the aggregate report byte-for-byte, and
``quarantined`` rows are likewise trusted (re-running a job that
exhausted its retry budget would just hang/fail again). Jobs with only
``start``/``retry`` rows were in flight when the process died and are
re-run from scratch. Identity is the content-addressed job key
(:func:`repro.runner.plan.job_key`), so editing unrelated jobs in a
plan does not invalidate completed work.

Parallel campaigns shard the journal: worker ``k`` appends to its own
``<ledger>.w<k>`` file (same record format, header carries the worker
rank), and the parent merges the shards back into the canonical ledger
with :func:`merge_shards` — per job, in plan order, so the merged
ledger is byte-identical to a serial run's (modulo wall-clock fields)
regardless of worker count or completion order. Merging is
first-terminal-wins and skips jobs the canonical ledger already
completed, which makes it idempotent and order-insensitive; stale
shards left behind by a dead worker are unioned the same way on the
next resume (:func:`recover_shards`) and then deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.obs import profile as obs_profile
from repro.obs.sinks import encode_record, fsync_dir

_io_shim_module = None


def _io_shim():
    """The installed storage-fault shim (lazy import; avoids a cycle
    through ``repro.faults.__init__``)."""
    global _io_shim_module
    if _io_shim_module is None:
        from repro.faults import io as _faults_io

        _io_shim_module = _faults_io
    return _io_shim_module.get_shim()

__all__ = [
    "LEDGER_VERSION",
    "TERMINAL_TYPES",
    "VOLATILE_TYPES",
    "RunLedger",
    "ShardData",
    "MergeStats",
    "shard_path",
    "list_shards",
    "read_ledger_records",
    "read_shard",
    "merge_shards",
    "recover_shards",
    "compact_ledger",
    "verify_trailer",
]

LEDGER_VERSION = 1

#: Record types that finish a job; everything else is in-flight state.
TERMINAL_TYPES = ("done", "quarantined")

#: Volatile record types: provenance/progress only, never job state.
#: The byte-identical merge drops them and resume ignores them.
#: ``trailer`` is the checksum line :func:`compact_ledger` appends.
VOLATILE_TYPES = ("merge", "heartbeat", "trailer")

_SHARD_SUFFIX = re.compile(r"\.w(\d+)$")


def shard_path(base: Union[str, Path], worker: int) -> Path:
    """The per-worker shard file of a canonical ledger path."""
    return Path(f"{base}.w{worker}")


def list_shards(base: Union[str, Path]) -> List[Path]:
    """Existing ``<base>.w<k>`` shard files, ordered by worker rank."""
    base = Path(base)
    found: List[Tuple[int, Path]] = []
    if not base.parent.is_dir():
        return []
    prefix = base.name + ".w"
    for entry in base.parent.iterdir():
        if not entry.name.startswith(base.name):
            continue
        match = _SHARD_SUFFIX.search(entry.name)
        if match and entry.name == prefix + match.group(1):
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def read_ledger_records(
    path: Union[str, Path]
) -> Tuple[List[dict], int]:
    """Load every intact record of a ledger/shard file.

    Returns ``(records, n_skipped)``. Undecodable lines — the torn
    final write of a killed process, or adversarial mid-file damage —
    are skipped and counted instead of aborting the load: any record
    that *did* survive intact is still trusted, and a job whose
    terminal row was lost is simply re-run (safe by construction).
    Unreadable *files* (a directory, a permission wall) raise
    :class:`~repro.errors.ConfigError` so CLI callers get the one-line
    ``error:`` funnel instead of a traceback; invalid UTF-8 inside a
    line (a torn multi-byte character, binary garbage) degrades to a
    skipped line like any other damage.
    """
    records: List[dict] = []
    skipped = 0
    try:
        handle = Path(path).open("r", encoding="utf-8", errors="replace")
    except OSError as exc:
        raise ConfigError(f"cannot read ledger {path}: {exc}") from exc
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict) or "type" not in record:
                skipped += 1
                continue
            records.append(record)
    return records, skipped


class RunLedger:
    """Append-only, fsynced JSONL record of one campaign's progress."""

    def __init__(
        self,
        path: Union[str, Path],
        plan_key: str,
        plan_name: str = "campaign",
        resume: bool = False,
        worker: Optional[int] = None,
        overwrite: bool = False,
        exclusive: bool = False,
        header_extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = Path(path)
        self.plan_key = plan_key
        self.plan_name = plan_name
        #: Worker rank when this ledger is a parallel shard.
        self.worker = worker
        #: Terminal rows by job key (``done`` and ``quarantined`` records).
        self.completed: Dict[str, dict] = {}
        #: Keys that have a ``start`` but no terminal row (were in flight).
        self.in_flight: List[str] = []
        #: Undecodable lines skipped on load (torn/damaged records).
        self.n_skipped: int = 0
        if overwrite and self.path.exists():
            self.path.unlink()
        if exclusive:
            # Store workers race to claim a shard rank: the O_EXCL
            # create *is* the claim, so the exists-check above would
            # only narrow the window, not close it.
            if resume or overwrite:
                raise ConfigError(
                    "exclusive ledger creation cannot resume/overwrite"
                )
            try:
                fd = os.open(
                    os.fspath(self.path),
                    os.O_WRONLY | os.O_CREAT | os.O_EXCL | os.O_APPEND,
                    0o644,
                )
            except FileExistsError:
                raise ConfigError(
                    f"ledger {self.path} already exists"
                ) from None
            self._handle = os.fdopen(fd, "a", encoding="utf-8")
            exists = False
        else:
            exists = self.path.exists()
            if exists and not resume:
                raise ConfigError(
                    f"ledger {self.path} already exists; pass --resume to "
                    f"continue that campaign or point --ledger elsewhere"
                )
            if not exists and resume:
                raise ConfigError(
                    f"cannot resume: no ledger at {self.path}"
                )
            if exists:
                self._load()
            self._handle = self.path.open("a", encoding="utf-8")
        if not exists:
            header = {
                "type": "header",
                "version": LEDGER_VERSION,
                "plan_name": plan_name,
                "plan_key": plan_key,
            }
            if worker is not None:
                header["worker"] = worker
            if header_extra:
                header.update(header_extra)
            self._append(header)
            fsync_dir(self.path.parent)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        records, self.n_skipped = read_ledger_records(self.path)
        header: Optional[dict] = None
        started: Dict[str, bool] = {}
        for record in records:
            kind = record.get("type")
            if kind == "header" and header is None:
                header = record
            elif kind == "start":
                started[record["key"]] = True
            elif kind in TERMINAL_TYPES:
                # First terminal record wins: a duplicated row (e.g. a
                # replayed merge) never flips an already-settled job.
                self.completed.setdefault(record["key"], record)
        if header is None:
            raise ConfigError(
                f"{self.path} is not a run ledger (missing header)"
            )
        if header.get("version") != LEDGER_VERSION:
            raise ConfigError(
                f"unsupported ledger version {header.get('version')!r} "
                f"in {self.path}"
            )
        if header.get("plan_key") != self.plan_key:
            raise ConfigError(
                f"ledger {self.path} belongs to a different plan "
                f"({header.get('plan_name')!r}); use a fresh ledger path"
            )
        self.in_flight = [
            key for key in started if key not in self.completed
        ]

    def _append(self, record: dict) -> None:
        """One durable line: write, flush, fsync.

        Routed through the storage-fault shim so disk chaos campaigns
        and the crash-point fuzzer can interpose on every durable
        append. Heartbeats stay unshimmed: they are volatile,
        flush-only, and emitted on renewal-thread timing, which would
        make crash-point operation counts nondeterministic.
        """
        with obs_profile.span("ledger_io"):
            shim = _io_shim()
            shim.write(
                self._handle,
                encode_record(record) + "\n",
                site="ledger.append.write",
            )
            self._handle.flush()
            shim.fsync(self._handle.fileno(), site="ledger.append.fsync")

    # ------------------------------------------------------------------
    def job_started(self, key: str, index: int, attempt: int) -> None:
        self._append(
            {"type": "start", "key": key, "index": index, "attempt": attempt}
        )

    def job_retried(
        self, key: str, attempt: int, error: str, backoff_s: float
    ) -> None:
        self._append(
            {
                "type": "retry",
                "key": key,
                "attempt": attempt,
                "error": error,
                "backoff_s": round(backoff_s, 6),
            }
        )

    def job_done(self, key: str, row: dict) -> None:
        record = {"type": "done", "key": key, "row": row}
        self._append(record)
        self.completed[key] = record

    def job_quarantined(self, key: str, row: dict) -> None:
        record = {"type": "quarantined", "key": key, "row": row}
        self._append(record)
        self.completed[key] = record

    def append_merge_record(self, record: dict) -> None:
        """Volatile merge provenance (worker stats); readers that only
        care about job state ignore it."""
        self._append({"type": "merge", **record})

    def heartbeat(
        self,
        done: int,
        failed: int,
        total: int,
        job: Optional[str] = None,
    ) -> None:
        """Volatile liveness record for ``repro top``: wall-clock
        timestamp, progress counters, and the label of the job being
        started. Carries the plan name and campaign (plan key) so
        monitors aggregating many ledgers on one host can attribute
        every pulse without re-reading headers. Flushed but *not*
        fsynced — losing the last heartbeat in a crash costs nothing,
        and long campaigns should not pay a second fsync per job for
        telemetry.
        """
        record: Dict[str, object] = {
            "type": "heartbeat",
            "ts": round(time.time(), 3),
            "plan": self.plan_name,
            "campaign": self.plan_key,
            "done": int(done),
            "failed": int(failed),
            "total": int(total),
        }
        if self.worker is not None:
            record["worker"] = self.worker
        if job is not None:
            record["job"] = job
        with obs_profile.span("ledger_io"):
            self._handle.write(encode_record(record) + "\n")
            self._handle.flush()

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
@dataclass
class ShardData:
    """One worker shard, parsed and grouped for merging."""

    path: Path
    worker: Optional[int]
    #: Per-job record groups, in the shard's own append order.
    by_key: "Dict[str, List[dict]]" = field(default_factory=dict)
    n_skipped: int = 0

    def terminal(self, key: str) -> Optional[dict]:
        for record in self.by_key.get(key, ()):
            if record.get("type") in TERMINAL_TYPES:
                return record
        return None


@dataclass
class MergeStats:
    """What one :func:`merge_shards` pass did."""

    merged_jobs: int = 0
    merged_records: int = 0
    skipped_completed: int = 0
    skipped_shards: int = 0
    torn_lines: int = 0
    by_worker: List[dict] = field(default_factory=list)


def read_shard(
    path: Union[str, Path], plan_key: str
) -> Optional[ShardData]:
    """Parse one shard file; ``None`` for a foreign-plan shard.

    Lenient where the canonical loader is strict: a shard missing its
    header (truncated at the front by a crash or an adversarial test)
    still yields its surviving records — but a shard whose header names
    a *different* plan is rejected wholesale rather than polluting the
    merge.
    """
    try:
        records, skipped = read_ledger_records(path)
    except (OSError, ConfigError):
        return None
    shard = ShardData(path=Path(path), worker=None, n_skipped=skipped)
    for record in records:
        kind = record.get("type")
        if kind == "header":
            if record.get("plan_key") not in (None, plan_key):
                return None
            if shard.worker is None:
                shard.worker = record.get("worker")
            continue
        if kind in VOLATILE_TYPES:
            continue
        key = record.get("key")
        if not isinstance(key, str):
            shard.n_skipped += 1
            continue
        shard.by_key.setdefault(key, []).append(record)
    return shard


def merge_shards(
    ledger: RunLedger,
    shards: Sequence[ShardData],
    key_order: Sequence[str],
) -> MergeStats:
    """Union worker shards into the canonical ledger, deterministically.

    Jobs are appended as whole per-key record groups in ``key_order``
    (the plan order), then any foreign keys sorted lexicographically —
    so the merged file's job structure is byte-identical to a serial
    run's regardless of which worker ran what or when it finished.
    When several shards carry the same key (a stale shard from a dead
    worker plus its re-run), the first shard with a terminal record
    wins; jobs already terminal in the canonical ledger are skipped,
    which is what makes merging idempotent. Groups without a terminal
    record (jobs in flight when their worker stopped) are *not*
    appended — they are only marked in flight, and re-run fresh.
    """
    stats = MergeStats()
    known = set(key_order)
    extra = sorted(
        {
            key
            for shard in shards
            for key in shard.by_key
            if key not in known
        }
    )
    for key in list(key_order) + extra:
        if key in ledger.completed:
            stats.skipped_completed += 1
            continue
        chosen: Optional[ShardData] = None
        for shard in shards:
            if key not in shard.by_key:
                continue
            if chosen is None or (
                chosen.terminal(key) is None
                and shard.terminal(key) is not None
            ):
                chosen = shard
        if chosen is None:
            continue
        group = chosen.by_key[key]
        terminal = chosen.terminal(key)
        if terminal is None:
            # Start/retry records of a job interrupted mid-flight:
            # not merged — the job simply re-runs, writing its records
            # fresh, which keeps the canonical ledger free of orphan
            # ``start`` groups.
            if group and key not in ledger.in_flight:
                ledger.in_flight.append(key)
            continue
        for record in group:
            ledger._append(record)
            stats.merged_records += 1
            # A duplicated terminal row inside one shard: first wins.
            if record is terminal:
                break
        ledger.completed[key] = terminal
        stats.merged_jobs += 1
    for shard in shards:
        stats.torn_lines += shard.n_skipped
    return stats


def recover_shards(
    ledger: RunLedger, key_order: Sequence[str]
) -> MergeStats:
    """Union stale shard files from a previous (killed) parallel run.

    Called on resume before any new work: every terminal row a dead
    worker managed to fsync is folded into the canonical ledger, the
    shard files are deleted, and only genuinely unfinished jobs re-run.
    Foreign-plan shards are left untouched but counted.
    """
    stats = MergeStats()
    shards: List[ShardData] = []
    stale: List[Path] = []
    for path in list_shards(ledger.path):
        shard = read_shard(path, ledger.plan_key)
        if shard is None:
            stats.skipped_shards += 1
            continue
        shards.append(shard)
        stale.append(path)
    if shards:
        merged = merge_shards(ledger, shards, key_order)
        merged.skipped_shards = stats.skipped_shards
        stats = merged
    for path in stale:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return stats


# ---------------------------------------------------------------------------
def compact_ledger(
    path: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> dict:
    """Rewrite a ledger to terminal records only, plus a checksum trailer.

    Long-lived stores accumulate ``start``/``retry`` rows, heartbeats,
    and merge provenance that resume and reporting never need once
    every job is settled. Compaction keeps the header and the
    *first* terminal record per key (exactly the rows resume trusts
    and ``suite-report`` summarizes), in original first-appearance
    order, and appends a ``trailer`` record carrying the SHA-256 of
    every preceding byte so later readers can detect truncation or
    bit rot (:func:`verify_trailer`).

    Before committing, the compacted file is diffed against the
    original (stable terminal rows, :func:`repro.runner.report.diff_ledgers`)
    — report byte-identity is an invariant, not a hope. In-place by
    default; pass ``out`` to write elsewhere and keep the original.
    Returns a stats dict (records/bytes before and after, dropped
    record counts by type, the trailer checksum).
    """
    path = Path(path)
    out = path if out is None else Path(out)
    records, torn = read_ledger_records(path)
    header: Optional[dict] = None
    terminals: Dict[str, dict] = {}
    dropped: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("type"))
        if kind == "header" and header is None:
            header = record
            continue
        if kind in TERMINAL_TYPES:
            key = record.get("key")
            if isinstance(key, str) and key not in terminals:
                terminals[key] = record
                continue
        dropped[kind] = dropped.get(kind, 0) + 1
    if header is None:
        raise ConfigError(f"{path} is not a run ledger (missing header)")
    lines = [encode_record(header)]
    lines.extend(encode_record(record) for record in terminals.values())
    body = "".join(line + "\n" for line in lines).encode("utf-8")
    digest = hashlib.sha256(body).hexdigest()
    trailer = {
        "type": "trailer",
        "records": len(lines),
        "sha256": digest,
    }
    bytes_before = path.stat().st_size
    tmp = out.with_name(f"{out.name}.compact{os.getpid()}")
    shim = _io_shim()
    try:
        with tmp.open("wb") as handle:
            shim.write(handle, body, site="ledger.compact.write")
            shim.write(
                handle,
                (encode_record(trailer) + "\n").encode("utf-8"),
                site="ledger.compact.write",
            )
            handle.flush()
            shim.fsync(handle.fileno(), site="ledger.compact.fsync")
        from repro.runner.report import diff_ledgers  # circular at module load

        diff = diff_ledgers(path, tmp)
        if not diff["identical"]:  # pragma: no cover - invariant guard
            raise ConfigError(
                f"compaction of {path} would change the report; aborting"
            )
        shim.replace(tmp, out, site="ledger.compact.replace")
        fsync_dir(out.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return {
        "path": str(path),
        "out": str(out),
        "jobs": len(terminals),
        "records_before": len(records),
        "records_after": len(lines) + 1,
        "bytes_before": bytes_before,
        "bytes_after": out.stat().st_size,
        "torn_lines": torn,
        "dropped": dict(sorted(dropped.items())),
        "sha256": digest,
    }


def verify_trailer(path: Union[str, Path]) -> dict:
    """Check a compacted ledger against its checksum trailer.

    Returns ``{"present", "ok", "records", "sha256", "expected"}``:
    ``present`` is False when the final record is not a trailer (the
    ledger was never compacted, or was appended to since); ``ok`` is
    True only when the SHA-256 of every byte before the trailer line
    and the record count both match what the trailer promised.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigError(f"cannot read ledger {path}: {exc}") from exc
    lines = raw.splitlines(keepends=True)
    index = len(lines) - 1
    while index >= 0 and not lines[index].strip():
        index -= 1
    if index < 0:
        raise ConfigError(f"{path} is not a run ledger (missing header)")
    try:
        last = json.loads(lines[index])
    except (ValueError, UnicodeDecodeError):
        last = None
    if not isinstance(last, dict) or last.get("type") != "trailer":
        return {
            "present": False,
            "ok": False,
            "records": None,
            "sha256": None,
            "expected": None,
        }
    body = b"".join(lines[:index])
    digest = hashlib.sha256(body).hexdigest()
    n_records = sum(1 for line in lines[:index] if line.strip())
    expected = last.get("sha256")
    return {
        "present": True,
        "ok": digest == expected and n_records == last.get("records"),
        "records": n_records,
        "sha256": digest,
        "expected": expected,
    }
