"""Declarative campaign plans and content-addressed job keys.

A :class:`CampaignPlan` is the unit of scientific work the paper's
evaluation is built from: a named list of (kernel x matrix x scheme set
x mode) jobs, each fully described by data. Plans are what the suite
runner supervises and checkpoints — the plan says *what* to run, the
:mod:`repro.runner.executor` decides *how* (deadlines, retries,
ledger, resume).

Every job has a content-addressed key (:func:`job_key`): the SHA-256 of
its canonical JSON description. The run ledger stores results under
these keys, so ``--resume`` can skip completed jobs even across plan
edits — a job re-runs only when its *description* changed.

Plan files are strict JSON (unknown keys rejected, like fault schedule
specs)::

    {
      "name": "nightly",
      "defaults": {"scale": 0.3, "mode": "ee",
                   "schemes": ["Baseline", "SparseAdapt"]},
      "jobs": [
        {"kernel": "spmspm", "matrix": "R01"},
        {"kernel": "spmspv", "matrix": "R09", "scale": 0.2}
      ]
    }

:func:`table5_plan` builds the paper's full R01–R16 sweep (Table 5 /
Figures 12–14): SpMSpM over R01–R08, SpMSpV over R09–R16.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "KNOWN_KERNELS",
    "JobSpec",
    "CampaignPlan",
    "job_key",
    "table5_plan",
]

KNOWN_KERNELS: Tuple[str, ...] = ("spmspm", "spmspv", "bfs", "sssp")
_KNOWN_MODES: Tuple[str, ...] = ("ee", "pp")

_JOB_KEYS = (
    "kernel",
    "matrix",
    "scale",
    "mode",
    "schemes",
    "l1_type",
    "bandwidth_gbps",
    "deadline_s",
    "candidate",
    "workload",
    "seed",
    "policy",
    "hardening",
    "faults",
    "model",
    "regret",
)
#: Per-job identity fields that make no sense as plan-wide defaults.
_NON_DEFAULT_KEYS = ("kernel", "matrix", "candidate", "workload")
_DEFAULT_KEYS = tuple(k for k in _JOB_KEYS if k not in _NON_DEFAULT_KEYS)
_PLAN_KEYS = ("name", "defaults", "jobs", "faults")


def job_key(payload: Mapping) -> str:
    """Content-addressed key of one job description.

    The SHA-256 (truncated to 16 hex chars) of the canonical JSON form:
    sorted keys, compact separators. Two jobs with the same description
    always collide — that is the point: the ledger uses these keys to
    decide what "already ran" means.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One evaluation job: a kernel over a matrix under one scheme set."""

    kernel: str
    matrix: str
    scale: float = 0.3
    mode: str = "ee"
    schemes: Tuple[str, ...] = ("Baseline", "SparseAdapt")
    l1_type: str = "cache"
    bandwidth_gbps: float = 1.0
    #: Per-job deadline override; ``None`` inherits the runner's.
    deadline_s: Optional[float] = None
    #: Experiment-spec provenance: which named candidate/workload this
    #: job belongs to (``repro compare`` groups rows by these).
    candidate: Optional[str] = None
    workload: Optional[str] = None
    #: Input seed (vector generation, epoch-table sampling).
    seed: int = 0
    #: Declarative policy string (``conservative`` / ``aggressive`` /
    #: ``hybrid:<tolerance>``); ``None`` keeps the paper default.
    policy: Optional[str] = None
    #: ``False`` disables the hardened controller layer for this job's
    #: fault run; ``None`` keeps the default (hardened when faulted).
    hardening: Optional[bool] = None
    #: Hardware fault schedule applied to the adaptive scheme only.
    faults: Optional[dict] = None
    #: Path of a trained model JSON; ``None`` trains the stock model.
    model: Optional[str] = None
    #: Also compute the per-scheme oracle regret (builds an EpochTable,
    #: noticeably more expensive — opt in via the spec's metric list).
    regret: bool = False

    def __post_init__(self) -> None:
        from repro.sparse import suite

        if self.kernel not in KNOWN_KERNELS:
            raise ConfigError(
                f"unknown kernel {self.kernel!r} "
                f"(expected one of {', '.join(KNOWN_KERNELS)})"
            )
        if self.matrix not in suite.SUITE:
            raise ConfigError(f"unknown suite matrix {self.matrix!r}")
        if not 0.0 < float(self.scale) <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale!r}")
        if self.mode not in _KNOWN_MODES:
            raise ConfigError(
                f"mode must be one of {_KNOWN_MODES}, got {self.mode!r}"
            )
        if self.l1_type not in ("cache", "spm"):
            raise ConfigError(
                f"l1_type must be 'cache' or 'spm', got {self.l1_type!r}"
            )
        schemes = tuple(self.schemes)
        object.__setattr__(self, "schemes", schemes)
        if not schemes:
            raise ConfigError("a job needs at least one scheme")
        from repro.experiments.harness import KNOWN_SCHEMES

        for name in schemes:
            if name not in KNOWN_SCHEMES:
                raise ConfigError(
                    f"unknown scheme {name!r} "
                    f"(expected one of {', '.join(KNOWN_SCHEMES)})"
                )
        if "Baseline" not in schemes:
            raise ConfigError(
                "every job must evaluate 'Baseline' (the gains reference)"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )
        for name in ("candidate", "workload"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, str) or not value
            ):
                raise ConfigError(
                    f"{name} must be a non-empty string, got {value!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed!r}")
        if self.policy is not None:
            from repro.core.policies import parse_policy

            parse_policy(self.policy)  # fail fast at plan-load time
        if self.hardening is not None and not isinstance(
            self.hardening, bool
        ):
            raise ConfigError(
                f"hardening must be true/false, got {self.hardening!r}"
            )
        if self.faults is not None:
            from repro.faults.spec import FaultSchedule

            if not isinstance(self.faults, Mapping):
                raise ConfigError(
                    f"job faults must be a schedule object, "
                    f"got {self.faults!r}"
                )
            # Canonicalize through the real parser so the job key hashes
            # the validated form, not an arbitrary spelling.
            object.__setattr__(
                self, "faults", FaultSchedule.from_dict(self.faults).as_dict()
            )
        if self.model is not None and (
            not isinstance(self.model, str) or not self.model
        ):
            raise ConfigError(
                f"model must be a path string, got {self.model!r}"
            )
        if not isinstance(self.regret, bool):
            raise ConfigError(
                f"regret must be true/false, got {self.regret!r}"
            )

    # ------------------------------------------------------------------
    def key(self) -> str:
        """Content-addressed identity of this job."""
        return job_key({"type": "evaluate", **self.as_dict()})

    def label(self) -> str:
        if self.candidate is not None:
            base = f"{self.candidate}:{self.workload or self.matrix}"
            return f"{base}/s{self.seed}" if self.seed else base
        return f"{self.kernel}/{self.matrix}/{self.mode}"

    @property
    def candidate_scheme(self) -> str:
        """The scheme whose metrics represent this job's candidate: the
        first non-Baseline scheme, or ``Baseline`` itself for
        baseline-only candidates."""
        for name in self.schemes:
            if name != "Baseline":
                return name
        return "Baseline"

    def as_dict(self) -> dict:
        out: dict = {
            "kernel": self.kernel,
            "matrix": self.matrix,
            "scale": self.scale,
            "mode": self.mode,
            "schemes": list(self.schemes),
            "l1_type": self.l1_type,
            "bandwidth_gbps": self.bandwidth_gbps,
        }
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        # Optional fields appear only when set: a job that does not use
        # them keeps its pre-existing content-addressed key, so old
        # ledgers stay resumable across this schema growth.
        if self.candidate is not None:
            out["candidate"] = self.candidate
        if self.workload is not None:
            out["workload"] = self.workload
        if self.seed != 0:
            out["seed"] = self.seed
        if self.policy is not None:
            out["policy"] = self.policy
        if self.hardening is not None:
            out["hardening"] = self.hardening
        if self.faults is not None:
            out["faults"] = self.faults
        if self.model is not None:
            out["model"] = self.model
        if self.regret:
            out["regret"] = True
        return out

    @staticmethod
    def from_dict(raw: Mapping, defaults: Optional[Mapping] = None) -> "JobSpec":
        if not isinstance(raw, Mapping):
            raise ConfigError(f"plan job must be an object, got {raw!r}")
        for key in raw:
            if key not in _JOB_KEYS:
                raise ConfigError(f"unknown plan job key {key!r}")
        merged = dict(defaults or {})
        merged.update(raw)
        if "kernel" not in merged or "matrix" not in merged:
            raise ConfigError("plan job needs 'kernel' and 'matrix'")
        if "schemes" in merged:
            schemes = merged["schemes"]
            if isinstance(schemes, str) or not isinstance(schemes, Iterable):
                raise ConfigError("'schemes' must be a list of scheme names")
            merged["schemes"] = tuple(schemes)
        return JobSpec(**merged)


@dataclass(frozen=True)
class CampaignPlan:
    """A named, ordered list of jobs plus an optional fault schedule.

    ``faults`` carries host-level fault kinds (``job_hang`` /
    ``job_crash`` / ``job_oom``) that the runner applies per job
    attempt; hardware
    kinds in the same schedule are ignored at this layer.
    """

    name: str
    jobs: Tuple[JobSpec, ...]
    faults: Optional[object] = None  # FaultSchedule; untyped to stay lazy

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("a campaign plan needs a non-empty name")
        if not self.jobs:
            raise ConfigError("a campaign plan needs at least one job")
        seen: dict = {}
        for spec in self.jobs:
            key = spec.key()
            if key in seen:
                raise ConfigError(
                    f"duplicate job in plan: {spec.label()} "
                    f"(same description as {seen[key].label()})"
                )
            seen[key] = spec

    # ------------------------------------------------------------------
    def key(self) -> str:
        """Content-addressed identity of the whole plan."""
        return job_key({"type": "plan", **self.as_dict()})

    def as_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "jobs": [spec.as_dict() for spec in self.jobs],
        }
        if self.faults is not None:
            out["faults"] = self.faults.as_dict()
        return out

    @staticmethod
    def from_dict(raw: Mapping) -> "CampaignPlan":
        from repro.faults.spec import FaultSchedule

        if not isinstance(raw, Mapping):
            raise ConfigError(
                f"campaign plan must be an object, got {type(raw).__name__}"
            )
        for key in raw:
            if key not in _PLAN_KEYS:
                raise ConfigError(f"unknown campaign plan key {key!r}")
        if "jobs" not in raw:
            raise ConfigError("campaign plan is missing the 'jobs' list")
        jobs = raw["jobs"]
        if isinstance(jobs, (str, bytes)) or not isinstance(jobs, Iterable):
            raise ConfigError("'jobs' must be a list of job objects")
        defaults = raw.get("defaults", {})
        if not isinstance(defaults, Mapping):
            raise ConfigError("'defaults' must be an object")
        for key in defaults:
            if key not in _DEFAULT_KEYS:
                raise ConfigError(f"unknown plan defaults key {key!r}")
        faults = raw.get("faults")
        return CampaignPlan(
            name=raw.get("name", "campaign"),
            jobs=tuple(
                JobSpec.from_dict(entry, defaults=defaults) for entry in jobs
            ),
            faults=(
                FaultSchedule.from_dict(faults) if faults is not None else None
            ),
        )

    @staticmethod
    def from_file(path: Union[str, "object"]) -> "CampaignPlan":
        """Load a JSON plan file; every failure is a :class:`ConfigError`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            raise ConfigError(f"no such plan file: {path}") from None
        except IsADirectoryError:
            raise ConfigError(f"{path} is a directory, not a plan") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed plan {path}: {exc}") from None
        except OSError as exc:
            raise ConfigError(f"cannot read plan {path}: {exc}") from None
        try:
            return CampaignPlan.from_dict(raw)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid plan {path}: {exc}") from None

    def save(self, path) -> None:
        from repro.obs.sinks import write_atomic

        write_atomic(
            path,
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
        )


def table5_plan(
    scale: float = 0.3,
    mode: str = "ee",
    schemes: Sequence[str] = ("Baseline", "Best Avg", "Max Cfg", "SparseAdapt"),
) -> CampaignPlan:
    """The paper's Table-5 sweep as a plan.

    SpMSpM over the R01–R08 matrices and SpMSpV over R09–R16, every
    matrix evaluated against the standard scheme comparison set.
    """
    jobs = [
        JobSpec(
            kernel="spmspm",
            matrix=f"R{index:02d}",
            scale=scale,
            mode=mode,
            schemes=tuple(schemes),
        )
        for index in range(1, 9)
    ] + [
        JobSpec(
            kernel="spmspv",
            matrix=f"R{index:02d}",
            scale=scale,
            mode=mode,
            schemes=tuple(schemes),
        )
        for index in range(9, 17)
    ]
    return CampaignPlan(name="table5", jobs=tuple(jobs))
