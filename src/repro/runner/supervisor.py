"""Job supervision: deadline watchdog, bounded retries, host faults.

The supervisor owns the *one attempt* mechanics the executor loops
over:

* :func:`call_with_deadline` runs a job callable on a watchdog — with a
  deadline the work happens in a daemon worker thread that is abandoned
  (and :class:`~repro.errors.JobTimeoutError` raised) if it overruns;
  without one the callable runs inline, so the default path adds no
  threading to a campaign.
* :func:`backoff_delay` computes the exponential backoff + jitter
  between retry attempts. The jitter stream is seeded per job, so two
  runs of the same campaign retry on the same cadence (sleep time never
  reaches a result, but determinism everywhere keeps ledgers
  comparable).
* :class:`HostFaultInjector` interprets the host-level fault kinds
  (``job_hang``, ``job_crash``, ``job_oom``) of a schedule per job
  *attempt*, the same seeded per-spec stream discipline as the
  epoch-level :class:`~repro.faults.injector.FaultInjector` — which
  ignores host kinds, exactly as this injector ignores hardware kinds.

Because every fire decision is stateless per ``(seed, spec, job,
attempt)``, the injector behaves identically whether a campaign runs
in one process or is sharded across N workers — each worker derives
exactly the faults its jobs would have seen in a serial run, which is
what keeps parallel and resumed campaigns byte-identical.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import FaultError, JobTimeoutError, RetryableError
from repro.faults.spec import HOST_FAULTS, FaultSchedule

__all__ = [
    "SupervisorConfig",
    "call_with_deadline",
    "backoff_delay",
    "HostFaultInjector",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/deadline tunables shared by every job of a campaign."""

    #: Wall-clock budget per attempt; ``None`` disables the watchdog.
    deadline_s: Optional[float] = None
    #: Extra attempts after the first (total attempts = 1 + max_retries).
    max_retries: int = 2
    #: First backoff sleep; doubled (``backoff_factor``) per retry.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: Uniform jitter fraction on top of the exponential term.
    backoff_jitter: float = 0.25
    #: Seeds the per-job jitter streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FaultError(
                f"deadline must be positive, got {self.deadline_s!r}"
            )
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if self.backoff_base_s < 0:
            raise FaultError("backoff base must be non-negative")


def call_with_deadline(
    fn: Callable[[], object],
    deadline_s: Optional[float],
    label: str = "job",
):
    """Run ``fn`` under a wall-clock deadline.

    With ``deadline_s=None`` the call is inline (zero overhead, no
    threads). Otherwise ``fn`` runs in a daemon worker thread; if it
    has not finished within the deadline the thread is *abandoned* —
    Python offers no safe preemption — and :class:`JobTimeoutError`
    raised. Abandoned workers hold no locks the runner cares about and
    die with the process; the job functions the runner schedules are
    pure compute over private state, which is what makes abandonment
    safe here.
    """
    if deadline_s is None:
        return fn()
    outcome: dict = {}

    def target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            outcome["error"] = exc

    worker = threading.Thread(
        target=target, name=f"job-{label}", daemon=True
    )
    worker.start()
    worker.join(deadline_s)
    if worker.is_alive():
        raise JobTimeoutError(
            f"{label} exceeded its {deadline_s:g}s deadline"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")


def backoff_delay(
    config: SupervisorConfig, job_index: int, attempt: int
) -> float:
    """Exponential backoff with deterministic per-job jitter.

    ``attempt`` counts the attempt that just failed (1-based), so the
    first retry sleeps ~``backoff_base_s`` and each further retry
    multiplies by ``backoff_factor``; jitter is drawn from a stream
    seeded by ``(config.seed, job_index)``.
    """
    base = config.backoff_base_s * config.backoff_factor ** (attempt - 1)
    if base <= 0:
        return 0.0
    rng = random.Random(config.seed * 1_000_003 + job_index * 7919 + attempt)
    return base * (1.0 + config.backoff_jitter * rng.random())


class HostFaultInjector:
    """Seeded per-attempt interpreter of the ``job_*`` host-fault specs.

    The spec's ``[start_epoch, end_epoch)`` window selects job
    *indices*; ``rate`` is the per-attempt fire probability (1.0 fires
    without consuming a draw, mirroring the epoch injector). Unlike the
    epoch injector's sequential streams, every fire decision draws from
    a *stateless* stream derived from ``[seed, spec, job, attempt]`` —
    a job's faults depend only on its identity, never on which other
    jobs ran before it, which is what keeps a killed-and-resumed
    campaign byte-identical to an uninterrupted one.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        kinds: Tuple[str, ...] = HOST_FAULTS,
    ) -> None:
        """``kinds`` selects which spec kinds this injector interprets
        — the executor uses the default ``job_*`` set, while the store
        worker builds a second injector over
        :data:`~repro.faults.spec.STORE_FAULTS` to reuse the same
        stateless draw discipline for lease faults."""
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                f"expected a FaultSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self._specs = [
            (index, spec)
            for index, spec in enumerate(schedule.specs)
            if spec.kind in kinds
        ]
        #: ``(job_index, kind)`` of every fault fired, for reporting.
        self.injected: List[Tuple[int, str]] = []

    def __bool__(self) -> bool:
        return bool(self._specs)

    def actions(
        self, job_index: int, attempt: int = 1
    ) -> List[Tuple[str, float]]:
        """Faults firing on this attempt: ``(kind, hang_seconds)`` pairs.

        A retried job gets fresh fire decisions (a transient crash can
        clear on retry; a rate-1.0 hang never does).
        """
        import numpy as np

        fired: List[Tuple[str, float]] = []
        for index, spec in self._specs:
            if not spec.applies_to(job_index):
                continue
            if spec.rate < 1.0:
                stream = (
                    [spec.seed, job_index, attempt]
                    if spec.seed is not None
                    else [self.schedule.seed, index, job_index, attempt]
                )
                draw = float(np.random.default_rng(stream).random())
                if draw >= spec.rate:
                    continue
            seconds = float(spec.params.get("seconds", 30.0))
            fired.append((spec.kind, seconds))
            self.injected.append((job_index, spec.kind))
        return fired

    def wrap(
        self,
        fn: Callable[[], object],
        job_index: int,
        attempt: int = 1,
    ) -> Callable[[], object]:
        """``fn`` with this attempt's host faults applied around it."""
        fired = self.actions(job_index, attempt)
        if not fired:
            return fn

        def faulted() -> object:
            for kind, seconds in fired:
                if kind == "job_hang":
                    time.sleep(seconds)
                elif kind == "job_oom":
                    # Memory-pressure abort: not retryable — the same
                    # job at the same scale would just OOM again, so
                    # the executor quarantines it immediately.
                    raise MemoryError(
                        f"injected job_oom (job {job_index})"
                    )
                else:  # job_crash
                    raise RetryableError(
                        f"injected job_crash (job {job_index})"
                    )
            return fn()

        return faulted
